//! The **Fair Share** allocation function (§3.1) — the paper's central
//! construction, known in the economics literature as *serial cost
//! sharing* (Moulin & Shenker, Econometrica 1992).
//!
//! With users sorted so that `r_(0) ≤ r_(1) ≤ … ≤ r_(n-1)` and
//! `s_k = (n-k)·r_(k) + Σ_{l<k} r_(l)` (the load the system *would* carry
//! if every user heavier than `k` were clamped down to `r_(k)`),
//!
//! ```text
//! C_(k) = C_(k-1) + [g(s_k) − g(s_{k-1})] / (n − k),    C_(-1) = 0, s_{-1} = 0
//! ```
//!
//! Equivalently (the paper's definition): `C_(k)` solves
//! `Σ_{l<k} C_(l) + (n−k)·C_(k) = g(s_k)`.
//!
//! Key structural facts implemented and tested here:
//! * insularity / triangularity: `∂C_i/∂r_j = 0` whenever `r_j ≥ r_i`
//!   (`i ≠ j`) — a user is never hurt by users no heavier than itself
//!   growing, and never affected at all by heavier users;
//! * `∂C_i/∂r_i = g'(s_k)` and `∂²C_i/∂r_i² = (n−k)·g''(s_k) > 0`;
//! * the **Table 1** preemptive-priority realization, exposed as
//!   [`priority_table`] and consumed by the packet simulator.

use crate::alloc::AllocationFunction;
use crate::mm1::{g, g_double_prime, g_prime};

/// The Fair Share (serial cost sharing) allocation function.
///
/// ```
/// use greednet_queueing::{AllocationFunction, FairShare};
///
/// let fs = FairShare::new();
/// // The lightest user's queue depends only on its own rate: it gets
/// // g(N * r_min) / N regardless of what the heavier users send.
/// let a = fs.congestion(&[0.1, 0.2, 0.3]);
/// let b = fs.congestion(&[0.1, 0.5, 0.39]);
/// assert!((a[0] - b[0]).abs() < 1e-12);
/// // Work conservation: totals always match the M/M/1 formula.
/// let total: f64 = a.iter().sum();
/// assert!((total - 0.6 / 0.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FairShare;

impl FairShare {
    /// Creates the Fair Share allocation function.
    pub fn new() -> Self {
        FairShare
    }
}

/// Returns user indices sorted by ascending rate (stable, so ties keep
/// their original order — the allocation value is tie-invariant).
pub fn ascending_order(rates: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..rates.len()).collect();
    // Total comparator (GN07): identical ordering to `partial_cmp` for the
    // finite non-negative rates every caller validates; a stray NaN sorts
    // deterministically last instead of silently breaking transitivity.
    order.sort_by(|&a, &b| rates[a].total_cmp(&rates[b]));
    order
}

/// Inverts the permutation returned by [`ascending_order`]: entry `i` is
/// user `i`'s sorted position `k`. Indexing the result with a valid user
/// index can never fail, unlike a linear `position(..)` search whose
/// `Option` would otherwise have to be unwrapped on every derivative
/// evaluation (GN03). Shared with the other serial disciplines, whose
/// per-user lookups would otherwise end in `unreachable!` (GN06).
pub(crate) fn sorted_positions(order: &[usize]) -> Vec<usize> {
    let mut pos = vec![0usize; order.len()];
    for (k, &user) in order.iter().enumerate() {
        pos[user] = k;
    }
    pos
}

/// The serialized loads `s_k = (n-k)·r_(k) + Σ_{l<k} r_(l)` in sorted
/// order. `s` is non-decreasing and `s_{n-1} = Σ r`.
fn serial_loads(sorted_rates: &[f64]) -> Vec<f64> {
    let n = sorted_rates.len();
    let mut s = Vec::with_capacity(n);
    let mut prefix = 0.0;
    for (k, &r) in sorted_rates.iter().enumerate() {
        s.push((n - k) as f64 * r + prefix);
        prefix += r;
    }
    s
}

impl AllocationFunction for FairShare {
    fn name(&self) -> &'static str {
        "fair share"
    }

    fn congestion(&self, rates: &[f64]) -> Vec<f64> {
        let n = rates.len();
        let order = ascending_order(rates);
        let sorted: Vec<f64> = order.iter().map(|&i| rates[i]).collect();
        let s = serial_loads(&sorted);
        let mut c = vec![0.0; n];
        let mut c_prev = 0.0;
        let mut s_prev = 0.0;
        for k in 0..n {
            let m = (n - k) as f64;
            let ck = if s[k] >= 1.0 {
                // This user's serialized subsystem is overloaded: it and
                // every heavier user see an unbounded queue; lighter users
                // (already assigned) remain protected with finite queues.
                f64::INFINITY
            } else {
                c_prev + (g(s[k]) - g(s_prev)) / m
            };
            c[order[k]] = ck;
            c_prev = ck;
            s_prev = s[k];
            if ck.is_infinite() {
                for &idx in order.iter().skip(k + 1) {
                    c[idx] = f64::INFINITY;
                }
                break;
            }
        }
        c
    }

    fn d_own(&self, rates: &[f64], i: usize) -> f64 {
        let order = ascending_order(rates);
        let sorted: Vec<f64> = order.iter().map(|&idx| rates[idx]).collect();
        let s = serial_loads(&sorted);
        let k = sorted_positions(&order)[i];
        g_prime(s[k])
    }

    fn d_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d_own(rates, i);
        }
        // Insularity: heavier-or-equal users never move C_i.
        if rates[j] >= rates[i] {
            return 0.0;
        }
        let n = rates.len();
        let order = ascending_order(rates);
        let sorted: Vec<f64> = order.iter().map(|&idx| rates[idx]).collect();
        let s = serial_loads(&sorted);
        let pos = sorted_positions(&order);
        let q = pos[i];
        let p = pos[j];
        debug_assert!(p < q, "r_j < r_i must sort j before i");
        // dC_(q)/dr_(p) = sum over k = p..=q of
        //   [g'(s_k) ds_k/dr_p - g'(s_{k-1}) ds_{k-1}/dr_p] / (n - k)
        // with ds_k/dr_p = (n-p) if k == p, 1 if k > p, 0 if k < p.
        let mp = (n - p) as f64;
        let mut acc = 0.0;
        for k in p..=q {
            let m_k = (n - k) as f64;
            let a = if k == p { mp } else { 1.0 };
            let b = if k == 0 || k - 1 < p {
                0.0
            } else if k - 1 == p {
                mp
            } else {
                1.0
            };
            let gp_k = g_prime(s[k]);
            let gp_km1 = if k == 0 { 0.0 } else { g_prime(s[k - 1]) };
            acc += (gp_k * a - gp_km1 * b) / m_k;
        }
        acc
    }

    fn d2_own(&self, rates: &[f64], i: usize) -> f64 {
        let n = rates.len();
        let order = ascending_order(rates);
        let sorted: Vec<f64> = order.iter().map(|&idx| rates[idx]).collect();
        let s = serial_loads(&sorted);
        let k = sorted_positions(&order)[i];
        (n - k) as f64 * g_double_prime(s[k])
    }

    fn d2_own_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d2_own(rates, i);
        }
        if rates[j] >= rates[i] {
            return 0.0;
        }
        // d/dr_j [g'(s_q(i))] with ds_q/dr_j = 1 for lighter j.
        let order = ascending_order(rates);
        let sorted: Vec<f64> = order.iter().map(|&idx| rates[idx]).collect();
        let s = serial_loads(&sorted);
        let q = sorted_positions(&order)[i];
        g_double_prime(s[q])
    }

    fn clone_box(&self) -> Box<dyn AllocationFunction> {
        Box::new(*self)
    }
}

/// Reusable scratch space for [`congestion_into`]: the sort permutation
/// and the sorted rate vector. Holding one of these across calls makes
/// repeated Fair Share evaluation allocation-free after warmup — the
/// large-N mean-field engine (`greednet-largen`) evaluates the allocation
/// every sweep at N up to 10^6, where per-call allocation would dominate.
#[derive(Debug, Clone, Default)]
pub struct FairShareBufs {
    order: Vec<usize>,
    sorted: Vec<f64>,
}

impl FairShareBufs {
    /// Creates empty scratch space (buffers grow on first use).
    #[must_use]
    pub fn new() -> FairShareBufs {
        FairShareBufs::default()
    }
}

/// Sorted-prefix Fair Share evaluation into caller-provided storage:
/// one O(N log N) stable sort, then a single fused O(N) pass computing
/// the serial loads and the congestion recursion together (no
/// intermediate `s` vector, no allocation once `bufs`/`out` are warm).
///
/// Performs **bit-for-bit** the same float operations in the same order
/// as [`FairShare::congestion`] — the identical `total_cmp` stable sort
/// followed by `s_k = (n-k)·r_(k) + prefix` and
/// `C_(k) = C_(k-1) + (g(s_k) − g(s_{k-1}))/(n-k)` — so the two paths
/// are bitwise interchangeable (pinned by the property tests in
/// `tests/fair_share_sorted_prefix.rs`).
pub fn congestion_into(rates: &[f64], bufs: &mut FairShareBufs, out: &mut Vec<f64>) {
    let n = rates.len();
    bufs.order.clear();
    bufs.order.extend(0..n);
    bufs.order.sort_by(|&a, &b| rates[a].total_cmp(&rates[b]));
    bufs.sorted.clear();
    bufs.sorted.extend(bufs.order.iter().map(|&i| rates[i]));
    out.clear();
    out.resize(n, 0.0);
    let mut prefix = 0.0;
    let mut c_prev = 0.0;
    let mut s_prev = 0.0;
    for (k, &r) in bufs.sorted.iter().enumerate() {
        let m = (n - k) as f64;
        let s_k = m * r + prefix;
        let ck = if s_k >= 1.0 {
            f64::INFINITY
        } else {
            c_prev + (g(s_k) - g(s_prev)) / m
        };
        out[bufs.order[k]] = ck;
        c_prev = ck;
        s_prev = s_k;
        if ck.is_infinite() {
            for &idx in bufs.order.iter().skip(k + 1) {
                out[idx] = f64::INFINITY;
            }
            break;
        }
        prefix += r;
    }
}

/// The Table 1 priority-table realization of Fair Share.
///
/// Entry `[u][m]` is user `u`'s Poisson arrival rate into priority level
/// `m` (level 0 is the **highest** priority, served preemptively over all
/// lower levels). In sorted order the level-`m` per-user rate is
/// `r_(m) − r_(m-1)`; user `u` with sorted position `k` feeds levels
/// `0..=k`. Rows sum to the user's total rate.
///
/// Feeding these per-level streams into a preemptive-priority M/M/1 server
/// realizes exactly the Fair Share congestion vector — verified by the
/// packet simulator in `greednet-des` (experiment T1/E9).
pub fn priority_table(rates: &[f64]) -> Vec<Vec<f64>> {
    let n = rates.len();
    let order = ascending_order(rates);
    let sorted: Vec<f64> = order.iter().map(|&i| rates[i]).collect();
    let mut table = vec![vec![0.0; n]; n];
    for (k, &u) in order.iter().enumerate() {
        for m in 0..=k {
            let delta = if m == 0 {
                sorted[0]
            } else {
                sorted[m] - sorted[m - 1]
            };
            table[u][m] = delta;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{jacobian_defect, symmetry_defect};
    use crate::mm1;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn identical_users_split_equally() {
        let fs = FairShare::new();
        let c = fs.congestion(&[0.2, 0.2, 0.2]);
        let expect = mm1::g(0.6) / 3.0;
        for &ci in &c {
            assert_close(ci, expect, 1e-12);
        }
    }

    #[test]
    fn defining_equation_holds() {
        // C_(k) solves sum_{l<k} C_(l) + (n-k) C_(k) = g(s_k).
        let fs = FairShare::new();
        let rates = [0.05, 0.1, 0.2, 0.35];
        let c = fs.congestion(&rates);
        let n = rates.len();
        let mut prefix_r = 0.0;
        let mut prefix_c = 0.0;
        for k in 0..n {
            let m = (n - k) as f64;
            let s_k = m * rates[k] + prefix_r;
            assert_close(prefix_c + m * c[k], mm1::g(s_k), 1e-10);
            prefix_r += rates[k];
            prefix_c += c[k];
        }
    }

    #[test]
    fn work_conservation() {
        let fs = FairShare::new();
        for rates in [vec![0.1, 0.2], vec![0.3, 0.1, 0.05, 0.2], vec![0.01, 0.44]] {
            let c = fs.congestion(&rates);
            let total_c: f64 = c.iter().sum();
            assert_close(total_c, mm1::total_congestion(&rates), 1e-10);
        }
    }

    #[test]
    fn feasibility_and_interiority() {
        let fs = FairShare::new();
        let a = fs.allocation(&[0.1, 0.2, 0.3]).unwrap();
        a.validate().unwrap();
        crate::feasible::validate_all_subsets(&a).unwrap();
        // Heterogeneous rates: strictly interior.
        assert!(a.is_interior(1e-9));
    }

    #[test]
    fn lightest_user_unaffected_by_others() {
        // The lightest user's queue equals its share of an all-equal system:
        // C_(0) = g(n r_(0)) / n, regardless of the heavier users.
        let fs = FairShare::new();
        let c1 = fs.congestion(&[0.1, 0.2, 0.3]);
        let c2 = fs.congestion(&[0.1, 0.5, 0.39]);
        let expect = mm1::g(0.3) / 3.0;
        assert_close(c1[0], expect, 1e-12);
        assert_close(c2[0], expect, 1e-12);
    }

    #[test]
    fn unsorted_input_is_handled_by_symmetry() {
        let fs = FairShare::new();
        let ab = fs.congestion(&[0.3, 0.1]);
        let ba = fs.congestion(&[0.1, 0.3]);
        assert_close(ab[0], ba[1], 1e-14);
        assert_close(ab[1], ba[0], 1e-14);
        let pts = vec![
            vec![0.2, 0.05, 0.3],
            vec![0.4, 0.1, 0.1],
            vec![0.25, 0.25, 0.2],
        ];
        assert!(symmetry_defect(&fs, &pts) < 1e-12);
    }

    #[test]
    fn own_derivative_is_g_prime_of_serial_load() {
        let fs = FairShare::new();
        let rates = [0.1, 0.2, 0.3];
        // user 0 (lightest): s_0 = 3 * 0.1 = 0.3.
        assert_close(fs.d_own(&rates, 0), mm1::g_prime(0.3), 1e-12);
        // user 2 (heaviest): s_2 = 1*0.3 + 0.1 + 0.2 = 0.6.
        assert_close(fs.d_own(&rates, 2), mm1::g_prime(0.6), 1e-12);
    }

    #[test]
    fn analytic_jacobian_matches_numeric() {
        let fs = FairShare::new();
        for rates in [
            vec![0.1, 0.2],
            vec![0.05, 0.15, 0.3],
            vec![0.12, 0.21, 0.04, 0.3],
        ] {
            assert!(
                jacobian_defect(&fs, &rates) < 1e-4,
                "jacobian defect too large for {rates:?}: {}",
                jacobian_defect(&fs, &rates)
            );
        }
    }

    #[test]
    fn triangularity_of_jacobian() {
        let fs = FairShare::new();
        let rates = [0.3, 0.1, 0.2];
        // heavier users never affect lighter ones.
        assert_eq!(fs.d_cross(&rates, 1, 0), 0.0); // r_0 = 0.3 > r_1 = 0.1
        assert_eq!(fs.d_cross(&rates, 1, 2), 0.0);
        assert_eq!(fs.d_cross(&rates, 2, 0), 0.0);
        // lighter users do affect heavier ones.
        assert!(fs.d_cross(&rates, 0, 1) > 0.0);
        assert!(fs.d_cross(&rates, 0, 2) > 0.0);
        assert!(fs.d_cross(&rates, 2, 1) > 0.0);
        // Structural check via the matrix helper.
        let jac = fs.jacobian(&rates);
        let order = ascending_order(&rates);
        // In ascending order the strict upper triangle (j >= i positionally,
        // excluding diagonal) must vanish: check j > i entries are 0.
        for a in 0..3 {
            for b in (a + 1)..3 {
                assert_eq!(jac[(order[a], order[b])], 0.0);
            }
        }
    }

    #[test]
    fn equal_rates_have_zero_cross_derivative() {
        // Lemma 1's characterization: dC_i/dr_j = 0 whenever r_i = r_j, i != j.
        let fs = FairShare::new();
        let rates = [0.2, 0.2, 0.1];
        assert_eq!(fs.d_cross(&rates, 0, 1), 0.0);
        assert_eq!(fs.d_cross(&rates, 1, 0), 0.0);
    }

    #[test]
    fn second_derivatives_match_numeric() {
        let fs = FairShare::new();
        let rates = [0.1, 0.2, 0.3];
        for i in 0..3 {
            let num = greednet_numerics::diff::second_derivative(
                |x| {
                    let mut r = rates;
                    r[i] = x;
                    fs.congestion_of(&r, i)
                },
                rates[i],
            )
            .unwrap();
            assert_close(fs.d2_own(&rates, i), num, 2e-2 * num.abs());
            assert!(fs.d2_own(&rates, i) > 0.0);
        }
        // Mixed: d2 C_2 / dr_2 dr_0 (user 2 heaviest, user 0 lightest).
        let num = greednet_numerics::diff::mixed_second(|r| fs.congestion_of(r, 2), &rates, 2, 0)
            .unwrap();
        assert_close(
            fs.d2_own_cross(&rates, 2, 0),
            num,
            2e-2 * num.abs().max(1.0),
        );
        assert_eq!(fs.d2_own_cross(&rates, 0, 2), 0.0);
    }

    #[test]
    fn partial_overload_protects_light_users() {
        // Heavy user pushes total load over 1; light users keep finite,
        // unchanged queues (the essence of protectiveness).
        let fs = FairShare::new();
        let c = fs.congestion(&[0.1, 0.2, 5.0]);
        assert_close(c[0], mm1::g(0.3) / 3.0, 1e-12);
        assert!(c[1].is_finite());
        assert_eq!(c[2], f64::INFINITY);
    }

    #[test]
    fn full_overload_by_light_users() {
        let fs = FairShare::new();
        let c = fs.congestion(&[0.9, 0.9]);
        assert_eq!(c[0], f64::INFINITY);
        assert_eq!(c[1], f64::INFINITY);
    }

    #[test]
    fn priority_table_matches_paper_table_1() {
        // Paper's Table 1 with 4 ascending users.
        let rates = [0.05, 0.10, 0.20, 0.30];
        let t = priority_table(&rates);
        // User 0 (lightest): all packets at level A (= 0).
        assert_close(t[0][0], 0.05, 1e-15);
        assert_eq!(t[0][1], 0.0);
        // User 3 (heaviest): r1, r2-r1, r3-r2, r4-r3 across levels A..D.
        assert_close(t[3][0], 0.05, 1e-15);
        assert_close(t[3][1], 0.05, 1e-15);
        assert_close(t[3][2], 0.10, 1e-15);
        assert_close(t[3][3], 0.10, 1e-15);
        // Every row sums to the user's rate.
        for (u, row) in t.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert_close(sum, rates[u], 1e-12);
        }
    }

    #[test]
    fn priority_table_unsorted_input() {
        let rates = [0.30, 0.05, 0.20, 0.10];
        let t = priority_table(&rates);
        for (u, row) in t.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert_close(sum, rates[u], 1e-12);
        }
        // The lightest user (index 1) occupies only level 0.
        assert!(t[1][1..].iter().all(|&x| x == 0.0));
        // The heaviest user (index 0) occupies all four levels.
        assert!(t[0].iter().all(|&x| x > 0.0));
    }

    #[test]
    fn n_equals_one_is_plain_mm1() {
        let fs = FairShare::new();
        let c = fs.congestion(&[0.5]);
        assert_close(c[0], mm1::g(0.5), 1e-14);
        assert_close(fs.d_own(&[0.5], 0), mm1::g_prime(0.5), 1e-14);
    }

    #[test]
    fn continuity_across_ties() {
        // C must be continuous as r_1 crosses r_0 (the C^1 claim in §3.1).
        let fs = FairShare::new();
        let eps = 1e-7;
        let below = fs.congestion(&[0.2, 0.2 - eps]);
        let at = fs.congestion(&[0.2, 0.2]);
        let above = fs.congestion(&[0.2, 0.2 + eps]);
        for i in 0..2 {
            assert_close(below[i], at[i], 1e-5);
            assert_close(above[i], at[i], 1e-5);
        }
        // And the own-derivative is continuous too (C^1).
        let d_below = fs.d_own(&[0.2, 0.2 - eps], 0);
        let d_at = fs.d_own(&[0.2, 0.2], 0);
        let d_above = fs.d_own(&[0.2, 0.2 + eps], 0);
        assert_close(d_below, d_at, 1e-4);
        assert_close(d_above, d_at, 1e-4);
    }
}
