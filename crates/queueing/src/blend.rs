//! Convex combinations of allocation functions.
//!
//! If `C^A` and `C^B` are feasible allocation functions then so is
//! `(1−θ)·C^A + θ·C^B`: the work-conservation constraint is linear in `c`
//! and the subset constraints are half-spaces, so the feasible region is
//! convex for fixed `r`. Blends are used in the ablation experiments to
//! trace how the paper's properties (envy, protection, convergence)
//! degrade continuously as a switch interpolates between Fair Share
//! (`θ = 1`) and FIFO (`θ = 0`).

use crate::alloc::AllocationFunction;
use crate::error::QueueingError;
use crate::Result;

/// `(1−θ)·A + θ·B` for two allocation functions.
#[derive(Debug)]
pub struct Blend {
    a: Box<dyn AllocationFunction>,
    b: Box<dyn AllocationFunction>,
    theta: f64,
}

impl Blend {
    /// Creates a blend with weight `theta ∈ [0, 1]` on `b`.
    ///
    /// # Errors
    /// [`QueueingError::InvalidParameter`] if `theta` is outside `[0, 1]`.
    pub fn new(
        a: Box<dyn AllocationFunction>,
        b: Box<dyn AllocationFunction>,
        theta: f64,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&theta) || !theta.is_finite() {
            return Err(QueueingError::InvalidParameter {
                detail: format!("blend weight must lie in [0,1], got {theta}"),
            });
        }
        Ok(Blend { a, b, theta })
    }

    /// The blend weight on the second allocation.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    fn mix(&self, va: f64, vb: f64) -> f64 {
        // Degenerate endpoints delegate exactly (a zero-weight side must
        // not poison the blend with its own overload infinities).
        if self.theta == 0.0 {
            return va;
        }
        if self.theta == 1.0 {
            return vb;
        }
        // Careful with infinities: a proper blend is overloaded if either
        // side is.
        if va.is_infinite() || vb.is_infinite() {
            return f64::INFINITY;
        }
        (1.0 - self.theta) * va + self.theta * vb
    }
}

impl Clone for Blend {
    fn clone(&self) -> Self {
        Blend {
            a: self.a.clone_box(),
            b: self.b.clone_box(),
            theta: self.theta,
        }
    }
}

impl AllocationFunction for Blend {
    fn name(&self) -> &'static str {
        "blend"
    }

    fn congestion(&self, rates: &[f64]) -> Vec<f64> {
        let ca = self.a.congestion(rates);
        let cb = self.b.congestion(rates);
        ca.into_iter()
            .zip(cb)
            .map(|(x, y)| self.mix(x, y))
            .collect()
    }

    fn congestion_of(&self, rates: &[f64], i: usize) -> f64 {
        self.mix(
            self.a.congestion_of(rates, i),
            self.b.congestion_of(rates, i),
        )
    }

    fn d_own(&self, rates: &[f64], i: usize) -> f64 {
        self.mix(self.a.d_own(rates, i), self.b.d_own(rates, i))
    }

    fn d_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        self.mix(self.a.d_cross(rates, i, j), self.b.d_cross(rates, i, j))
    }

    fn d2_own(&self, rates: &[f64], i: usize) -> f64 {
        self.mix(self.a.d2_own(rates, i), self.b.d2_own(rates, i))
    }

    fn d2_own_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        self.mix(
            self.a.d2_own_cross(rates, i, j),
            self.b.d2_own_cross(rates, i, j),
        )
    }

    fn is_smooth(&self) -> bool {
        self.a.is_smooth() && self.b.is_smooth()
    }

    fn clone_box(&self) -> Box<dyn AllocationFunction> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fair_share::FairShare;
    use crate::mm1;
    use crate::proportional::Proportional;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    fn fifo_fs_blend(theta: f64) -> Blend {
        Blend::new(
            Box::new(Proportional::new()),
            Box::new(FairShare::new()),
            theta,
        )
        .unwrap()
    }

    #[test]
    fn endpoints_reproduce_components() {
        let rates = [0.1, 0.2, 0.3];
        let p = Proportional::new().congestion(&rates);
        let f = FairShare::new().congestion(&rates);
        let b0 = fifo_fs_blend(0.0).congestion(&rates);
        let b1 = fifo_fs_blend(1.0).congestion(&rates);
        for i in 0..3 {
            assert_close(b0[i], p[i], 1e-14);
            assert_close(b1[i], f[i], 1e-14);
        }
    }

    #[test]
    fn blend_is_work_conserving_and_feasible() {
        let b = fifo_fs_blend(0.35);
        let a = b.allocation(&[0.1, 0.25, 0.2]).unwrap();
        a.validate().unwrap();
        crate::feasible::validate_all_subsets(&a).unwrap();
        let total: f64 = a.congestions().iter().sum();
        assert_close(total, mm1::g(0.55), 1e-10);
    }

    #[test]
    fn derivatives_blend_linearly() {
        let rates = [0.1, 0.3];
        let theta = 0.4;
        let b = fifo_fs_blend(theta);
        let p = Proportional::new();
        let f = FairShare::new();
        assert_close(
            b.d_own(&rates, 0),
            (1.0 - theta) * p.d_own(&rates, 0) + theta * f.d_own(&rates, 0),
            1e-12,
        );
        assert_close(
            b.d_cross(&rates, 1, 0),
            (1.0 - theta) * p.d_cross(&rates, 1, 0) + theta * f.d_cross(&rates, 1, 0),
            1e-12,
        );
    }

    #[test]
    fn invalid_theta_rejected() {
        assert!(Blend::new(
            Box::new(Proportional::new()),
            Box::new(FairShare::new()),
            1.5
        )
        .is_err());
        assert!(Blend::new(
            Box::new(Proportional::new()),
            Box::new(FairShare::new()),
            f64::NAN
        )
        .is_err());
    }

    #[test]
    fn endpoint_blends_ignore_the_other_side_overload() {
        // theta = 1 must behave exactly like Fair Share even when the
        // FIFO component is overloaded (and vice versa at theta = 0).
        let fs_end = fifo_fs_blend(1.0);
        let rates = [0.1, 5.0];
        let expect = FairShare::new().congestion(&rates);
        let got = fs_end.congestion(&rates);
        assert!(got[0].is_finite());
        assert_close(got[0], expect[0], 1e-12);
        assert_eq!(got[1], f64::INFINITY);
    }

    #[test]
    fn overload_propagates() {
        let b = fifo_fs_blend(0.5);
        let c = b.congestion(&[0.2, 0.9]);
        // FIFO side is fully overloaded, so the blend is too for both users.
        assert_eq!(c[0], f64::INFINITY);
        assert_eq!(c[1], f64::INFINITY);
    }

    #[test]
    fn clone_preserves_theta() {
        let b = fifo_fs_blend(0.25);
        let c = b.clone();
        assert_eq!(c.theta(), 0.25);
        let boxed = b.clone_box();
        assert_eq!(boxed.name(), "blend");
    }
}
