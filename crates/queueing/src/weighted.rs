//! Weighted Fair Share — weighted serial cost sharing.
//!
//! The paper's switch is anonymous (symmetry is part of `AC`), but real
//! deployments of the Fair Queueing family routinely carry administrative
//! *weights* (WFQ). The natural weighted generalization of serial cost
//! sharing (Moulin's weighted serial rule): with weights `w_i > 0` and
//! normalized demands `t_i = r_i / w_i` sorted ascending,
//!
//! ```text
//! s_k = Σ_{l<k} r_(l) + t_(k) · W_k,      W_k = Σ_{l≥k} w_(l)
//! C_(k) = Σ_{m≤k} w_(k) · [g(s_m) − g(s_{m-1})] / W_m
//! ```
//!
//! With all weights equal this reduces exactly to [`crate::FairShare`]
//! (property-tested). The structural goods survive in weighted form:
//! insularity in the `t`-order (users with higher normalized demand never
//! affect you) and a weighted protection bound
//! `C_i ≤ (w_i / W) · g(t_i · W)` — what user `i` would suffer among a
//! full population mirroring its normalized demand.

use crate::alloc::AllocationFunction;
use crate::error::QueueingError;
use crate::mm1::{g, g_prime};
use crate::Result;

/// The weighted Fair Share allocation function.
#[derive(Debug, Clone)]
pub struct WeightedFairShare {
    weights: Vec<f64>,
}

impl WeightedFairShare {
    /// Creates the allocation for the given positive weights (one per
    /// user; rate vectors passed later must have the same length).
    ///
    /// # Errors
    /// [`QueueingError::InvalidParameter`] on empty or non-positive
    /// weights.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(QueueingError::InvalidParameter {
                detail: "no weights".into(),
            });
        }
        if weights.iter().any(|&w| !w.is_finite() || w <= 0.0) {
            return Err(QueueingError::InvalidParameter {
                detail: format!("weights must be finite and positive: {weights:?}"),
            });
        }
        Ok(WeightedFairShare { weights })
    }

    /// The weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// User order by ascending normalized demand `r_i / w_i`.
    fn t_order(&self, rates: &[f64]) -> Vec<usize> {
        // Rates are debug-asserted finite at the public entry points and
        // weights are validated positive in `new`, so the normalized
        // demands are NaN-free; `total_cmp` (GN07) keeps the comparator
        // total even if that contract is ever violated.
        let mut order: Vec<usize> = (0..rates.len()).collect();
        order.sort_by(|&a, &b| {
            let ta = rates[a] / self.weights[a];
            let tb = rates[b] / self.weights[b];
            ta.total_cmp(&tb)
        });
        order
    }

    /// The weighted protection bound `(w_i/W) · g(t_i · W)`.
    pub fn protection_bound(&self, i: usize, r_i: f64) -> f64 {
        let w_total: f64 = self.weights.iter().sum();
        let load = r_i / self.weights[i] * w_total;
        if load >= 1.0 {
            f64::INFINITY
        } else {
            self.weights[i] / w_total * g(load)
        }
    }
}

impl AllocationFunction for WeightedFairShare {
    fn name(&self) -> &'static str {
        "weighted fair share"
    }

    fn congestion(&self, rates: &[f64]) -> Vec<f64> {
        assert_eq!(
            rates.len(),
            self.weights.len(),
            "rate vector length {} != weight count {}",
            rates.len(),
            self.weights.len()
        );
        debug_assert!(
            rates.iter().all(|r| r.is_finite()),
            "non-finite rate in {rates:?}"
        );
        let n = rates.len();
        let order = self.t_order(rates);
        // Suffix weight sums W_k in sorted order.
        let mut suffix_w = vec![0.0; n + 1];
        for k in (0..n).rev() {
            suffix_w[k] = suffix_w[k + 1] + self.weights[order[k]];
        }
        let mut c = vec![0.0; n];
        let mut prefix_r = 0.0;
        let mut s_prev = 0.0;
        // Per-user running share accumulator: C_(k) = w_(k) * acc_k where
        // acc_k = sum_{m<=k} [g(s_m) - g(s_{m-1})] / W_m.
        let mut acc = 0.0;
        for (k, &idx) in order.iter().enumerate() {
            let t_k = rates[idx] / self.weights[idx];
            let s_k = prefix_r + t_k * suffix_w[k];
            if s_k >= 1.0 {
                for &rest in order.iter().skip(k) {
                    c[rest] = f64::INFINITY;
                }
                return c;
            }
            acc += (g(s_k) - g(s_prev)) / suffix_w[k];
            c[idx] = self.weights[idx] * acc;
            prefix_r += rates[idx];
            s_prev = s_k;
        }
        c
    }

    fn d_own(&self, rates: &[f64], i: usize) -> f64 {
        // dC_(k)/dr_(k) = w_k * g'(s_k) * (ds_k/dr_k) / W_k = g'(s_k)
        // since ds_k/dr_k = W_k / w_k. Looking `i` up through the inverted
        // permutation is total — no search loop, no panic path (GN06).
        debug_assert!(
            rates.iter().all(|r| r.is_finite()),
            "non-finite rate in {rates:?}"
        );
        let order = self.t_order(rates);
        let k = crate::fair_share::sorted_positions(&order)[i];
        let suffix_w: f64 = order[k..].iter().map(|&idx| self.weights[idx]).sum();
        let prefix_r: f64 = order[..k].iter().map(|&idx| rates[idx]).sum();
        let s_k = prefix_r + rates[i] / self.weights[i] * suffix_w;
        g_prime(s_k)
    }

    fn d_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d_own(rates, i);
        }
        // Weighted insularity: users with normalized demand >= yours never
        // affect you.
        if rates[j] / self.weights[j] >= rates[i] / self.weights[i] {
            return 0.0;
        }
        self.fd_first(rates, i, j)
    }

    fn clone_box(&self) -> Box<dyn AllocationFunction> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1;
    use crate::FairShare;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn equal_weights_reduce_to_fair_share() {
        let w = WeightedFairShare::new(vec![1.0; 3]).unwrap();
        let fs = FairShare::new();
        for rates in [
            vec![0.1, 0.2, 0.3],
            vec![0.3, 0.05, 0.2],
            vec![0.15, 0.15, 0.15],
        ] {
            let a = w.congestion(&rates);
            let b = fs.congestion(&rates);
            for (x, y) in a.iter().zip(&b) {
                assert_close(*x, *y, 1e-12);
            }
            for i in 0..3 {
                assert_close(w.d_own(&rates, i), fs.d_own(&rates, i), 1e-10);
            }
        }
        // Scaling all weights by a constant changes nothing.
        let w2 = WeightedFairShare::new(vec![7.0; 3]).unwrap();
        let a = w2.congestion(&[0.1, 0.2, 0.3]);
        let b = fs.congestion(&[0.1, 0.2, 0.3]);
        for (x, y) in a.iter().zip(&b) {
            assert_close(*x, *y, 1e-12);
        }
    }

    #[test]
    fn work_conservation_and_feasibility() {
        let w = WeightedFairShare::new(vec![1.0, 2.0, 0.5]).unwrap();
        let rates = [0.1, 0.25, 0.15];
        let alloc = w.allocation(&rates).unwrap();
        alloc.validate().unwrap();
        crate::feasible::validate_all_subsets(&alloc).unwrap();
        let total: f64 = alloc.congestions().iter().sum();
        assert_close(total, mm1::g(0.5), 1e-10);
    }

    #[test]
    fn heavier_weight_buys_less_congestion_at_equal_rates() {
        // Two users at the same rate: the higher-weight one (entitled to a
        // larger share of the switch) carries less of the queue.
        let w = WeightedFairShare::new(vec![1.0, 3.0]).unwrap();
        let c = w.congestion(&[0.2, 0.2]);
        assert!(c[1] < c[0], "c = {c:?}");
    }

    #[test]
    fn weighted_insularity() {
        // User 0 has t = 0.1/1 = 0.1; user 1 has t = 0.15/3 = 0.05.
        // User 0 (higher t) never affects user 1.
        let w = WeightedFairShare::new(vec![1.0, 3.0]).unwrap();
        assert_eq!(w.d_cross(&[0.1, 0.15], 1, 0), 0.0);
        assert!(w.d_cross(&[0.1, 0.15], 0, 1) > 0.0);
        // And raising user 0's rate does not change user 1's congestion.
        let before = w.congestion(&[0.1, 0.15])[1];
        let after = w.congestion(&[0.5, 0.15])[1];
        assert_close(before, after, 1e-12);
    }

    #[test]
    fn weighted_protection_bound_holds_and_is_tight() {
        let w = WeightedFairShare::new(vec![1.0, 2.0, 1.0]).unwrap();
        let r0 = 0.08;
        let bound = w.protection_bound(0, r0);
        // Adversaries at various levels never push user 0 past the bound.
        for level in [0.05, 0.2, 0.5, 2.0] {
            let c = w.congestion(&[r0, level, level])[0];
            assert!(
                c <= bound * (1.0 + 1e-9),
                "c {c} > bound {bound} at {level}"
            );
        }
        // Mirror adversaries (same normalized demand) achieve it exactly.
        let mirror = [r0, 2.0 * r0, r0];
        let c = w.congestion(&mirror)[0];
        assert_close(c, bound, 1e-10);
    }

    #[test]
    fn own_derivative_matches_numeric() {
        let w = WeightedFairShare::new(vec![1.0, 2.0, 0.7]).unwrap();
        let rates = [0.1, 0.22, 0.09];
        for i in 0..3 {
            let num = greednet_numerics::diff::derivative(
                |x| {
                    let mut r = rates;
                    r[i] = x;
                    w.congestion_of(&r, i)
                },
                rates[i],
            )
            .unwrap();
            assert_close(w.d_own(&rates, i), num, 1e-4 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn overload_marks_heavy_normalized_users() {
        let w = WeightedFairShare::new(vec![1.0, 1.0]).unwrap();
        let c = w.congestion(&[0.1, 2.0]);
        assert!(c[0].is_finite());
        assert_eq!(c[1], f64::INFINITY);
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(WeightedFairShare::new(vec![]).is_err());
        assert!(WeightedFairShare::new(vec![1.0, 0.0]).is_err());
        assert!(WeightedFairShare::new(vec![1.0, -1.0]).is_err());
        assert!(WeightedFairShare::new(vec![f64::NAN]).is_err());
    }

    #[test]
    #[should_panic(expected = "weight count")]
    fn mismatched_rate_vector_panics() {
        let w = WeightedFairShare::new(vec![1.0, 1.0]).unwrap();
        let _ = w.congestion(&[0.1, 0.2, 0.3]);
    }
}
