//! The feasible allocation region of §3.1.
//!
//! An allocation `(r, c)` is *feasible* — realizable by some
//! work-conserving (non-stalling) service discipline — iff
//!
//! 1. `Σ c_i = g(Σ r_i)` (work conservation / the constraint `F = 0`), and
//! 2. for every subset `S` of users, `Σ_{i∈S} c_i ≥ g(Σ_{i∈S} r_i)`
//!    (no subset can be served better than having the switch to itself).
//!
//! Checking all `2^N` subsets is unnecessary: the paper notes it suffices
//! to check the prefixes of the ordering in which `c_i / r_i` increases.
//! [`Allocation::validate`] implements exactly that test.

use crate::error::QueueingError;
use crate::mm1;
use crate::Result;

/// Tolerance used when validating feasibility constraints (allocations
/// produced by floating-point formulas are only feasible up to rounding).
pub const FEASIBILITY_TOL: f64 = 1e-9;

/// A rate/congestion allocation `(r, c)` for `N` users.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    rates: Vec<f64>,
    congestions: Vec<f64>,
}

impl Allocation {
    /// Creates an allocation after validating shape and rate positivity
    /// (congestion feasibility is *not* checked here; see [`Self::validate`]).
    ///
    /// # Errors
    /// [`QueueingError::EmptySystem`], [`QueueingError::LengthMismatch`] or
    /// [`QueueingError::InvalidRates`].
    pub fn new(rates: Vec<f64>, congestions: Vec<f64>) -> Result<Self> {
        if rates.is_empty() {
            return Err(QueueingError::EmptySystem);
        }
        if rates.len() != congestions.len() {
            return Err(QueueingError::LengthMismatch {
                rates: rates.len(),
                congestions: congestions.len(),
            });
        }
        validate_rates(&rates)?;
        // Congestions may be infinite (overloaded users) but a NaN would
        // poison every feasibility comparison downstream.
        if let Some((i, &c)) = congestions.iter().enumerate().find(|(_, c)| c.is_nan()) {
            return Err(QueueingError::InvalidParameter {
                detail: format!("congestion {i} is NaN (got {c})"),
            });
        }
        Ok(Allocation { rates, congestions })
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True if there are no users (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The rate vector.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The congestion vector.
    pub fn congestions(&self) -> &[f64] {
        &self.congestions
    }

    /// Mean per-packet delay of user `i` (Little's law).
    pub fn delay(&self, i: usize) -> f64 {
        mm1::delay_from_queue(self.rates[i], self.congestions[i])
    }

    /// Validates feasibility (§3.1): work conservation plus all subset
    /// constraints (checked on the increasing-`c/r` prefix ordering, which
    /// the paper notes is sufficient).
    ///
    /// # Errors
    /// [`QueueingError::TotalConstraintViolated`] or
    /// [`QueueingError::SubsetConstraintViolated`].
    pub fn validate(&self) -> Result<()> {
        let total_r: f64 = self.rates.iter().sum();
        let total_c: f64 = self.congestions.iter().sum();
        let required = mm1::g(total_r);
        if required.is_infinite() {
            // Overloaded system: any (infinite) congestion is consistent.
            if total_c.is_infinite() {
                return Ok(());
            }
            return Err(QueueingError::TotalConstraintViolated {
                total_congestion: total_c,
                required,
            });
        }
        if (total_c - required).abs() > FEASIBILITY_TOL * (1.0 + required) {
            return Err(QueueingError::TotalConstraintViolated {
                total_congestion: total_c,
                required,
            });
        }
        // Subset constraints: sort by c/r ascending (r = 0 users sort first
        // with ratio 0; their constraint is trivially satisfied).
        let mut order: Vec<usize> = (0..self.len()).collect();
        // Total comparator (GN07): rates are validated finite and
        // congestions NaN-free at construction, so the ratios admit a NaN
        // only from inf/inf — which `total_cmp` still orders consistently.
        order.sort_by(|&a, &b| {
            let ra = ratio(self.congestions[a], self.rates[a]);
            let rb = ratio(self.congestions[b], self.rates[b]);
            ra.total_cmp(&rb)
        });
        let mut prefix_r = 0.0;
        let mut prefix_c = 0.0;
        for (k, &i) in order.iter().enumerate().take(self.len() - 1) {
            prefix_r += self.rates[i];
            prefix_c += self.congestions[i];
            let need = mm1::g(prefix_r);
            if prefix_c + FEASIBILITY_TOL * (1.0 + need) < need {
                return Err(QueueingError::SubsetConstraintViolated {
                    prefix: k + 1,
                    subset_congestion: prefix_c,
                    required: need,
                });
            }
        }
        Ok(())
    }

    /// True iff the allocation lies in the *interior* of the feasible set:
    /// every proper prefix constraint holds with slack at least `margin`.
    /// The paper restricts acceptable allocation functions to the interior.
    pub fn is_interior(&self, margin: f64) -> bool {
        if self.validate().is_err() {
            return false;
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = ratio(self.congestions[a], self.rates[a]);
            let rb = ratio(self.congestions[b], self.rates[b]);
            ra.total_cmp(&rb)
        });
        let mut prefix_r = 0.0;
        let mut prefix_c = 0.0;
        for &i in order.iter().take(self.len() - 1) {
            prefix_r += self.rates[i];
            prefix_c += self.congestions[i];
            if prefix_c < mm1::g(prefix_r) + margin {
                return false;
            }
        }
        true
    }
}

fn ratio(c: f64, r: f64) -> f64 {
    if r > 0.0 {
        c / r
    } else {
        0.0
    }
}

/// Validates that every rate is finite and non-negative.
///
/// # Errors
/// [`QueueingError::InvalidRates`] naming the first offending entry.
pub fn validate_rates(rates: &[f64]) -> Result<()> {
    for (i, &r) in rates.iter().enumerate() {
        if !r.is_finite() || r < 0.0 {
            return Err(QueueingError::InvalidRates { index: i, value: r });
        }
    }
    Ok(())
}

/// Exhaustive subset-feasibility check over all `2^N - 2` proper subsets.
/// Exponential — only used in tests (N ≤ ~16) to confirm that the prefix
/// criterion used by [`Allocation::validate`] is equivalent.
pub fn validate_all_subsets(alloc: &Allocation) -> Result<()> {
    let n = alloc.len();
    assert!(
        n <= 20,
        "exhaustive subset check is exponential; use validate()"
    );
    for mask in 1u32..((1u32 << n) - 1) {
        let mut sr = 0.0;
        let mut sc = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                sr += alloc.rates()[i];
                sc += alloc.congestions()[i];
            }
        }
        let need = mm1::g(sr);
        if sc + FEASIBILITY_TOL * (1.0 + need) < need {
            return Err(QueueingError::SubsetConstraintViolated {
                prefix: greednet_numerics::conv::u32_to_usize(mask.count_ones()),
                subset_congestion: sc,
                required: need,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_allocation_is_feasible() {
        let r = vec![0.1, 0.2, 0.3];
        let total: f64 = r.iter().sum();
        let c: Vec<f64> = r.iter().map(|ri| ri / (1.0 - total)).collect();
        let a = Allocation::new(r, c).unwrap();
        a.validate().unwrap();
        validate_all_subsets(&a).unwrap();
    }

    #[test]
    fn overly_generous_subset_is_rejected() {
        // Give user 0 less congestion than its solo M/M/1 queue; pile the
        // rest on user 1. Total is conserved but the subset {0} violates.
        let r = vec![0.4, 0.4];
        let total = mm1::g(0.8);
        let c0 = 0.5 * mm1::g(0.4); // below the g(0.4) floor
        let a = Allocation::new(r, vec![c0, total - c0]).unwrap();
        assert!(matches!(
            a.validate(),
            Err(QueueingError::SubsetConstraintViolated { .. })
        ));
    }

    #[test]
    fn broken_total_is_rejected() {
        let a = Allocation::new(vec![0.2, 0.2], vec![0.1, 0.1]).unwrap();
        assert!(matches!(
            a.validate(),
            Err(QueueingError::TotalConstraintViolated { .. })
        ));
    }

    #[test]
    fn prefix_criterion_matches_exhaustive_on_random_allocations() {
        // Random perturbations of the proportional allocation that keep the
        // total fixed; the prefix test and the exhaustive test must agree.
        let mut seed = 99u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for _case in 0..200 {
            let n = 4;
            let mut r = vec![0.0; n];
            for x in &mut r {
                *x = 0.05 + 0.15 * next();
            }
            let total: f64 = r.iter().sum();
            let mut c: Vec<f64> = r.iter().map(|ri| ri / (1.0 - total)).collect();
            // Transfer congestion between two users.
            let amount = (next() - 0.3) * 0.8;
            c[0] += amount;
            c[1] -= amount;
            if c.iter().any(|&x| x < 0.0) {
                continue;
            }
            let a = Allocation::new(r, c).unwrap();
            let prefix_ok = a.validate().is_ok();
            let full_ok = validate_all_subsets(&a).is_ok();
            assert_eq!(prefix_ok, full_ok, "disagreement on {a:?}");
        }
    }

    #[test]
    fn interior_detection() {
        // Proportional allocation: strictly interior for heterogeneous rates.
        let r = vec![0.1, 0.3];
        let total: f64 = r.iter().sum();
        let c: Vec<f64> = r.iter().map(|ri| ri / (1.0 - total)).collect();
        let a = Allocation::new(r.clone(), c).unwrap();
        assert!(a.is_interior(1e-6));

        // Serial-priority allocation: the light user's prefix is saturated
        // (it gets exactly its solo M/M/1 queue), so NOT interior.
        let c_sp = vec![mm1::g(0.1), mm1::g(total) - mm1::g(0.1)];
        let b = Allocation::new(r, c_sp).unwrap();
        b.validate().unwrap();
        assert!(!b.is_interior(1e-6));
    }

    #[test]
    fn overloaded_system_requires_infinite_congestion() {
        let a = Allocation::new(vec![0.7, 0.7], vec![f64::INFINITY, f64::INFINITY]).unwrap();
        a.validate().unwrap();
        let b = Allocation::new(vec![0.7, 0.7], vec![1.0, 2.0]).unwrap();
        assert!(b.validate().is_err());
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            Allocation::new(vec![], vec![]),
            Err(QueueingError::EmptySystem)
        ));
        assert!(matches!(
            Allocation::new(vec![0.1], vec![0.1, 0.2]),
            Err(QueueingError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Allocation::new(vec![-0.1], vec![0.1]),
            Err(QueueingError::InvalidRates { .. })
        ));
        assert!(matches!(
            Allocation::new(vec![f64::NAN], vec![0.1]),
            Err(QueueingError::InvalidRates { .. })
        ));
        assert!(matches!(
            Allocation::new(vec![0.1], vec![f64::NAN]),
            Err(QueueingError::InvalidParameter { .. })
        ));
        // Infinite congestion stays legal: it encodes overloaded users.
        assert!(Allocation::new(vec![0.7], vec![f64::INFINITY]).is_ok());
    }

    #[test]
    fn zero_rate_user_is_handled() {
        let r = vec![0.0, 0.4];
        let c = vec![0.0, mm1::g(0.4)];
        let a = Allocation::new(r, c).unwrap();
        a.validate().unwrap();
        assert_eq!(a.delay(0), 0.0);
        assert!((a.delay(1) - 1.0 / 0.6).abs() < 1e-12);
    }

    #[test]
    fn validate_rates_rejects_bad_values() {
        assert!(validate_rates(&[0.1, 0.2]).is_ok());
        assert!(validate_rates(&[0.1, f64::INFINITY]).is_err());
        assert!(validate_rates(&[-1e-12]).is_err());
    }
}
