//! Closed-form M/M/1 quantities.
//!
//! The switch is an exponential server of unit rate. With aggregate Poisson
//! arrival rate `x < 1` the time-averaged number of packets in the system
//! is `g(x) = x/(1-x)` — the function at the heart of the paper's
//! constraint `F(r, c) = Σ c_i − g(Σ r_i) = 0`. The paper's results hold
//! for any strictly increasing, strictly convex `g` (footnote 5); the
//! [`CongestionKernel`] trait abstracts this so that M/G/1-style kernels
//! can be swapped in, while [`Mm1Kernel`] is the default used everywhere.

/// Mean number in system for M/M/1 with unit service rate: `g(x) = x/(1-x)`.
///
/// Returns `+inf` for `x >= 1` (overload) and 0 for `x <= 0`.
pub fn g(x: f64) -> f64 {
    if x >= 1.0 {
        f64::INFINITY
    } else if x <= 0.0 {
        0.0
    } else {
        x / (1.0 - x)
    }
}

/// First derivative `g'(x) = 1/(1-x)^2` (`+inf` at or beyond saturation).
pub fn g_prime(x: f64) -> f64 {
    if x >= 1.0 {
        f64::INFINITY
    } else {
        let u = 1.0 - x;
        1.0 / (u * u)
    }
}

/// Second derivative `g''(x) = 2/(1-x)^3` (`+inf` at or beyond saturation).
pub fn g_double_prime(x: f64) -> f64 {
    if x >= 1.0 {
        f64::INFINITY
    } else {
        let u = 1.0 - x;
        2.0 / (u * u * u)
    }
}

/// Total congestion `f(r) = g(Σ r_i)` of §3.1.
pub fn total_congestion(rates: &[f64]) -> f64 {
    g(rates.iter().sum())
}

/// The paper's Pareto marginal-rate function
/// `Z_i = -∂f/∂r_i = -(1 - Σ r_j)^{-2}` (identical for every user).
pub fn pareto_z(rates: &[f64]) -> f64 {
    -g_prime(rates.iter().sum())
}

/// Mean sojourn time (delay) per packet for a user with rate `r` and mean
/// queue `c`: Little's law `c = r d` gives `d = c / r` (0 if `r == 0`).
pub fn delay_from_queue(r: f64, c: f64) -> f64 {
    if r > 0.0 {
        c / r
    } else {
        0.0
    }
}

/// Abstraction over the aggregate-congestion kernel: any strictly
/// increasing, strictly convex `g` with `g(0) = 0` supports the paper's
/// analysis (footnote 5). Implementors supply `g` and its derivatives.
pub trait CongestionKernel: Send + Sync + std::fmt::Debug {
    /// Aggregate mean queue at load `x`.
    fn g(&self, x: f64) -> f64;
    /// First derivative.
    fn g_prime(&self, x: f64) -> f64;
    /// Second derivative.
    fn g_double_prime(&self, x: f64) -> f64;
}

/// The standard M/M/1 kernel `g(x) = x/(1-x)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mm1Kernel;

impl CongestionKernel for Mm1Kernel {
    fn g(&self, x: f64) -> f64 {
        g(x)
    }
    fn g_prime(&self, x: f64) -> f64 {
        g_prime(x)
    }
    fn g_double_prime(&self, x: f64) -> f64 {
        g_double_prime(x)
    }
}

/// An M/G/1 kernel via the Pollaczek–Khinchine mean formula with squared
/// coefficient of variation `cs2` of the service distribution:
/// `L(x) = x + x^2 (1 + cs2) / (2 (1 - x))`.
///
/// `cs2 = 1` recovers M/M/1; `cs2 = 0` is M/D/1. Strictly increasing and
/// strictly convex on `[0, 1)` for every `cs2 >= 0`, so all of the paper's
/// machinery applies unchanged (footnote 5).
#[derive(Debug, Clone, Copy)]
pub struct Mg1Kernel {
    /// Squared coefficient of variation of service times.
    pub cs2: f64,
}

impl Mg1Kernel {
    /// Creates an M/G/1 kernel; `cs2` must be finite and non-negative.
    pub fn new(cs2: f64) -> Self {
        assert!(cs2.is_finite() && cs2 >= 0.0, "cs2 must be finite and >= 0");
        Mg1Kernel { cs2 }
    }
}

impl CongestionKernel for Mg1Kernel {
    fn g(&self, x: f64) -> f64 {
        if x >= 1.0 {
            f64::INFINITY
        } else if x <= 0.0 {
            0.0
        } else {
            x + x * x * (1.0 + self.cs2) / (2.0 * (1.0 - x))
        }
    }
    fn g_prime(&self, x: f64) -> f64 {
        if x >= 1.0 {
            f64::INFINITY
        } else {
            let u = 1.0 - x;
            let k = (1.0 + self.cs2) / 2.0;
            // d/dx [x + k x^2/(1-x)] = 1 + k (2x(1-x) + x^2)/(1-x)^2
            1.0 + k * (2.0 * x * u + x * x) / (u * u)
        }
    }
    fn g_double_prime(&self, x: f64) -> f64 {
        if x >= 1.0 {
            f64::INFINITY
        } else {
            let u = 1.0 - x;
            let k = (1.0 + self.cs2) / 2.0;
            // d2/dx2 [k x^2/(1-x)] = 2k / (1-x)^3
            2.0 * k / (u * u * u)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn g_known_values() {
        assert_eq!(g(0.0), 0.0);
        assert_close(g(0.5), 1.0, 1e-15);
        assert_close(g(0.9), 9.0, 1e-12);
        assert_eq!(g(1.0), f64::INFINITY);
        assert_eq!(g(1.5), f64::INFINITY);
        assert_eq!(g(-0.1), 0.0);
    }

    #[test]
    fn g_derivatives_match_finite_differences() {
        for &x in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let d = greednet_numerics::diff::derivative(g, x).unwrap();
            assert_close(g_prime(x), d, 1e-4 * g_prime(x));
            let d2 = greednet_numerics::diff::second_derivative(g, x).unwrap();
            assert_close(g_double_prime(x), d2, 1e-2 * g_double_prime(x));
        }
    }

    #[test]
    fn g_is_strictly_increasing_and_convex() {
        let xs: Vec<f64> = (1..99).map(|i| i as f64 / 100.0).collect();
        for w in xs.windows(2) {
            assert!(g(w[1]) > g(w[0]));
            assert!(g_prime(w[1]) > g_prime(w[0])); // convexity
        }
    }

    #[test]
    fn total_congestion_is_mm1() {
        assert_close(total_congestion(&[0.2, 0.3]), 1.0, 1e-12);
        assert_eq!(total_congestion(&[0.6, 0.6]), f64::INFINITY);
    }

    #[test]
    fn pareto_z_matches_formula() {
        let r = [0.1, 0.2, 0.3];
        let s: f64 = r.iter().sum();
        assert_close(pareto_z(&r), -1.0 / ((1.0 - s) * (1.0 - s)), 1e-12);
    }

    #[test]
    fn little_law_roundtrip() {
        // M/M/1 delay 1/(1-x); queue g(x) = x/(1-x): d = c/r.
        let x = 0.4;
        assert_close(delay_from_queue(x, g(x)), 1.0 / (1.0 - x), 1e-12);
        assert_eq!(delay_from_queue(0.0, 0.0), 0.0);
    }

    #[test]
    fn mg1_reduces_to_mm1_when_cs2_is_one() {
        let k = Mg1Kernel::new(1.0);
        for &x in &[0.1, 0.4, 0.8] {
            assert_close(k.g(x), g(x), 1e-12);
            assert_close(k.g_prime(x), g_prime(x), 1e-12);
            assert_close(k.g_double_prime(x), g_double_prime(x), 1e-12);
        }
    }

    #[test]
    fn md1_has_half_the_queueing_term() {
        let k = Mg1Kernel::new(0.0);
        let x = 0.5;
        // M/D/1: L = x + x^2/(2(1-x)) = 0.5 + 0.25 = 0.75.
        assert_close(k.g(x), 0.75, 1e-12);
        assert!(k.g(x) < g(x));
    }

    #[test]
    fn mg1_derivatives_match_finite_differences() {
        let k = Mg1Kernel::new(2.5);
        for &x in &[0.2, 0.5, 0.8] {
            let d = greednet_numerics::diff::derivative(|y| k.g(y), x).unwrap();
            assert_close(k.g_prime(x), d, 1e-4 * k.g_prime(x).abs());
            let d2 = greednet_numerics::diff::second_derivative(|y| k.g(y), x).unwrap();
            assert_close(k.g_double_prime(x), d2, 1e-2 * k.g_double_prime(x));
        }
    }

    #[test]
    fn mg1_overload_is_infinite() {
        let k = Mg1Kernel::new(0.5);
        assert_eq!(k.g(1.0), f64::INFINITY);
        assert_eq!(k.g_prime(1.2), f64::INFINITY);
    }
}
