//! The [`AllocationFunction`] trait: the interface between service
//! disciplines and the game-theoretic analysis.
//!
//! An allocation function `C(r)` maps the users' Poisson rates to their
//! mean queue lengths. The paper's acceptable class `AC` requires symmetry
//! (permutation equivariance), interiority and `C^1` smoothness; the trait
//! records the smoothness claim via [`AllocationFunction::is_smooth`] and
//! exposes first and second partial derivatives (with robust
//! finite-difference defaults that concrete disciplines may override with
//! exact formulas).
//!
//! Following footnote 12 of the paper, allocation functions are defined on
//! all of `R^N_+`: outside the stable region `Σ r < 1` some users receive
//! `+inf` congestion (which discipline-specific logic decides).

use crate::feasible::{validate_rates, Allocation};
use crate::Result;
use greednet_numerics::diff;
use greednet_numerics::Matrix;
use std::fmt::Debug;

/// Relative finite-difference step used by the default derivative
/// implementations. Chosen larger than `diff::STEP_FIRST` because
/// congestion values blow up near saturation and need a sturdier step.
const FD_STEP: f64 = 1e-6;

/// A service discipline's induced allocation function `C : r ↦ c`.
///
/// Implementations must be *symmetric* (permuting rates permutes
/// congestions) and *work conserving* (`Σ c_i = g(Σ r_i)` whenever
/// `Σ r_i < 1`); these contracts are validated by the property tests in
/// [`crate::mac`] and by each implementation's own tests.
pub trait AllocationFunction: Send + Sync + Debug {
    /// Human-readable discipline name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// The congestion vector `C(r)`. Rates must be finite and
    /// non-negative; entries may be `+inf` when the relevant part of the
    /// system is overloaded.
    ///
    /// # Panics
    /// May panic on negative/NaN rates (programmer error); use
    /// [`AllocationFunction::allocation`] for validated input.
    fn congestion(&self, rates: &[f64]) -> Vec<f64>;

    /// Single user's congestion `C_i(r)`.
    fn congestion_of(&self, rates: &[f64], i: usize) -> f64 {
        self.congestion(rates)[i]
    }

    /// Own-rate sensitivity `∂C_i/∂r_i`.
    fn d_own(&self, rates: &[f64], i: usize) -> f64 {
        self.fd_first(rates, i, i)
    }

    /// Cross sensitivity `∂C_i/∂r_j` (`i != j`).
    fn d_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d_own(rates, i);
        }
        self.fd_first(rates, i, j)
    }

    /// Own-rate curvature `∂²C_i/∂r_i²`.
    fn d2_own(&self, rates: &[f64], i: usize) -> f64 {
        let mut r = rates.to_vec();
        let h = FD_STEP.sqrt() * (1.0 + rates[i].abs());
        let f0 = self.congestion_of(&r, i);
        r[i] = rates[i] + h;
        let fp = self.congestion_of(&r, i);
        r[i] = (rates[i] - h).max(0.0);
        let hm = rates[i] - r[i];
        let fm = self.congestion_of(&r, i);
        // Allow an asymmetric step when clamped at r_i = 0.
        if (hm - h).abs() < 1e-15 {
            (fp - 2.0 * f0 + fm) / (h * h)
        } else {
            2.0 * (hm * fp + h * fm - (h + hm) * f0) / (h * hm * (h + hm))
        }
    }

    /// Mixed curvature `∂²C_i/∂r_i∂r_j` — the sensitivity of user `i`'s
    /// *marginal* congestion to user `j`'s rate; enters the relaxation
    /// matrix of §4.2.3.
    fn d2_own_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d2_own(rates, i);
        }
        let hi = FD_STEP.sqrt() * (1.0 + rates[i].abs());
        let hj = FD_STEP.sqrt() * (1.0 + rates[j].abs());
        let mut r = rates.to_vec();
        let mut eval = |di: f64, dj: f64| {
            r[i] = (rates[i] + di).max(0.0);
            r[j] = (rates[j] + dj).max(0.0);
            let v = self.congestion_of(&r, i);
            r[i] = rates[i];
            r[j] = rates[j];
            v
        };
        (eval(hi, hj) - eval(hi, -hj) - eval(-hi, hj) + eval(-hi, -hj)) / (4.0 * hi * hj)
    }

    /// Whether the discipline claims to be `C^1` everywhere in the domain
    /// (the paper's `AC` requirement). Non-smooth comparison baselines
    /// (e.g. serial priority) return `false`.
    fn is_smooth(&self) -> bool {
        true
    }

    /// Clones into a boxed trait object.
    fn clone_box(&self) -> Box<dyn AllocationFunction>;

    /// Validated entry point: checks rates and wraps the result in an
    /// [`Allocation`].
    ///
    /// # Errors
    /// Propagates rate-validation errors.
    fn allocation(&self, rates: &[f64]) -> Result<Allocation> {
        validate_rates(rates)?;
        Allocation::new(rates.to_vec(), self.congestion(rates))
    }

    /// The full Jacobian `[∂C_i/∂r_j]` as a matrix (row `i`, column `j`).
    fn jacobian(&self, rates: &[f64]) -> Matrix {
        let n = rates.len();
        Matrix::from_fn(n, n, |i, j| self.d_cross(rates, i, j))
    }

    /// Central-difference fallback for `∂C_i/∂r_j`, clamping at `r_j = 0`.
    #[doc(hidden)]
    fn fd_first(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        let h = FD_STEP * (1.0 + rates[j].abs());
        let mut r = rates.to_vec();
        r[j] = rates[j] + h;
        let fp = self.congestion_of(&r, i);
        r[j] = (rates[j] - h).max(0.0);
        let hm = rates[j] - r[j];
        let fm = self.congestion_of(&r, i);
        (fp - fm) / (h + hm)
    }
}

impl Clone for Box<dyn AllocationFunction> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Verifies the *symmetry* requirement of `AC` numerically: applying a
/// permutation to the rates must permute the congestions identically.
/// Returns the maximum discrepancy found across the supplied test points.
pub fn symmetry_defect(alloc: &dyn AllocationFunction, rate_vectors: &[Vec<f64>]) -> f64 {
    let mut worst: f64 = 0.0;
    for rates in rate_vectors {
        let n = rates.len();
        let base = alloc.congestion(rates);
        // Test a full reversal and a single swap; together with transitivity
        // over many test points this exercises the symmetric group well.
        let mut rev = rates.clone();
        rev.reverse();
        let crev = alloc.congestion(&rev);
        for i in 0..n {
            let d = (base[i] - crev[n - 1 - i]).abs();
            if d.is_finite() {
                worst = worst.max(d);
            }
        }
        if n >= 2 {
            let mut sw = rates.clone();
            sw.swap(0, 1);
            let csw = alloc.congestion(&sw);
            let d0 = (base[0] - csw[1]).abs();
            let d1 = (base[1] - csw[0]).abs();
            if d0.is_finite() {
                worst = worst.max(d0);
            }
            if d1.is_finite() {
                worst = worst.max(d1);
            }
        }
    }
    worst
}

/// Compares an allocation's claimed analytic Jacobian against a
/// high-accuracy finite difference; used by implementation tests. Returns
/// the max absolute discrepancy.
pub fn jacobian_defect(alloc: &dyn AllocationFunction, rates: &[f64]) -> f64 {
    let n = rates.len();
    let mut worst: f64 = 0.0;
    for i in 0..n {
        for j in 0..n {
            let analytic = alloc.d_cross(rates, i, j);
            let numeric = diff::partial(|r| alloc.congestion(r), rates, i, j).unwrap_or(f64::NAN);
            let d = (analytic - numeric).abs() / (1.0 + numeric.abs());
            if d.is_finite() {
                worst = worst.max(d);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1;

    /// A deliberately simple allocation used to exercise the trait's
    /// default (finite-difference) derivative implementations: the
    /// proportional formula written without any overrides.
    #[derive(Debug, Clone)]
    struct PlainProportional;

    impl AllocationFunction for PlainProportional {
        fn name(&self) -> &'static str {
            "plain-proportional"
        }
        fn congestion(&self, rates: &[f64]) -> Vec<f64> {
            let total: f64 = rates.iter().sum();
            rates
                .iter()
                .map(|&r| {
                    if total >= 1.0 {
                        f64::INFINITY
                    } else {
                        r / (1.0 - total)
                    }
                })
                .collect()
        }
        fn clone_box(&self) -> Box<dyn AllocationFunction> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn default_first_derivatives_match_analytic() {
        let a = PlainProportional;
        let r = [0.2, 0.3, 0.1];
        let total: f64 = r.iter().sum();
        let u = 1.0 - total;
        // ∂C_i/∂r_i = (1 - R + r_i)/(1-R)^2 ; ∂C_i/∂r_j = r_i/(1-R)^2.
        let own = a.d_own(&r, 0);
        assert!((own - (u + r[0]) / (u * u)).abs() < 1e-5, "own = {own}");
        let cross = a.d_cross(&r, 0, 1);
        assert!((cross - r[0] / (u * u)).abs() < 1e-5, "cross = {cross}");
    }

    #[test]
    fn default_second_derivatives_match_analytic() {
        let a = PlainProportional;
        let r = [0.2, 0.3];
        let u: f64 = 1.0 - 0.5;
        let d2 = a.d2_own(&r, 0);
        let expect = 2.0 / (u * u) + 2.0 * r[0] / (u * u * u);
        assert!((d2 - expect).abs() < 1e-2, "{d2} vs {expect}");
        let d2c = a.d2_own_cross(&r, 0, 1);
        // ∂²C_0/∂r_0∂r_1 = 1/u^2 + 2 r_0/u^3 (same algebra as own, minus 1/u^2).
        let expect_c = 1.0 / (u * u) + 2.0 * r[0] / (u * u * u);
        assert!((d2c - expect_c).abs() < 1e-2, "{d2c} vs {expect_c}");
    }

    #[test]
    fn fd_derivative_clamps_at_zero_rate() {
        let a = PlainProportional;
        let r = [0.0, 0.3];
        // Must not evaluate negative rates; derivative should be finite.
        let d = a.d_own(&r, 0);
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn jacobian_matrix_shape_and_values() {
        let a = PlainProportional;
        let r = [0.1, 0.2];
        let jac = a.jacobian(&r);
        assert_eq!(jac.rows(), 2);
        assert!((jac[(0, 0)] - a.d_own(&r, 0)).abs() < 1e-12);
        assert!((jac[(0, 1)] - a.d_cross(&r, 0, 1)).abs() < 1e-12);
    }

    #[test]
    fn allocation_is_work_conserving() {
        let a = PlainProportional;
        let alloc = a.allocation(&[0.1, 0.25, 0.05]).unwrap();
        alloc.validate().unwrap();
        let total: f64 = alloc.congestions().iter().sum();
        assert!((total - mm1::g(0.4)).abs() < 1e-12);
    }

    #[test]
    fn allocation_rejects_negative_rate() {
        let a = PlainProportional;
        assert!(a.allocation(&[-0.1, 0.2]).is_err());
    }

    #[test]
    fn symmetry_defect_zero_for_symmetric() {
        let a = PlainProportional;
        let pts = vec![vec![0.1, 0.2, 0.3], vec![0.05, 0.4, 0.1]];
        assert!(symmetry_defect(&a, &pts) < 1e-14);
    }

    #[test]
    fn jacobian_defect_small_for_consistent_impl() {
        let a = PlainProportional;
        assert!(jacobian_defect(&a, &[0.15, 0.3]) < 1e-4);
    }

    #[test]
    fn boxed_clone_works() {
        let b: Box<dyn AllocationFunction> = Box::new(PlainProportional);
        let c = b.clone();
        assert_eq!(c.name(), "plain-proportional");
    }
}
