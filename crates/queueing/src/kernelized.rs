//! Allocation functions over a general congestion kernel.
//!
//! Footnote 5 of the paper: *"All of the results in this paper apply to
//! any queueing system where the set of all feasible allocations can be
//! represented by a strictly increasing and strictly convex function g"* —
//! including M/G/1 systems. This module instantiates the proportional and
//! Fair Share allocations over an arbitrary [`CongestionKernel`] (e.g.
//! the Pollaczek–Khinchine M/G/1 curve), so the game-theoretic machinery
//! can be exercised — and the theorems re-verified — beyond M/M/1.
//!
//! With [`crate::mm1::Mm1Kernel`] these reduce exactly to [`crate::Proportional`] and
//! [`crate::FairShare`] (property-tested).
//!
//! One realizability caveat, verified by the packet simulator: for
//! non-exponential service, mean number-in-system is *not*
//! scheduling-invariant, so the preemptive Table 1 realization of Fair
//! Share is exact only in the M/M/1 case. Under M/G/1 the kernelized Fair
//! Share below describes the serialized Pollaczek–Khinchine feasibility
//! curve (the game-theoretic object of footnote 5); a packet scheduler
//! realizing it exactly would need to be non-preemptive within levels,
//! and the Table 1 scheduler over-charges preempted heavy users by a few
//! percent (see `md1_fair_share_table_is_exact_for_the_lightest_user_only`
//! in `greednet-des`).

use crate::alloc::AllocationFunction;
use crate::fair_share::ascending_order;
use crate::mm1::CongestionKernel;
use std::sync::Arc;

/// Proportional allocation under a general kernel:
/// `C_i = (r_i / Σr) · L(Σr)` — what FIFO induces in any M/G/1 queue
/// (identical mean delay for every class plus Little's law).
#[derive(Debug, Clone)]
pub struct KernelProportional {
    kernel: Arc<dyn CongestionKernel>,
}

impl KernelProportional {
    /// Creates the proportional allocation over `kernel`.
    pub fn new(kernel: Arc<dyn CongestionKernel>) -> Self {
        KernelProportional { kernel }
    }
}

impl AllocationFunction for KernelProportional {
    fn name(&self) -> &'static str {
        "kernel proportional"
    }

    fn congestion(&self, rates: &[f64]) -> Vec<f64> {
        let total: f64 = rates.iter().sum();
        if total >= 1.0 {
            return rates
                .iter()
                .map(|&r| if r > 0.0 { f64::INFINITY } else { 0.0 })
                .collect();
        }
        if total <= 0.0 {
            return vec![0.0; rates.len()];
        }
        let per_unit = self.kernel.g(total) / total;
        rates.iter().map(|&r| r * per_unit).collect()
    }

    fn d_own(&self, rates: &[f64], i: usize) -> f64 {
        // C_i = r_i L(R)/R; dC_i/dr_i = L/R + r_i (L' R - L)/R^2.
        let total: f64 = rates.iter().sum();
        if total >= 1.0 {
            return f64::INFINITY;
        }
        if total <= 0.0 {
            return self.kernel.g_prime(0.0);
        }
        let l = self.kernel.g(total);
        let lp = self.kernel.g_prime(total);
        l / total + rates[i] * (lp * total - l) / (total * total)
    }

    fn d_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d_own(rates, i);
        }
        let total: f64 = rates.iter().sum();
        if total >= 1.0 {
            return f64::INFINITY;
        }
        if total <= 0.0 {
            return 0.0;
        }
        let l = self.kernel.g(total);
        let lp = self.kernel.g_prime(total);
        rates[i] * (lp * total - l) / (total * total)
    }

    fn clone_box(&self) -> Box<dyn AllocationFunction> {
        Box::new(self.clone())
    }
}

/// Fair Share (serial cost sharing) under a general kernel: identical
/// serialization to [`crate::FairShare`] with `g` replaced by the kernel
/// curve — `C_(k) = C_(k-1) + [L(s_k) − L(s_{k-1})]/(n−k)`.
#[derive(Debug, Clone)]
pub struct KernelFairShare {
    kernel: Arc<dyn CongestionKernel>,
}

impl KernelFairShare {
    /// Creates the Fair Share allocation over `kernel`.
    pub fn new(kernel: Arc<dyn CongestionKernel>) -> Self {
        KernelFairShare { kernel }
    }
}

impl AllocationFunction for KernelFairShare {
    fn name(&self) -> &'static str {
        "kernel fair share"
    }

    fn congestion(&self, rates: &[f64]) -> Vec<f64> {
        let n = rates.len();
        let order = ascending_order(rates);
        let mut c = vec![0.0; n];
        let mut c_prev = 0.0;
        let mut s_prev = 0.0;
        let mut prefix = 0.0;
        for (k, &idx) in order.iter().enumerate() {
            let m = (n - k) as f64;
            let s_k = m * rates[idx] + prefix;
            let ck = if s_k >= 1.0 {
                f64::INFINITY
            } else {
                c_prev + (self.kernel.g(s_k) - self.kernel.g(s_prev)) / m
            };
            c[idx] = ck;
            if ck.is_infinite() {
                for &rest in order.iter().skip(k + 1) {
                    c[rest] = f64::INFINITY;
                }
                break;
            }
            c_prev = ck;
            s_prev = s_k;
            prefix += rates[idx];
        }
        c
    }

    fn d_own(&self, rates: &[f64], i: usize) -> f64 {
        // Inverted-permutation lookup is total for any valid `i`: no
        // search loop, no panic path (GN06).
        let n = rates.len();
        let order = ascending_order(rates);
        let k = crate::fair_share::sorted_positions(&order)[i];
        let m = (n - k) as f64;
        let prefix: f64 = order[..k].iter().map(|&idx| rates[idx]).sum();
        self.kernel.g_prime(m * rates[i] + prefix)
    }

    fn d_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d_own(rates, i);
        }
        if rates[j] >= rates[i] {
            return 0.0; // insularity holds for every convex kernel
        }
        // Fall back to the trait's finite difference for the lower
        // triangle (exact formulas exist but the FD is accurate and this
        // path is cold).
        self.fd_first(rates, i, j)
    }

    fn d2_own(&self, rates: &[f64], i: usize) -> f64 {
        let n = rates.len();
        let order = ascending_order(rates);
        let k = crate::fair_share::sorted_positions(&order)[i];
        let m = (n - k) as f64;
        let prefix: f64 = order[..k].iter().map(|&idx| rates[idx]).sum();
        m * self.kernel.g_double_prime(m * rates[i] + prefix)
    }

    fn clone_box(&self) -> Box<dyn AllocationFunction> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{jacobian_defect, symmetry_defect};
    use crate::mm1::{Mg1Kernel, Mm1Kernel};
    use crate::{FairShare, Proportional};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn mm1_kernel_reduces_to_plain_proportional() {
        let kp = KernelProportional::new(Arc::new(Mm1Kernel));
        let p = Proportional::new();
        for rates in [vec![0.1, 0.3], vec![0.05, 0.2, 0.4]] {
            let a = kp.congestion(&rates);
            let b = p.congestion(&rates);
            for (x, y) in a.iter().zip(&b) {
                assert_close(*x, *y, 1e-12);
            }
            for i in 0..rates.len() {
                assert_close(kp.d_own(&rates, i), p.d_own(&rates, i), 1e-10);
            }
        }
    }

    #[test]
    fn mm1_kernel_reduces_to_plain_fair_share() {
        let kf = KernelFairShare::new(Arc::new(Mm1Kernel));
        let f = FairShare::new();
        for rates in [vec![0.1, 0.3], vec![0.3, 0.05, 0.2]] {
            let a = kf.congestion(&rates);
            let b = f.congestion(&rates);
            for (x, y) in a.iter().zip(&b) {
                assert_close(*x, *y, 1e-12);
            }
            for i in 0..rates.len() {
                assert_close(kf.d_own(&rates, i), f.d_own(&rates, i), 1e-10);
                assert_close(kf.d2_own(&rates, i), f.d2_own(&rates, i), 1e-8);
            }
        }
    }

    #[test]
    fn md1_work_conservation() {
        let kernel = Arc::new(Mg1Kernel::new(0.0));
        let rates = [0.1, 0.2, 0.25];
        let total: f64 = rates.iter().sum();
        for alloc in [
            Box::new(KernelProportional::new(kernel.clone())) as Box<dyn AllocationFunction>,
            Box::new(KernelFairShare::new(kernel.clone())),
        ] {
            let sum: f64 = alloc.congestion(&rates).iter().sum();
            assert_close(sum, kernel.g(total), 1e-10);
        }
    }

    #[test]
    fn md1_fair_share_insularity_and_symmetry() {
        let kernel = Arc::new(Mg1Kernel::new(0.0));
        let kf = KernelFairShare::new(kernel);
        let rates = [0.3, 0.1, 0.2];
        assert_eq!(kf.d_cross(&rates, 1, 0), 0.0);
        assert!(kf.d_cross(&rates, 0, 1) > 0.0);
        let pts = vec![vec![0.1, 0.2, 0.3], vec![0.25, 0.05, 0.2]];
        assert!(symmetry_defect(&kf, &pts) < 1e-10);
    }

    #[test]
    fn derivatives_match_numeric_for_hyper_kernel() {
        let kernel = Arc::new(Mg1Kernel::new(4.0));
        let kp = KernelProportional::new(kernel.clone());
        let kf = KernelFairShare::new(kernel);
        for rates in [vec![0.1, 0.25], vec![0.05, 0.15, 0.3]] {
            assert!(jacobian_defect(&kp, &rates) < 1e-4, "prop {rates:?}");
            assert!(jacobian_defect(&kf, &rates) < 1e-4, "fs {rates:?}");
        }
    }

    #[test]
    fn md1_queues_are_smaller_than_mm1() {
        // Less service variability, less queueing — everywhere.
        let md1 = KernelFairShare::new(Arc::new(Mg1Kernel::new(0.0)));
        let mm1 = FairShare::new();
        let rates = [0.1, 0.2, 0.3];
        let a = md1.congestion(&rates);
        let b = mm1.congestion(&rates);
        for (x, y) in a.iter().zip(&b) {
            assert!(x < y, "M/D/1 {x} !< M/M/1 {y}");
        }
    }

    #[test]
    fn overload_handling() {
        let kf = KernelFairShare::new(Arc::new(Mg1Kernel::new(0.0)));
        let c = kf.congestion(&[0.1, 2.0]);
        assert!(c[0].is_finite());
        assert_eq!(c[1], f64::INFINITY);
        let kp = KernelProportional::new(Arc::new(Mg1Kernel::new(0.0)));
        let c = kp.congestion(&[0.6, 0.6]);
        assert!(c.iter().all(|x| x.is_infinite()));
    }
}
