//! Numerical verification of the paper's **MAC** conditions
//! (Definition 2): monotone acceptable allocation functions satisfy
//!
//! 1. `∂C_i/∂r_j ≥ 0` for all `i, j` — nobody benefits from another user's
//!    extra throughput;
//! 2. `∂C_i/∂r_i > 0` — your own congestion strictly rises with your rate;
//! 3. a technical persistence condition on where cross-derivatives vanish.
//!
//! Conditions 1 and 2 are checked pointwise over user-supplied sample
//! grids; condition 3 is checked in its contrapositive sampling form (once
//! a cross-derivative vanishes at `r°`, it must remain zero as `r_i`
//! decreases and the other rates increase).

use crate::alloc::AllocationFunction;

/// One violated MAC condition at a sample point.
#[derive(Debug, Clone, PartialEq)]
pub struct MacViolation {
    /// Which numbered condition of Definition 2 failed (1, 2 or 3).
    pub condition: u8,
    /// The sample point.
    pub rates: Vec<f64>,
    /// Affected user `i`.
    pub i: usize,
    /// Affecting user `j` (equals `i` for condition 2).
    pub j: usize,
    /// The offending derivative value.
    pub value: f64,
}

/// Result of a MAC sweep.
#[derive(Debug, Clone, Default)]
pub struct MacReport {
    /// All violations found (empty means the sweep passed).
    pub violations: Vec<MacViolation>,
    /// Number of (point, i, j) triples examined.
    pub checks: usize,
}

impl MacReport {
    /// True if no violation was detected.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Numerical slack used for the `≥ 0` comparisons (finite differencing and
/// floating-point evaluation both introduce noise).
pub const MAC_TOL: f64 = 1e-7;

/// Sweeps conditions 1 and 2 of Definition 2 over the given sample points.
pub fn check_monotonicity(alloc: &dyn AllocationFunction, points: &[Vec<f64>]) -> MacReport {
    let mut report = MacReport::default();
    for rates in points {
        let n = rates.len();
        for i in 0..n {
            for j in 0..n {
                report.checks += 1;
                let d = alloc.d_cross(rates, i, j);
                if !d.is_finite() {
                    continue; // at/beyond saturation: skip
                }
                if i == j {
                    if d <= MAC_TOL {
                        report.violations.push(MacViolation {
                            condition: 2,
                            rates: rates.clone(),
                            i,
                            j,
                            value: d,
                        });
                    }
                } else if d < -MAC_TOL {
                    report.violations.push(MacViolation {
                        condition: 1,
                        rates: rates.clone(),
                        i,
                        j,
                        value: d,
                    });
                }
            }
        }
    }
    report
}

/// Samples condition 3 of Definition 2: wherever `∂C_i/∂r_j = 0` (i ≠ j),
/// the derivative must stay zero after decreasing `r_i` and/or increasing
/// any `r_k` (k ≠ i). For each sample point with a vanishing
/// cross-derivative, a handful of perturbed points in the mandated
/// directions are re-tested.
pub fn check_persistence(
    alloc: &dyn AllocationFunction,
    points: &[Vec<f64>],
    step: f64,
) -> MacReport {
    let mut report = MacReport::default();
    for rates in points {
        let n = rates.len();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d0 = alloc.d_cross(rates, i, j);
                if !d0.is_finite() || d0.abs() > MAC_TOL {
                    continue;
                }
                // The derivative vanishes here; perturb in the directions
                // where Definition 2(3) says it must remain zero.
                let mut variants: Vec<Vec<f64>> = Vec::new();
                let mut down_i = rates.clone();
                down_i[i] = (down_i[i] - step).max(0.0);
                variants.push(down_i);
                for k in 0..n {
                    if k == i {
                        continue;
                    }
                    let mut up_k = rates.clone();
                    up_k[k] += step;
                    variants.push(up_k);
                }
                for v in variants {
                    if v.iter().sum::<f64>() >= 0.98 {
                        continue; // stay inside the stable region
                    }
                    report.checks += 1;
                    let d = alloc.d_cross(&v, i, j);
                    if d.is_finite() && d.abs() > 10.0 * MAC_TOL {
                        report.violations.push(MacViolation {
                            condition: 3,
                            rates: v.clone(),
                            i,
                            j,
                            value: d,
                        });
                    }
                }
            }
        }
    }
    report
}

/// Standard grid of sample points used by MAC sweeps: all rate vectors on
/// a coarse lattice with total load below `max_load`.
pub fn sample_grid(n: usize, levels: &[f64], max_load: f64) -> Vec<Vec<f64>> {
    let mut points = Vec::new();
    let mut current = vec![0.0; n];
    fill(&mut points, &mut current, 0, levels, max_load);
    points
}

fn fill(
    points: &mut Vec<Vec<f64>>,
    current: &mut Vec<f64>,
    idx: usize,
    levels: &[f64],
    max_load: f64,
) {
    if idx == current.len() {
        let total: f64 = current.iter().sum();
        if total < max_load && current.iter().all(|&r| r > 0.0) {
            points.push(current.clone());
        }
        return;
    }
    for &l in levels {
        current[idx] = l;
        fill(points, current, idx + 1, levels, max_load);
    }
    current[idx] = 0.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blend::Blend;
    use crate::fair_share::FairShare;
    use crate::proportional::Proportional;
    use crate::serial_priority::SerialPriority;

    fn grid3() -> Vec<Vec<f64>> {
        sample_grid(3, &[0.05, 0.15, 0.25], 0.9)
    }

    #[test]
    fn grid_respects_load_cap() {
        let pts = grid3();
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(p.iter().sum::<f64>() < 0.9);
        }
    }

    #[test]
    fn proportional_is_monotone() {
        let r = check_monotonicity(&Proportional::new(), &grid3());
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert!(r.checks > 0);
    }

    #[test]
    fn fair_share_is_monotone() {
        let r = check_monotonicity(&FairShare::new(), &grid3());
        assert!(r.passed(), "violations: {:?}", r.violations);
    }

    #[test]
    fn serial_priority_is_monotone() {
        let r = check_monotonicity(&SerialPriority::new(), &grid3());
        assert!(r.passed(), "violations: {:?}", r.violations);
    }

    #[test]
    fn blend_is_monotone() {
        let b = Blend::new(
            Box::new(Proportional::new()),
            Box::new(FairShare::new()),
            0.5,
        )
        .unwrap();
        let r = check_monotonicity(&b, &grid3());
        assert!(r.passed(), "violations: {:?}", r.violations);
    }

    #[test]
    fn fair_share_satisfies_persistence() {
        let r = check_persistence(&FairShare::new(), &grid3(), 0.02);
        assert!(r.passed(), "violations: {:?}", r.violations);
    }

    #[test]
    fn proportional_persistence_vacuous() {
        // Proportional cross-derivatives never vanish in the interior, so
        // the persistence sweep has nothing to check — and passes.
        let r = check_persistence(&Proportional::new(), &grid3(), 0.02);
        assert!(r.passed());
        assert_eq!(r.checks, 0);
    }

    #[test]
    fn a_non_mac_allocation_is_caught() {
        /// Deliberately pathological: gives user 0 congestion decreasing in
        /// user 1's rate (violates condition 1) by swapping the FIFO shares.
        #[derive(Debug, Clone)]
        struct AntiMonotone;
        impl AllocationFunction for AntiMonotone {
            fn name(&self) -> &'static str {
                "anti-monotone"
            }
            fn congestion(&self, rates: &[f64]) -> Vec<f64> {
                // Two users: exchange the proportional shares.
                let total: f64 = rates.iter().sum();
                if total >= 1.0 {
                    return vec![f64::INFINITY; rates.len()];
                }
                let mut c: Vec<f64> = rates.iter().map(|&r| r / (1.0 - total)).collect();
                c.reverse();
                c
            }
            fn clone_box(&self) -> Box<dyn AllocationFunction> {
                Box::new(self.clone())
            }
        }
        // For 2 users, C_0 = r_1/(1-R): dC_0/dr_0 = r_1/(1-R)^2 > 0 (ok),
        // but dC_0/dr_1 = (1-R+r_1)/(1-R)^2 > 0 too... both positive.
        // The violation is condition 2 asymmetry: let's check with a point
        // where dC_i/dr_i can dip: r_0 large, r_1 = tiny.
        // Actually dC_0/dr_0 = d/dr_0 [r_1/(1-R)] = r_1/(1-R)^2 -> 0 as r_1 -> 0,
        // violating the STRICT positivity of condition 2.
        let pts = vec![vec![0.4, 1e-9]];
        let r = check_monotonicity(&AntiMonotone, &pts);
        assert!(!r.passed());
        assert_eq!(r.violations[0].condition, 2);
    }
}
