//! The proportional allocation `C_i = r_i / (1 - Σ r_j)` — what FIFO,
//! LIFO-preemptive and egalitarian processor sharing all induce on mean
//! per-user queue lengths in an M/M/1 system.
//!
//! This is the paper's foil: it is in MAC, but its Nash equilibria are
//! never Pareto optimal (Theorem 2), it is not unilaterally envy-free
//! (Theorem 3), equilibria need not be unique (Theorem 4), Newton
//! self-optimization can be violently unstable (the `1 − N` eigenvalue of
//! §4.2.3), and it offers no protection against aggressive users
//! (Theorem 8).

use crate::alloc::AllocationFunction;
use crate::mm1;

/// The proportional (FIFO) allocation function.
#[derive(Debug, Clone, Copy, Default)]
pub struct Proportional;

impl Proportional {
    /// Creates the proportional allocation function.
    pub fn new() -> Self {
        Proportional
    }
}

impl AllocationFunction for Proportional {
    fn name(&self) -> &'static str {
        "proportional (FIFO)"
    }

    fn congestion(&self, rates: &[f64]) -> Vec<f64> {
        let total: f64 = rates.iter().sum();
        if total >= 1.0 {
            // Overload: every user with positive rate sees an unbounded queue.
            return rates
                .iter()
                .map(|&r| if r > 0.0 { f64::INFINITY } else { 0.0 })
                .collect();
        }
        let inv = 1.0 / (1.0 - total);
        rates.iter().map(|&r| r * inv).collect()
    }

    fn congestion_of(&self, rates: &[f64], i: usize) -> f64 {
        let total: f64 = rates.iter().sum();
        if total >= 1.0 {
            if rates[i] > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            rates[i] / (1.0 - total)
        }
    }

    fn d_own(&self, rates: &[f64], i: usize) -> f64 {
        let total: f64 = rates.iter().sum();
        if total >= 1.0 {
            return f64::INFINITY;
        }
        let u = 1.0 - total;
        (u + rates[i]) / (u * u)
    }

    fn d_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d_own(rates, i);
        }
        let total: f64 = rates.iter().sum();
        if total >= 1.0 {
            return f64::INFINITY;
        }
        let u = 1.0 - total;
        rates[i] / (u * u)
    }

    fn d2_own(&self, rates: &[f64], i: usize) -> f64 {
        let total: f64 = rates.iter().sum();
        if total >= 1.0 {
            return f64::INFINITY;
        }
        let u = 1.0 - total;
        2.0 / (u * u) + 2.0 * rates[i] / (u * u * u)
    }

    fn d2_own_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d2_own(rates, i);
        }
        let total: f64 = rates.iter().sum();
        if total >= 1.0 {
            return f64::INFINITY;
        }
        let u = 1.0 - total;
        1.0 / (u * u) + 2.0 * rates[i] / (u * u * u)
    }

    fn clone_box(&self) -> Box<dyn AllocationFunction> {
        Box::new(*self)
    }
}

/// Exact total congestion sanity helper: `Σ C_i^P = g(Σ r)` by construction.
pub fn total(rates: &[f64]) -> f64 {
    mm1::total_congestion(rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{jacobian_defect, symmetry_defect};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn matches_mm1_formula() {
        let p = Proportional::new();
        let c = p.congestion(&[0.2, 0.3]);
        assert_close(c[0], 0.4, 1e-12);
        assert_close(c[1], 0.6, 1e-12);
        let total: f64 = c.iter().sum();
        assert_close(total, mm1::g(0.5), 1e-12);
    }

    #[test]
    fn single_user_is_plain_mm1() {
        let p = Proportional::new();
        let c = p.congestion(&[0.6]);
        assert_close(c[0], mm1::g(0.6), 1e-12);
    }

    #[test]
    fn overload_gives_infinite_queues() {
        let p = Proportional::new();
        let c = p.congestion(&[0.7, 0.7, 0.0]);
        assert_eq!(c[0], f64::INFINITY);
        assert_eq!(c[1], f64::INFINITY);
        assert_eq!(c[2], 0.0);
        assert_eq!(p.d_own(&[0.7, 0.7, 0.0], 0), f64::INFINITY);
    }

    #[test]
    fn analytic_derivatives_match_numeric() {
        let p = Proportional::new();
        for rates in [vec![0.2, 0.3], vec![0.1, 0.05, 0.4], vec![0.25; 3]] {
            assert!(jacobian_defect(&p, &rates) < 1e-5, "rates {rates:?}");
        }
    }

    #[test]
    fn second_derivatives_match_numeric() {
        let p = Proportional::new();
        let r = [0.2, 0.3];
        let num =
            greednet_numerics::diff::second_derivative(|x| p.congestion_of(&[x, 0.3], 0), 0.2)
                .unwrap();
        assert_close(p.d2_own(&r, 0), num, 1e-3 * num.abs());
        let num_c =
            greednet_numerics::diff::mixed_second(|x| p.congestion_of(x, 0), &[0.2, 0.3], 0, 1)
                .unwrap();
        assert_close(p.d2_own_cross(&r, 0, 1), num_c, 1e-2 * num_c.abs());
    }

    #[test]
    fn is_symmetric() {
        let p = Proportional::new();
        let pts = vec![vec![0.1, 0.2, 0.3], vec![0.3, 0.2, 0.1], vec![0.15, 0.15]];
        assert!(symmetry_defect(&p, &pts) < 1e-14);
    }

    #[test]
    fn allocation_is_feasible_and_interior() {
        let p = Proportional::new();
        let a = p.allocation(&[0.1, 0.2, 0.3]).unwrap();
        a.validate().unwrap();
        assert!(a.is_interior(1e-9));
    }

    #[test]
    fn congestion_of_matches_vector_version() {
        let p = Proportional::new();
        let r = [0.12, 0.05, 0.33];
        let v = p.congestion(&r);
        for (i, &vi) in v.iter().enumerate() {
            assert_close(p.congestion_of(&r, i), vi, 1e-15);
        }
    }

    #[test]
    fn zero_rate_user_has_zero_queue() {
        let p = Proportional::new();
        let c = p.congestion(&[0.0, 0.5]);
        assert_eq!(c[0], 0.0);
        // ... but still a positive marginal queue (it would queue behind others).
        assert!(p.d_own(&[0.0, 0.5], 0) > 0.0);
    }
}
