//! Ascending-rate preemptive priority ("serve the lightest user first").
//!
//! With users sorted by ascending rate and cumulative loads
//! `Λ_k = Σ_{l≤k} r_(l)`, preemptive priority gives the top-`k` classes an
//! M/M/1 system of their own, so `Σ_{l≤k} c_(l) = g(Λ_k)` and
//!
//! ```text
//! c_(k) = g(Λ_k) − g(Λ_{k−1})
//! ```
//!
//! This discipline *saturates* the subset-feasibility constraints (every
//! light-prefix gets exactly its solo M/M/1 queue), so it sits on the
//! boundary of the feasible set and is **not** in the paper's acceptable
//! class `AC` (which requires interior allocations); it is also not `C^1`
//! at rate ties. It is included as the natural "maximally protective but
//! non-smooth" comparison point against Fair Share, which can be read as
//! its smoothed interior counterpart. Ties are handled by averaging within
//! blocks of equal rates, which restores exact symmetry.

use crate::alloc::AllocationFunction;
use crate::fair_share::ascending_order;
use crate::mm1::{g, g_double_prime, g_prime};

/// The ascending-rate preemptive-priority allocation function.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialPriority;

impl SerialPriority {
    /// Creates the serial-priority allocation function.
    pub fn new() -> Self {
        SerialPriority
    }
}

impl AllocationFunction for SerialPriority {
    fn name(&self) -> &'static str {
        "serial priority"
    }

    fn congestion(&self, rates: &[f64]) -> Vec<f64> {
        let n = rates.len();
        let order = ascending_order(rates);
        let sorted: Vec<f64> = order.iter().map(|&i| rates[i]).collect();
        let mut c = vec![0.0; n];
        // Walk tie blocks: users with equal rates share their block's total
        // congestion equally (symmetry).
        let mut k = 0usize;
        let mut lambda_prev = 0.0;
        while k < n {
            let mut end = k + 1;
            while end < n && sorted[end] == sorted[k] {
                end += 1;
            }
            let block_load: f64 = sorted[k..end].iter().sum();
            let lambda_end = lambda_prev + block_load;
            let block_c = g(lambda_end) - g(lambda_prev);
            let per_user = if block_c.is_finite() {
                block_c / (end - k) as f64
            } else {
                f64::INFINITY
            };
            for &idx in order.iter().take(end).skip(k) {
                c[idx] = per_user;
            }
            lambda_prev = lambda_end;
            if !lambda_end.is_finite() || lambda_end >= 1.0 {
                // Everyone heavier is overloaded too.
                for &idx in order.iter().skip(end) {
                    c[idx] = f64::INFINITY;
                }
                return c;
            }
            k = end;
        }
        c
    }

    fn d_own(&self, rates: &[f64], i: usize) -> f64 {
        let (lambda_k, _) = cumulative_to(rates, i);
        g_prime(lambda_k)
    }

    fn d_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d_own(rates, i);
        }
        if rates[j] >= rates[i] {
            return 0.0;
        }
        let (lambda_k, lambda_km1) = cumulative_to(rates, i);
        g_prime(lambda_k) - g_prime(lambda_km1)
    }

    fn d2_own(&self, rates: &[f64], i: usize) -> f64 {
        let (lambda_k, _) = cumulative_to(rates, i);
        g_double_prime(lambda_k)
    }

    fn d2_own_cross(&self, rates: &[f64], i: usize, j: usize) -> f64 {
        if i == j {
            return self.d2_own(rates, i);
        }
        if rates[j] >= rates[i] {
            return 0.0;
        }
        let (lambda_k, _) = cumulative_to(rates, i);
        g_double_prime(lambda_k)
    }

    fn is_smooth(&self) -> bool {
        false // not C^1 at rate ties
    }

    fn clone_box(&self) -> Box<dyn AllocationFunction> {
        Box::new(*self)
    }
}

/// Cumulative loads `(Λ_k, Λ_{k-1})` around user `i`'s sorted position.
/// Total for any valid user index — the inverted-permutation lookup
/// replaces a search loop that needed an `unreachable!` arm (GN06).
fn cumulative_to(rates: &[f64], i: usize) -> (f64, f64) {
    let order = ascending_order(rates);
    let k = crate::fair_share::sorted_positions(&order)[i];
    let prev: f64 = order[..k].iter().map(|&idx| rates[idx]).sum();
    (prev + rates[i], prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::symmetry_defect;
    use crate::mm1;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn prefix_sums_equal_solo_mm1() {
        let sp = SerialPriority::new();
        let rates = [0.1, 0.2, 0.3];
        let c = sp.congestion(&rates);
        assert_close(c[0], mm1::g(0.1), 1e-12);
        assert_close(c[0] + c[1], mm1::g(0.3), 1e-12);
        assert_close(c[0] + c[1] + c[2], mm1::g(0.6), 1e-12);
    }

    #[test]
    fn work_conservation_and_feasibility() {
        let sp = SerialPriority::new();
        let a = sp.allocation(&[0.15, 0.05, 0.3]).unwrap();
        a.validate().unwrap();
        crate::feasible::validate_all_subsets(&a).unwrap();
        // Boundary allocation: NOT interior.
        assert!(!a.is_interior(1e-9));
    }

    #[test]
    fn tie_averaging_restores_symmetry() {
        let sp = SerialPriority::new();
        let c = sp.congestion(&[0.2, 0.2]);
        assert_close(c[0], c[1], 1e-15);
        assert_close(c[0] + c[1], mm1::g(0.4), 1e-12);
        let pts = vec![vec![0.1, 0.2, 0.3], vec![0.2, 0.2, 0.1]];
        assert!(symmetry_defect(&sp, &pts) < 1e-12);
    }

    #[test]
    fn lightest_user_fully_insulated() {
        let sp = SerialPriority::new();
        let a = sp.congestion(&[0.1, 0.3]);
        let b = sp.congestion(&[0.1, 0.85]);
        assert_close(a[0], b[0], 1e-14);
        assert_close(a[0], mm1::g(0.1), 1e-14);
    }

    #[test]
    fn overload_hits_heavy_users_only() {
        let sp = SerialPriority::new();
        let c = sp.congestion(&[0.2, 0.9]);
        assert_close(c[0], mm1::g(0.2), 1e-12);
        assert_eq!(c[1], f64::INFINITY);
    }

    #[test]
    fn derivatives_match_numeric_away_from_ties() {
        let sp = SerialPriority::new();
        let rates = [0.1, 0.25, 0.4];
        for i in 0..3 {
            let num = greednet_numerics::diff::derivative(
                |x| {
                    let mut r = rates;
                    r[i] = x;
                    sp.congestion_of(&r, i)
                },
                rates[i],
            )
            .unwrap();
            assert_close(sp.d_own(&rates, i), num, 1e-4 * num.abs());
        }
        // Cross: light user 0 affects heavy user 2.
        let num = greednet_numerics::diff::partial(|r| sp.congestion(r), &rates, 2, 0).unwrap();
        assert_close(sp.d_cross(&rates, 2, 0), num, 1e-3 * (1.0 + num.abs()));
        assert_eq!(sp.d_cross(&rates, 0, 2), 0.0);
    }

    #[test]
    fn not_smooth_flag() {
        assert!(!SerialPriority::new().is_smooth());
    }

    #[test]
    fn d2_matches_numeric() {
        let sp = SerialPriority::new();
        let rates = [0.1, 0.25, 0.4];
        let num = greednet_numerics::diff::second_derivative(
            |x| sp.congestion_of(&[0.1, 0.25, x], 2),
            0.4,
        )
        .unwrap();
        assert_close(sp.d2_own(&rates, 2), num, 1e-2 * num.abs());
    }
}
