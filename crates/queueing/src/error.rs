//! Error type for the queueing-theory layer.

use std::fmt;

/// Errors produced when constructing or validating allocations.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueingError {
    /// A rate vector contained a negative, NaN, or infinite entry.
    InvalidRates {
        /// Index of the offending rate.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Rate and congestion vectors disagree in length.
    LengthMismatch {
        /// Number of rates supplied.
        rates: usize,
        /// Number of congestions supplied.
        congestions: usize,
    },
    /// The work-conservation constraint `Σ c_i = g(Σ r_i)` is violated.
    TotalConstraintViolated {
        /// Observed total congestion.
        total_congestion: f64,
        /// Required total `g(Σ r_i)`.
        required: f64,
    },
    /// A subset constraint `Σ_{i∈S} c_i ≥ g(Σ_{i∈S} r_i)` is violated.
    SubsetConstraintViolated {
        /// Size of the violating prefix (in the c/r-sorted order).
        prefix: usize,
        /// Observed subset congestion.
        subset_congestion: f64,
        /// Required minimum.
        required: f64,
    },
    /// An empty user set was supplied where at least one user is required.
    EmptySystem,
    /// A blend weight or other parameter was outside its valid range.
    InvalidParameter {
        /// Explanation of the violated requirement.
        detail: String,
    },
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueingError::InvalidRates { index, value } => {
                write!(f, "rate {index} is invalid: {value} (rates must be finite and >= 0)")
            }
            QueueingError::LengthMismatch { rates, congestions } => {
                write!(f, "{rates} rates but {congestions} congestions")
            }
            QueueingError::TotalConstraintViolated { total_congestion, required } => write!(
                f,
                "work conservation violated: sum of congestions {total_congestion} != g(sum r) = {required}"
            ),
            QueueingError::SubsetConstraintViolated { prefix, subset_congestion, required } => {
                write!(
                    f,
                    "subset feasibility violated for the {prefix} lightest users: {subset_congestion} < {required}"
                )
            }
            QueueingError::EmptySystem => write!(f, "at least one user is required"),
            QueueingError::InvalidParameter { detail } => write!(f, "invalid parameter: {detail}"),
        }
    }
}

impl std::error::Error for QueueingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases: Vec<QueueingError> = vec![
            QueueingError::InvalidRates {
                index: 2,
                value: -1.0,
            },
            QueueingError::LengthMismatch {
                rates: 3,
                congestions: 2,
            },
            QueueingError::TotalConstraintViolated {
                total_congestion: 1.0,
                required: 2.0,
            },
            QueueingError::SubsetConstraintViolated {
                prefix: 1,
                subset_congestion: 0.1,
                required: 0.2,
            },
            QueueingError::EmptySystem,
            QueueingError::InvalidParameter {
                detail: "theta".into(),
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
