//! Criterion micro-benchmarks: Nash equilibrium computation — best
//! responses, full solves, verification, and the Stackelberg outer loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greednet_core::game::{Game, NashOptions};
use greednet_core::relaxation::relaxation_matrix;
use greednet_core::stackelberg::{solve as stackelberg_solve, StackelbergOptions};
use greednet_core::utility::{BoxedUtility, LogUtility, UtilityExt};
use greednet_queueing::{FairShare, Proportional};
use std::hint::black_box;
use std::time::Duration;

fn log_users(n: usize) -> Vec<BoxedUtility> {
    (0..n)
        .map(|i| LogUtility::new(0.3 + 0.1 * i as f64, 1.0).boxed())
        .collect()
}

fn bench_best_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_response");
    for n in [4usize, 16] {
        let game = Game::new(FairShare::new(), log_users(n)).unwrap();
        let rates = vec![0.5 / n as f64; n];
        group.bench_with_input(BenchmarkId::new("fair_share", n), &rates, |b, r| {
            b.iter(|| game.best_response(black_box(r), 0, 96).unwrap());
        });
    }
    group.finish();
}

fn bench_solve_nash(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_nash");
    group.sample_size(20);
    for n in [2usize, 4, 8] {
        for (name, game) in [
            (
                "fair_share",
                Game::new(FairShare::new(), log_users(n)).unwrap(),
            ),
            (
                "fifo",
                Game::new(Proportional::new(), log_users(n)).unwrap(),
            ),
        ] {
            group.bench_function(BenchmarkId::new(name, n), |b| {
                b.iter(|| game.solve_nash(black_box(&NashOptions::default())).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_verify_and_relaxation(c: &mut Criterion) {
    let game = Game::new(FairShare::new(), log_users(4)).unwrap();
    let nash = game.solve_nash(&NashOptions::default()).unwrap();
    c.bench_function("verify_nash_n4", |b| {
        b.iter(|| game.verify_nash(black_box(&nash.rates), 128).unwrap());
    });
    c.bench_function("relaxation_matrix_n4", |b| {
        b.iter(|| relaxation_matrix(&game, black_box(&nash.rates)));
    });
}

fn bench_stackelberg(c: &mut Criterion) {
    let mut group = c.benchmark_group("stackelberg");
    group.sample_size(10);
    let game = Game::new(Proportional::new(), log_users(3)).unwrap();
    let opts = StackelbergOptions {
        leader_grid: 16,
        refinements: 8,
        ..Default::default()
    };
    group.bench_function("fifo_n3_grid16", |b| {
        b.iter(|| stackelberg_solve(&game, 0, black_box(&opts)).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` wall-clock friendly;
    // bump these locally for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    targets = bench_best_response,
    bench_solve_nash,
    bench_verify_and_relaxation,
    bench_stackelberg
}
criterion_main!(benches);
