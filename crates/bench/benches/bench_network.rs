//! Criterion micro-benchmarks: the §5.4 network layer — route-summed
//! congestion evaluation and network equilibrium solves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greednet_core::game::NashOptions;
use greednet_core::utility::{BoxedUtility, LogUtility, UtilityExt};
use greednet_network::{NetworkGame, Topology};
use greednet_queueing::FairShare;
use std::hint::black_box;
use std::time::Duration;

fn users(n: usize) -> Vec<BoxedUtility> {
    (0..n)
        .map(|i| LogUtility::new(0.3 + 0.05 * i as f64, 1.0).boxed())
        .collect()
}

fn bench_congestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_congestion");
    for k in [2usize, 4, 8] {
        let t = Topology::parking_lot(k).unwrap();
        let n = t.users();
        let net = NetworkGame::new(t, Box::new(FairShare::new()), users(n)).unwrap();
        let rates = vec![0.3 / n as f64; n];
        group.bench_with_input(BenchmarkId::new("parking_lot", k), &rates, |b, r| {
            b.iter(|| net.congestion(black_box(r)));
        });
    }
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_solve_nash");
    group.sample_size(10);
    for k in [2usize, 4] {
        let t = Topology::parking_lot(k).unwrap();
        let n = t.users();
        let net = NetworkGame::new(t, Box::new(FairShare::new()), users(n)).unwrap();
        group.bench_function(BenchmarkId::new("parking_lot", k), |b| {
            b.iter(|| net.solve_nash(black_box(&NashOptions::default())).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` wall-clock friendly;
    // bump these locally for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    targets = bench_congestion, bench_solve
}
criterion_main!(benches);
