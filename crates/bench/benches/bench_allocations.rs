//! Criterion micro-benchmarks: allocation-function evaluation and
//! derivatives (the inner loop of every equilibrium computation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greednet_queueing::{AllocationFunction, Blend, FairShare, Proportional, SerialPriority};
use std::hint::black_box;
use std::time::Duration;

fn rates(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.8 * (i as f64 + 1.0) / (n * (n + 1) / 2) as f64)
        .collect()
}

fn bench_congestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion");
    let discs: Vec<(&str, Box<dyn AllocationFunction>)> = vec![
        ("fifo", Box::new(Proportional::new())),
        ("fair_share", Box::new(FairShare::new())),
        ("serial_priority", Box::new(SerialPriority::new())),
        (
            "blend",
            Box::new(
                Blend::new(
                    Box::new(Proportional::new()),
                    Box::new(FairShare::new()),
                    0.5,
                )
                .unwrap(),
            ),
        ),
    ];
    for n in [4usize, 16, 64] {
        let r = rates(n);
        for (name, d) in &discs {
            group.bench_with_input(BenchmarkId::new(*name, n), &r, |b, r| {
                b.iter(|| d.congestion(black_box(r)));
            });
        }
    }
    group.finish();
}

fn bench_derivatives(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobian");
    let fs = FairShare::new();
    let p = Proportional::new();
    for n in [4usize, 16] {
        let r = rates(n);
        group.bench_with_input(BenchmarkId::new("fair_share_analytic", n), &r, |b, r| {
            b.iter(|| fs.jacobian(black_box(r)));
        });
        group.bench_with_input(BenchmarkId::new("fifo_analytic", n), &r, |b, r| {
            b.iter(|| p.jacobian(black_box(r)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` wall-clock friendly;
    // bump these locally for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    targets = bench_congestion, bench_derivatives
}
criterion_main!(benches);
