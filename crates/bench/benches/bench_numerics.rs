//! Criterion micro-benchmarks: the numerical substrate — eigenvalues
//! (relaxation spectra), linear solves, scalar optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greednet_numerics::eig::eigenvalues;
use greednet_numerics::lu::Lu;
use greednet_numerics::optimize::{brent_max, grid_refine_max};
use greednet_numerics::roots::brent;
use greednet_numerics::Matrix;
use std::hint::black_box;
use std::time::Duration;

fn test_matrix(n: usize) -> Matrix {
    // Well-conditioned, non-symmetric, deterministic.
    Matrix::from_fn(n, n, |i, j| {
        let x = ((i * 31 + j * 17 + 7) % 97) as f64 / 97.0;
        x + if i == j { 2.0 } else { 0.0 }
    })
}

fn bench_eigenvalues(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigenvalues");
    for n in [4usize, 8, 16, 32] {
        let m = test_matrix(n);
        group.bench_with_input(BenchmarkId::new("hqr", n), &m, |b, m| {
            b.iter(|| eigenvalues(black_box(m)).unwrap());
        });
    }
    group.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_solve");
    for n in [8usize, 32] {
        let m = test_matrix(n);
        let rhs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("factor_solve", n), &m, |b, m| {
            b.iter(|| {
                Lu::new(black_box(m))
                    .unwrap()
                    .solve(black_box(&rhs))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_scalar(c: &mut Criterion) {
    c.bench_function("brent_root", |b| {
        b.iter(|| brent(|x| black_box(x) * x * x - 2.0, 0.0, 2.0, 1e-12).unwrap());
    });
    c.bench_function("brent_max", |b| {
        b.iter(|| brent_max(|x| -(black_box(x) - 0.37).powi(2), 0.0, 1.0, 1e-12).unwrap());
    });
    c.bench_function("grid_refine_max_96", |b| {
        b.iter(|| {
            grid_refine_max(|x| -(black_box(x) - 0.37).powi(2), 0.0, 1.0, 96, 1e-12).unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` wall-clock friendly;
    // bump these locally for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    targets = bench_eigenvalues, bench_lu, bench_scalar
}
criterion_main!(benches);
