//! Criterion micro-benchmarks: packet-simulator event throughput per
//! discipline (events processed per second of wall time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use greednet_des::scenarios::DisciplineKind;
use greednet_des::{SimConfig, Simulator};
use std::hint::black_box;
use std::time::Duration;

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_events");
    group.sample_size(10);
    let rates = vec![0.15, 0.2, 0.25];
    let horizon = 20_000.0;
    // Pre-measure event count to report true throughput.
    let sim = Simulator::new(SimConfig::new(rates.clone(), horizon, 1)).unwrap();
    let mut d = DisciplineKind::Fifo.build(&rates, 1).unwrap();
    let events = sim.run(d.as_mut()).unwrap().events;
    group.throughput(Throughput::Elements(events));

    for kind in DisciplineKind::all() {
        group.bench_function(BenchmarkId::new("run", kind.label()), |b| {
            b.iter(|| {
                let sim =
                    Simulator::new(SimConfig::new(black_box(rates.clone()), horizon, 1)).unwrap();
                let mut d = kind.build(&rates, 1).unwrap();
                sim.run(d.as_mut()).unwrap().events
            })
        });
    }
    group.finish();
}

fn bench_load_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_load");
    group.sample_size(10);
    for load in [0.3f64, 0.6, 0.9] {
        let rates = vec![load / 3.0; 3];
        group.bench_with_input(
            BenchmarkId::new("fifo", format!("{load}")),
            &rates,
            |b, r| {
                b.iter(|| {
                    let sim = Simulator::new(SimConfig::new(r.clone(), 10_000.0, 2)).unwrap();
                    let mut d = DisciplineKind::Fifo.build(r, 2).unwrap();
                    sim.run(d.as_mut()).unwrap().events
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` wall-clock friendly;
    // bump these locally for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    targets = bench_event_throughput, bench_load_scaling
}
criterion_main!(benches);
