//! Criterion micro-benchmarks: packet-simulator event throughput per
//! discipline (events processed per second of wall time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use greednet_des::scenarios::DisciplineKind;
use greednet_des::{MetricsProbe, NoopProbe, SimConfig, Simulator};
use std::hint::black_box;
use std::time::Duration;

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_events");
    group.sample_size(10);
    let rates = vec![0.15, 0.2, 0.25];
    let horizon = 20_000.0;
    // Pre-measure event count to report true throughput.
    let sim = Simulator::new(SimConfig::new(rates.clone(), horizon, 1)).unwrap();
    let mut d = DisciplineKind::Fifo.build(&rates, 1).unwrap();
    let events = sim.run(d.as_mut()).unwrap().events;
    group.throughput(Throughput::Elements(events));

    for kind in DisciplineKind::all() {
        group.bench_function(BenchmarkId::new("run", kind.label()), |b| {
            b.iter(|| {
                let sim =
                    Simulator::new(SimConfig::new(black_box(rates.clone()), horizon, 1)).unwrap();
                let mut d = kind.build(&rates, 1).unwrap();
                sim.run(d.as_mut()).unwrap().events
            });
        });
    }
    group.finish();
}

fn bench_probe_overhead(c: &mut Criterion) {
    // The zero-cost claim of `greednet-telemetry`: `run` (which delegates
    // to `run_probed::<NoopProbe>`) must sit within noise (≤ 2%) of the
    // explicitly probed no-op run, because `Probe::ENABLED = false`
    // statically removes every instrumentation site. The MetricsProbe row
    // quantifies the real cost of live histogram instrumentation.
    let mut group = c.benchmark_group("des_probe_overhead");
    group.sample_size(20);
    let rates = vec![0.15, 0.2, 0.25];
    let horizon = 20_000.0;
    let sim = Simulator::new(SimConfig::new(rates.clone(), horizon, 1)).unwrap();
    let mut d = DisciplineKind::Fifo.build(&rates, 1).unwrap();
    let events = sim.run(d.as_mut()).unwrap().events;
    group.throughput(Throughput::Elements(events));

    group.bench_function("run", |b| {
        b.iter(|| {
            let sim = Simulator::new(SimConfig::new(black_box(rates.clone()), horizon, 1)).unwrap();
            let mut d = DisciplineKind::Fifo.build(&rates, 1).unwrap();
            sim.run(d.as_mut()).unwrap().events
        });
    });
    group.bench_function("run_probed/noop", |b| {
        b.iter(|| {
            let sim = Simulator::new(SimConfig::new(black_box(rates.clone()), horizon, 1)).unwrap();
            let mut d = DisciplineKind::Fifo.build(&rates, 1).unwrap();
            sim.run_probed(d.as_mut(), &mut NoopProbe).unwrap().events
        });
    });
    group.bench_function("run_probed/metrics", |b| {
        b.iter(|| {
            let sim = Simulator::new(SimConfig::new(black_box(rates.clone()), horizon, 1)).unwrap();
            let mut d = DisciplineKind::Fifo.build(&rates, 1).unwrap();
            let mut probe = MetricsProbe::new(rates.len());
            sim.run_probed(d.as_mut(), &mut probe).unwrap().events
        });
    });
    group.finish();

    // The rows above time each path in a separate measurement window, and
    // wall-clock drift between windows routinely exceeds the effect size
    // (the same FIFO workload appears in `des_events` with a different
    // median). The ≤2% no-op claim therefore needs a paired measurement:
    // alternate the two paths within one window, flipping the order each
    // pair so slow drift cancels, and compare medians.
    let once_plain = || {
        let sim = Simulator::new(SimConfig::new(black_box(rates.clone()), horizon, 1)).unwrap();
        let mut d = DisciplineKind::Fifo.build(&rates, 1).unwrap();
        let t = std::time::Instant::now();
        black_box(sim.run(d.as_mut()).unwrap().events);
        t.elapsed().as_secs_f64()
    };
    let once_noop = || {
        let sim = Simulator::new(SimConfig::new(black_box(rates.clone()), horizon, 1)).unwrap();
        let mut d = DisciplineKind::Fifo.build(&rates, 1).unwrap();
        let t = std::time::Instant::now();
        black_box(sim.run_probed(d.as_mut(), &mut NoopProbe).unwrap().events);
        t.elapsed().as_secs_f64()
    };
    for _ in 0..5 {
        once_plain();
        once_noop();
    }
    let (mut plain, mut noop) = (Vec::new(), Vec::new());
    for pair in 0..61 {
        if pair % 2 == 0 {
            plain.push(once_plain());
            noop.push(once_noop());
        } else {
            noop.push(once_noop());
            plain.push(once_plain());
        }
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let ratio = median(&mut noop) / median(&mut plain);
    println!(
        "bench des_probe_overhead/paired            noop/run ratio {ratio:.4} over 61 interleaved pairs"
    );
}

fn bench_load_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_load");
    group.sample_size(10);
    for load in [0.3f64, 0.6, 0.9] {
        let rates = vec![load / 3.0; 3];
        group.bench_with_input(
            BenchmarkId::new("fifo", format!("{load}")),
            &rates,
            |b, r| {
                b.iter(|| {
                    let sim = Simulator::new(SimConfig::new(r.clone(), 10_000.0, 2)).unwrap();
                    let mut d = DisciplineKind::Fifo.build(r, 2).unwrap();
                    sim.run(d.as_mut()).unwrap().events
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` wall-clock friendly;
    // bump these locally for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    targets = bench_event_throughput, bench_probe_overhead, bench_load_scaling
}
criterion_main!(benches);
