//! Criterion micro-benchmarks: learning-dynamics kernels — exact hill
//! climbing, Newton dynamics, and candidate-elimination rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greednet_core::game::Game;
use greednet_core::utility::{BoxedUtility, LogUtility, UtilityExt};
use greednet_learning::elimination::{run as elim_run, EliminationConfig};
use greednet_learning::hill::{climb, ExactEnv, HillConfig};
use greednet_learning::newton;
use greednet_queueing::FairShare;
use std::hint::black_box;
use std::time::Duration;

fn log_users(n: usize) -> Vec<BoxedUtility> {
    (0..n)
        .map(|i| LogUtility::new(0.3 + 0.15 * i as f64, 1.0).boxed())
        .collect()
}

fn bench_hill(c: &mut Criterion) {
    let mut group = c.benchmark_group("hill_exact");
    group.sample_size(20);
    for n in [3usize, 6] {
        group.bench_function(BenchmarkId::new("fair_share", n), |b| {
            b.iter(|| {
                let users = log_users(n);
                let mut env = ExactEnv::new(Box::new(FairShare::new()), n);
                let cfg = HillConfig {
                    rounds: 50,
                    ..Default::default()
                };
                climb(&users, &mut env, black_box(&vec![0.05; n]), &cfg).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_newton(c: &mut Criterion) {
    let mut group = c.benchmark_group("newton_dynamics");
    for n in [3usize, 6] {
        let game = Game::new(FairShare::new(), log_users(n)).unwrap();
        let start = vec![0.4 / n as f64; n];
        group.bench_function(BenchmarkId::new("fair_share", n), |b| {
            b.iter(|| newton::run(&game, black_box(&start), n + 2).unwrap());
        });
    }
    group.finish();
}

fn bench_elimination(c: &mut Criterion) {
    let mut group = c.benchmark_group("elimination");
    group.sample_size(10);
    let users = log_users(3);
    let cfg = EliminationConfig {
        grid: 41,
        lo: 0.005,
        hi: 0.5,
        max_rounds: 60,
    };
    group.bench_function("fair_share_grid41", |b| {
        b.iter(|| elim_run(&FairShare::new(), black_box(&users), &cfg).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` wall-clock friendly;
    // bump these locally for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    targets = bench_hill, bench_newton, bench_elimination
}
criterion_main!(benches);
