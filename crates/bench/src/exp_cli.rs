//! Shared command-line driver for the experiment binaries.
//!
//! Every `src/bin/exp_*` target is a one-liner delegating here; the
//! `greednet exp` subcommand in the CLI crate goes through
//! [`run_experiment`] as well, so there is exactly one dispatch path over
//! the central registry.

use crate::experiments::registry;
use greednet_runtime::{available_threads, Budget, ExpCtx, Format, RunReport};

/// Parsed experiment-runner options (shared by all entry points).
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Root seed (default 0).
    pub seed: u64,
    /// Worker threads (default: all hardware threads).
    pub threads: usize,
    /// Output format (default text).
    pub format: Format,
    /// Run with the tiny smoke budget instead of paper fidelity.
    pub smoke: bool,
    /// Gather telemetry (histogram sections + pool-utilization side
    /// channel); never changes the deterministic numeric results.
    pub metrics: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            seed: 0,
            threads: available_threads(),
            format: Format::Text,
            smoke: false,
            metrics: false,
        }
    }
}

impl ExpArgs {
    /// Parses `--seed N`, `--threads N`, `--json` / `--csv` /
    /// `--format F`, `--smoke`, and `--metrics` from an argument list.
    ///
    /// # Errors
    /// A human-readable message naming the offending flag or value.
    pub fn parse(args: &[String]) -> Result<ExpArgs, String> {
        let mut out = ExpArgs::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => out.format = Format::Json,
                "--csv" => out.format = Format::Csv,
                "--smoke" => out.smoke = true,
                "--metrics" => out.metrics = true,
                "--format" => {
                    let v = it.next().ok_or("--format needs a value (text|json|csv)")?;
                    out.format = Format::parse(v).ok_or_else(|| format!("unknown format {v:?}"))?;
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = v.parse().map_err(|_| format!("invalid seed {v:?}"))?;
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    let t: usize = v
                        .parse()
                        .map_err(|_| format!("invalid thread count {v:?}"))?;
                    if t == 0 {
                        return Err("--threads must be >= 1".into());
                    }
                    out.threads = t;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(out)
    }

    /// The execution context these options describe.
    #[must_use]
    pub fn ctx(&self) -> ExpCtx {
        let budget = if self.smoke {
            Budget::smoke()
        } else {
            Budget::full()
        };
        ExpCtx::new(self.seed, self.threads)
            .with_budget(budget)
            .with_telemetry(self.metrics)
    }
}

/// Runs the experiment `id` from the central registry.
///
/// # Errors
/// If `id` is not registered (the message lists all known ids).
pub fn run_experiment(id: &str, ctx: &ExpCtx) -> Result<RunReport, String> {
    let reg = registry();
    let exp = reg.get(id).ok_or_else(|| {
        format!(
            "unknown experiment {id:?}; known ids: {}",
            reg.ids().join(", ")
        )
    })?;
    Ok(exp.run(ctx))
}

/// Entry point for the thin `exp_*` binaries: parse common flags, run
/// the experiment, print the report, exit non-zero on bad arguments.
pub fn exp_main(id: &str) {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match ExpArgs::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: [--seed N] [--threads N] [--json|--csv|--format F] [--smoke] [--metrics]"
            );
            std::process::exit(2);
        }
    };
    match run_experiment(id, &args.ctx()) {
        Ok(report) => {
            print!("{}", report.render(args.format));
            // Non-deterministic wall-clock telemetry goes to stderr so the
            // deterministic report on stdout stays bitwise reproducible.
            if args.metrics && !report.telemetry().is_empty() {
                eprint!("{}", report.render_telemetry());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let d = ExpArgs::parse(&[]).unwrap();
        assert_eq!(d.seed, 0);
        assert_eq!(d.format, Format::Text);
        assert!(!d.smoke);

        let a = ExpArgs::parse(&s(&[
            "--seed",
            "7",
            "--threads",
            "4",
            "--json",
            "--smoke",
            "--metrics",
        ]))
        .unwrap();
        assert_eq!(a.seed, 7);
        assert_eq!(a.threads, 4);
        assert_eq!(a.format, Format::Json);
        assert!(a.smoke);
        assert!(a.metrics);
        assert_eq!(a.ctx().threads, 4);
        assert!(a.ctx().telemetry);
        assert!(!ExpArgs::parse(&[]).unwrap().ctx().telemetry);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(ExpArgs::parse(&s(&["--threads", "0"])).is_err());
        assert!(ExpArgs::parse(&s(&["--format", "xml"])).is_err());
        assert!(ExpArgs::parse(&s(&["--wat"])).is_err());
        assert!(ExpArgs::parse(&s(&["--seed"])).is_err());
    }

    #[test]
    fn unknown_experiment_lists_ids() {
        let err = run_experiment("nope", &ExpCtx::default()).unwrap_err();
        assert!(err.contains("e9"), "{err}");
        assert!(err.contains("t1"), "{err}");
    }
}
