//! Runs every experiment binary in sequence (T1, E1–E11), producing the
//! full paper-reproduction report captured in EXPERIMENTS.md.
//!
//! Build all binaries first: `cargo build --release -p greednet-bench --bins`
//! then `cargo run --release -p greednet-bench --bin run_all`.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_t1_priority_table",
    "exp_e1_efficiency",
    "exp_e2_envy",
    "exp_e3_uniqueness",
    "exp_e4_stackelberg",
    "exp_e5_revelation",
    "exp_e6_convergence",
    "exp_e7_protection",
    "exp_e8_alt_constraint",
    "exp_e9_des_validation",
    "exp_e10_dynamics",
    "exp_e10_ftp_telnet",
    "exp_e11_elimination",
    "exp_e12_network",
    "exp_e13_mg1",
    "exp_e14_coalitions",
    "exp_e15_blend_ablation",
];

fn main() {
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary directory").to_path_buf();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let path = dir.join(name);
        if !path.exists() {
            eprintln!("[run_all] missing binary {name}; build with `cargo build --release -p greednet-bench --bins`");
            failures.push(*name);
            continue;
        }
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("[run_all] {name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("[run_all] failed to launch {name}: {e}");
                failures.push(*name);
            }
        }
    }
    println!("\n==============================================================");
    if failures.is_empty() {
        println!("run_all: all {} experiments completed.", EXPERIMENTS.len());
    } else {
        println!("run_all: FAILURES in {failures:?}");
        std::process::exit(1);
    }
}
