//! Runs every registered experiment in-process (T1, E1–E15), producing
//! the full paper-reproduction report captured in EXPERIMENTS.md.
//!
//! `cargo run --release -p greednet-bench --bin run_all -- [--seed N]
//! [--threads N] [--json|--csv] [--smoke]`. Per-experiment wall time goes
//! to stderr so it never pollutes piped report output.

use greednet_bench::exp_cli::ExpArgs;
use greednet_bench::experiments::registry;
use std::time::Instant;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match ExpArgs::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: run_all [--seed N] [--threads N] [--json|--csv|--format F] [--smoke] [--metrics]"
            );
            std::process::exit(2);
        }
    };
    let ctx = args.ctx();
    let reg = registry();
    let total = Instant::now();
    for exp in reg.iter() {
        let start = Instant::now();
        let report = exp.run(&ctx);
        print!("{}", report.render(args.format));
        println!();
        if args.metrics && !report.telemetry().is_empty() {
            eprint!("{}", report.render_telemetry());
        }
        eprintln!("[run_all] {} finished in {:.2?}", exp.id(), start.elapsed());
    }
    eprintln!(
        "[run_all] {} experiments in {:.2?}",
        reg.len(),
        total.elapsed()
    );
}
