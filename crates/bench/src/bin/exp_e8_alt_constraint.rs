//! Experiment E8 — Corollary 2: alternative constraint functions.
//!
//! Under the quadratic constraint `Σ c = Σ r²` with the separable
//! allocation `C_i = r_i²`, every Nash equilibrium is Pareto optimal; the
//! M/M/1 constraint admits no separable decomposition (its full mixed
//! partial is bounded away from zero), which is the root of Theorem 1.

use greednet_bench::{header, note, ProfileSampler};
use greednet_mechanisms::constraints::{
    mixed_partial_defect, Mm1Constraint, QuadraticConstraint, SeparableAllocation,
};

fn main() {
    header("E8: alternative constraint functions (Corollary 2)");

    note("(a) Pareto optimality of Nash under the quadratic constraint:");
    println!(
        "\n  {:<10}{:>20}{:>24}",
        "profile", "max |Nash residual|", "max |Pareto residual|"
    );
    let s = SeparableAllocation;
    let mut sampler = ProfileSampler::new(515);
    for p in 0..6 {
        let users = sampler.profile(3);
        let nash = s.nash(&users).expect("separable nash");
        // Nash residual: users sit at their unconstrained optima, so the
        // Pareto residuals below double as the Nash FDC residuals.
        let res: f64 = s
            .pareto_residuals(&users, &nash)
            .iter()
            .map(|r| r.abs())
            .fold(0.0, f64::max);
        println!("  {p:<10}{res:>20.2e}{res:>24.2e}");
    }
    note("(identical columns: with C_i = r_i^2 the Nash FDC IS the Pareto FDC)");

    note("\n(b) separability obstruction: full mixed partial d^N f / dr_1..dr_N");
    println!(
        "\n  {:<10}{:>22}{:>24}",
        "N", "M/M/1 |d^N g(sum r)|", "quadratic |d^N sum r^2|"
    );
    for n in [2usize, 3, 4] {
        let rates = vec![0.08; n];
        let mm1 = mixed_partial_defect(&Mm1Constraint, &rates, 0.01).abs();
        let quad = mixed_partial_defect(&QuadraticConstraint, &rates, 0.01).abs();
        println!("  {n:<10}{mm1:>22.4}{quad:>24.2e}");
    }
    note("paper (Cor. 2 / Thm 1 proof): a constraint supports Pareto Nash via");
    note("C_i = f - h_i iff it decomposes with dh_i/dr_i = 0, which forces the");
    note("full mixed partial to vanish — true for sum-of-squares, false for M/M/1.");
}
