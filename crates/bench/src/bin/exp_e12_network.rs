//! Experiment E12 — §5.4: networks of switches (the paper's named open
//! problem, under its own suggested Poisson approximation).
//!
//! Parking-lot topologies: one through user crossing `k` switches, one
//! local user per switch. Checks which single-switch results survive:
//! unique reachable equilibria, same-route envy-freeness and per-route
//! protection under Fair Share — and the continued failure of all three
//! under FIFO — while cross-route envy illustrates why §5.4 says fairness
//! needs a new definition.

use greednet_bench::{header, note};
use greednet_core::game::NashOptions;
use greednet_core::utility::{BoxedUtility, LogUtility, UtilityExt};
use greednet_network::{NetworkGame, Topology};
use greednet_queueing::{FairShare, Proportional};

fn users(k: usize) -> Vec<BoxedUtility> {
    (0..=k).map(|_| LogUtility::new(0.5, 1.0).boxed()).collect()
}

fn main() {
    header("E12: networks of switches (§5.4; extension under the paper's Poisson approximation)");
    note("parking lot: 1 through user crossing k switches + 1 local user per switch");

    println!(
        "\n  {:<4}{:<12}{:>12}{:>14}{:>14}{:>16}{:>16}",
        "k", "discipline", "converged", "r(through)", "r(local)", "deviation gain", "thru/local c"
    );
    for k in [2usize, 3, 5] {
        for (name, net) in [
            (
                "FairShare",
                NetworkGame::new(
                    Topology::parking_lot(k).expect("topology"),
                    Box::new(FairShare::new()),
                    users(k),
                )
                .expect("game"),
            ),
            (
                "FIFO",
                NetworkGame::new(
                    Topology::parking_lot(k).expect("topology"),
                    Box::new(Proportional::new()),
                    users(k),
                )
                .expect("game"),
            ),
        ] {
            let nash = net.solve_nash(&NashOptions::default()).expect("nash");
            let gain = net.max_deviation_gain(&nash.rates, 192).expect("verify");
            println!(
                "  {k:<4}{name:<12}{:>12}{:>14.4}{:>14.4}{gain:>16.2e}{:>16.3}",
                nash.converged,
                nash.rates[0],
                nash.rates[1],
                nash.congestions[0] / nash.congestions[1]
            );
        }
    }
    note("long routes rationally send less; equilibria exist, converge and verify");
    note("under both disciplines in this benign setting.");

    // Protection across routes.
    println!("\n  Protection of the through user (r = 0.08) vs flooding locals (k = 3):");
    println!(
        "  {:<12}{:>18}{:>18}{:>14}",
        "discipline", "worst congestion", "summed bound", "protected?"
    );
    let k = 3;
    for (name, net) in [
        (
            "FairShare",
            NetworkGame::new(
                Topology::parking_lot(k).expect("topology"),
                Box::new(FairShare::new()),
                users(k),
            )
            .expect("game"),
        ),
        (
            "FIFO",
            NetworkGame::new(
                Topology::parking_lot(k).expect("topology"),
                Box::new(Proportional::new()),
                users(k),
            )
            .expect("game"),
        ),
    ] {
        let observed = net.adversarial_congestion(0, 0.08, &[0.1, 0.3, 0.8, 0.95, 2.0]);
        let bound = net.protection_bound(0, 0.08);
        println!(
            "  {name:<12}{observed:>18.4}{bound:>18.4}{:>14}",
            observed <= bound * (1.0 + 1e-9)
        );
    }

    // Fairness needs redefinition: cross-route envy under FS.
    println!("\n  Envy in a network under Fair Share (2 switches, 2 through + 2 local):");
    let t = Topology::new(2, vec![vec![0, 1], vec![0, 1], vec![0], vec![1]]).expect("topology");
    let u: Vec<BoxedUtility> = vec![
        LogUtility::new(0.3, 1.0).boxed(),
        LogUtility::new(0.9, 1.0).boxed(),
        LogUtility::new(0.5, 1.0).boxed(),
        LogUtility::new(0.5, 1.0).boxed(),
    ];
    let net = NetworkGame::new(t, Box::new(FairShare::new()), u).expect("game");
    let nash = net.solve_nash(&NashOptions::default()).expect("nash");
    let same = net.max_same_route_envy(&nash.rates);
    let mut cross = f64::NEG_INFINITY;
    for i in 0..4 {
        for j in 0..4 {
            if i != j && net.topology().route(i) != net.topology().route(j) {
                cross = cross.max(net.envy(&nash.rates, i, j));
            }
        }
    }
    println!("  same-route max envy : {same:+.6}  (envy-freeness survives)");
    println!("  cross-route max env : {cross:+.6}  (positive: short routes look 'better';");
    println!("                        §5.4: fairness across routes needs a new definition)");
}
