//! Experiment E10(a) — §2.2/§4.2.2: hill climbing against noisy packet
//! measurements converges under Fair Share, struggles under FIFO.

use greednet_bench::{header, note};
use greednet_core::game::{Game, NashOptions};
use greednet_core::utility::{BoxedUtility, LinearUtility, UtilityExt};
use greednet_des::scenarios::DisciplineKind;
use greednet_learning::hill::{climb, HillConfig, Schedule, SimEnv};
use greednet_queueing::{FairShare, Proportional};

fn main() {
    header("E10a: noisy self-optimization dynamics (§2.2, §4.2.2)");
    let n = 3;
    let gamma = 0.45;
    let users = || -> Vec<BoxedUtility> {
        (0..n).map(|_| LinearUtility::new(1.0, gamma).boxed()).collect()
    };
    let start = vec![0.03, 0.10, 0.20];
    note(&format!(
        "{n} identical linear users (gamma = {gamma}), start {start:?}, measurements = 6000 time-unit packet runs"
    ));

    println!(
        "\n  {:<12}{:>8}{:>22}{:>20}{:>16}",
        "discipline", "seed", "final dist to Nash", "utility shortfall", "observations"
    );
    for (kind, game) in [
        (DisciplineKind::FsTable, Game::new(FairShare::new(), users()).expect("game")),
        (DisciplineKind::Fifo, Game::new(Proportional::new(), users()).expect("game")),
    ] {
        let nash = game.solve_nash(&NashOptions::default()).expect("nash");
        let mut dist_sum = 0.0;
        let mut short_sum = 0.0;
        let seeds = [1u64, 2, 3, 4, 5];
        for &seed in &seeds {
            let mut env = SimEnv::new(kind, n, 6_000.0, seed * 1000 + 7);
            let config = HillConfig {
                rounds: 40,
                initial_step: 0.04,
                min_step: 4e-3,
                schedule: Schedule::Simultaneous, // the paper's synchronous model
                ..Default::default()
            };
            let traj = climb(&users(), &mut env, &start, &config).expect("climb");
            // Mean per-user shortfall in TRUE utility vs the Nash point.
            let u_final = game.utilities_at(&traj.final_rates);
            let shortfall: f64 = nash
                .utilities
                .iter()
                .zip(&u_final)
                .map(|(a, b)| a - b)
                .sum::<f64>()
                / n as f64;
            dist_sum += traj.distance_to(&nash.rates);
            short_sum += shortfall;
            println!(
                "  {:<12}{seed:>8}{:>22.4}{shortfall:>20.5}{:>16}",
                kind.label(),
                traj.distance_to(&nash.rates),
                traj.observations
            );
        }
        println!(
            "  {:<12}{:>8}{:>22.4}{:>20.5}",
            kind.label(),
            "MEAN",
            dist_sum / seeds.len() as f64,
            short_sum / seeds.len() as f64
        );
    }
    note("paper (§2.2, §4.2.2): simple hill climbing suffices under Fair Share —");
    note("the insularity of C^FS keeps other users' probing out of your own");
    note("measurements. Under FIFO every probe perturbs everyone: at the same");
    note("measurement budget the climbers end ~3x farther from equilibrium with");
    note("~30x the utility shortfall (negative entries = users profiting at");
    note("others' expense while the system drifts).");
}
