//! Experiment E9 — §3.1: closed-form allocation functions vs simulated
//! packets, for every discipline, with confidence intervals.

use greednet_bench::{header, note};
use greednet_des::scenarios::DisciplineKind;
use greednet_des::{SimConfig, Simulator};
use greednet_queueing::{mm1, AllocationFunction, FairShare, Proportional, SerialPriority};

fn main() {
    header("E9: packet-level validation of the allocation formulas (§3.1)");
    let rates = vec![0.08, 0.22, 0.35];
    let horizon = 400_000.0;
    note(&format!("rates {rates:?} (load {:.2}), horizon {horizon}", rates.iter().sum::<f64>()));

    let closed: Vec<(DisciplineKind, Vec<f64>)> = vec![
        (DisciplineKind::Fifo, Proportional::new().congestion(&rates)),
        (DisciplineKind::LifoPreemptive, Proportional::new().congestion(&rates)),
        (DisciplineKind::ProcessorSharing, Proportional::new().congestion(&rates)),
        (DisciplineKind::SerialPriority, SerialPriority::new().congestion(&rates)),
        (DisciplineKind::FsTable, FairShare::new().congestion(&rates)),
    ];

    println!(
        "\n  {:<12}{:<6}{:>12}{:>12}{:>10}{:>12}{:>10}",
        "discipline", "user", "closed", "simulated", "rel.err", "CI half", "in CI?"
    );
    for (kind, expect) in closed {
        let sim =
            Simulator::new(SimConfig::new(rates.clone(), horizon, 20_262_626)).expect("config");
        let mut d = kind.build(&rates, 5).expect("discipline");
        let r = sim.run(d.as_mut()).expect("simulate");
        for (u, &exp_u) in expect.iter().enumerate() {
            let rel = (r.mean_queue[u] - exp_u).abs() / exp_u;
            println!(
                "  {:<12}{:<6}{:>12.5}{:>12.5}{:>9.2}%{:>12.5}{:>10}",
                kind.label(),
                u,
                exp_u,
                r.mean_queue[u],
                rel * 100.0,
                r.queue_ci[u].half_width,
                r.queue_ci[u].contains(expect[u])
            );
        }
        let total: f64 = r.mean_queue.iter().sum();
        println!(
            "  {:<12}{:<6}{:>12.5}{:>12.5}   (work conservation: g(sum r))",
            kind.label(),
            "TOTAL",
            mm1::g(rates.iter().sum()),
            total
        );
    }
    note("SFQ has no closed form here (non-preemptive FQ approximation); its");
    note("work-conservation total is checked in the integration tests.");

    // Total-queue occupancy distribution: geometric for M/M/1 under any
    // non-anticipating work-conserving discipline.
    println!("\n  Occupancy distribution P(N = k) vs the geometric law (load {:.2}):", rates.iter().sum::<f64>());
    let sim = Simulator::new(SimConfig::new(rates.clone(), horizon, 777)).expect("config");
    let mut d = DisciplineKind::FsTable.build(&rates, 9).expect("discipline");
    let r = sim.run(d.as_mut()).expect("simulate");
    let rho: f64 = rates.iter().sum();
    println!("  {:<6}{:>14}{:>14}{:>10}", "k", "geometric", "simulated", "abs.err");
    for k in 0..8usize {
        let expect = (1.0 - rho) * rho.powi(k as i32);
        let got = r.total_queue_dist[k];
        println!("  {k:<6}{expect:>14.5}{got:>14.5}{:>10.5}", (got - expect).abs());
    }
    note("(run under the Fair Share table: total occupancy is discipline-");
    note("invariant for M/M/1, and matches (1-rho) rho^k.)");
}
