//! Experiment E3 — Theorem 4: uniqueness of Nash equilibria.
//!
//! For each sampled profile, runs best-response iteration from many random
//! starting points and clusters the converged equilibria. Fair Share must
//! always produce exactly one cluster.

use greednet_bench::{header, note, standard_disciplines, ProfileSampler};
use greednet_core::game::{distinct_equilibria, Game, NashOptions};

fn main() {
    header("E3: uniqueness of Nash equilibria (Theorem 4)");
    let profiles = 40;
    let starts_per = 12;
    let n = 3;
    note(&format!(
        "{profiles} profiles x {starts_per} random starts each, N = {n}, cluster tol 1e-4"
    ));

    println!(
        "\n  {:<12}{:>10}{:>18}{:>18}",
        "discipline", "profiles", "multi-equilibria", "max #equilibria"
    );
    for (name, alloc) in standard_disciplines() {
        let mut sampler = ProfileSampler::new(777);
        let mut multi = 0usize;
        let mut max_count = 0usize;
        let mut solved = 0usize;
        for _ in 0..profiles {
            let users = sampler.profile(n);
            let starts: Vec<Vec<f64>> =
                (0..starts_per).map(|_| sampler.rates(n, 0.85)).collect();
            let game = Game::from_boxed(alloc.clone_box(), users).expect("game");
            let eqs = match distinct_equilibria(&game, &starts, &NashOptions::default(), 1e-4) {
                Ok(e) if !e.is_empty() => e,
                _ => continue,
            };
            solved += 1;
            max_count = max_count.max(eqs.len());
            if eqs.len() > 1 {
                multi += 1;
            }
        }
        println!("  {name:<12}{solved:>10}{multi:>18}{max_count:>18}");
    }
    note("paper (Thm 4): Fair Share always has a unique Nash equilibrium and is");
    note("the only MAC discipline guaranteeing it. (Best-response iteration can");
    note("only find equilibria it converges to; multiplicity counts are lower");
    note("bounds for the others.)");
}
