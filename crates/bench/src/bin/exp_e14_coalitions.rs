//! Experiment E14 — footnote 14: coalitional manipulation.
//!
//! For each discipline and each sampled profile, sweeps all coalitions of
//! size ≥ 2 and searches for a joint rate deviation that strictly
//! benefits every member. Fair Share equilibria must be coalition-proof;
//! FIFO equilibria are cartel-friendly.

use greednet_bench::{header, note, standard_disciplines, ProfileSampler};
use greednet_core::coalition::find_manipulating_coalition;
use greednet_core::game::{Game, NashOptions};

fn main() {
    header("E14: coalitional manipulation of Nash equilibria (footnote 14)");
    let profiles = 25;
    let n = 3;
    note(&format!("{profiles} sampled heterogeneous profiles, N = {n}, all coalitions of size 2..={n}"));

    println!(
        "\n  {:<12}{:>12}{:>16}{:>22}",
        "discipline", "profiles", "manipulable", "max min-member gain"
    );
    for (name, alloc) in standard_disciplines() {
        let mut sampler = ProfileSampler::new(313);
        let mut solved = 0usize;
        let mut manipulable = 0usize;
        let mut worst_gain = 0.0f64;
        for _ in 0..profiles {
            let users = sampler.profile(n);
            let game = Game::from_boxed(alloc.clone_box(), users).expect("game");
            let nash = match game.solve_nash(&NashOptions::default()) {
                Ok(s) if s.converged => s,
                _ => continue,
            };
            solved += 1;
            if let Some(dev) = find_manipulating_coalition(&game, &nash.rates, n, 100) {
                manipulable += 1;
                let min_gain =
                    dev.gains.iter().fold(f64::INFINITY, |a, &b| a.min(b));
                worst_gain = worst_gain.max(min_gain);
            }
        }
        println!("  {name:<12}{solved:>12}{manipulable:>16}{worst_gain:>22.5}");
    }
    note("paper (footnote 14, via Moulin-Shenker): all Fair Share Nash equilibria");
    note("are resilient against coalitions acting in concert; under FIFO any pair");
    note("can profit by jointly backing off (the cartel is the Pareto improvement");
    note("of E1 in miniature).");
}
