//! Experiment E2 — Theorem 3: fairness as (unilateral) envy-freeness.
//!
//! Sweeps sampled heterogeneous profiles; at each discipline's Nash
//! equilibrium records the maximum envy, and also tests the stronger
//! *unilateral* property: a user at its own optimum must envy no one,
//! no matter what the others play.

use greednet_bench::{header, note, standard_disciplines, ProfileSampler};
use greednet_core::game::{Game, NashOptions};

fn main() {
    header("E2: envy-freeness (Theorem 3)");
    let profiles = 80;
    let n = 3;
    note(&format!("{profiles} sampled heterogeneous profiles, N = {n}"));

    println!(
        "\n  {:<12}{:>14}{:>14}{:>20}{:>22}",
        "discipline", "envious Nash", "max envy", "unilateral envy", "max unilateral envy"
    );
    for (name, alloc) in standard_disciplines() {
        let mut envious = 0usize;
        let mut max_envy = f64::NEG_INFINITY;
        let mut unilateral_envy = 0usize;
        let mut max_uni = f64::NEG_INFINITY;
        let mut sampler = ProfileSampler::new(4242);
        let mut cases = 0usize;
        for _ in 0..profiles {
            let users = sampler.profile(n);
            let rates_bg = sampler.rates(n, 0.8);
            let game = Game::from_boxed(alloc.clone_box(), users).expect("game");
            // Nash envy.
            if let Ok(sol) = game.solve_nash(&NashOptions::default()) {
                if sol.converged {
                    cases += 1;
                    let e = game.max_envy(&sol.rates).expect("envy");
                    max_envy = max_envy.max(e);
                    if e > 1e-6 {
                        envious += 1;
                    }
                }
            }
            // Unilateral envy: user 0 optimizes against arbitrary others.
            let mut rates = rates_bg;
            if let Ok(br) = game.best_response(&rates, 0, 128) {
                rates[0] = br;
                let c = game.allocation().congestion(&rates);
                let own = game.users()[0].value(rates[0], c[0]);
                for j in 1..n {
                    let other = game.users()[0].value(rates[j], c[j]);
                    let e = other - own;
                    if e.is_finite() {
                        max_uni = max_uni.max(e);
                        if e > 1e-6 {
                            unilateral_envy += 1;
                            break;
                        }
                    }
                }
            }
        }
        println!(
            "  {name:<12}{:>10}/{cases:<3}{max_envy:>14.5}{unilateral_envy:>17}/{profiles:<3}{max_uni:>19.5}",
            envious
        );
    }
    note("paper (Thm 3): Fair Share is unilaterally envy-free — and is the ONLY");
    note("MAC discipline with that property; expect zero envy rows only for it.");
}
