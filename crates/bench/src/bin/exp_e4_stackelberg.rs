//! Experiment E4 — Theorem 5: Stackelberg leadership.
//!
//! Sweeps N and congestion-aversion gamma for identical linear users and
//! reports the leader's utility premium from committing first (followers
//! re-equilibrate). Fair Share rows must be ~0.

use greednet_bench::{header, identical_linear_game, note};
use greednet_core::stackelberg::{leader_advantage, StackelbergOptions};
use greednet_queueing::{FairShare, Proportional};

fn main() {
    header("E4: Stackelberg leader advantage (Theorem 5)");
    note("identical linear users U = r - gamma*c; leader = user 0");

    println!(
        "\n  {:<6}{:<8}{:>16}{:>16}{:>14}{:>14}",
        "N", "gamma", "FIFO adv.", "FS adv.", "FIFO r_L/r_N", "FS r_L/r_N"
    );
    let opts = StackelbergOptions::default();
    for &n in &[2usize, 3, 5] {
        for &gamma in &[0.1, 0.25, 0.5] {
            let fifo = identical_linear_game(Box::new(Proportional::new()), n, gamma);
            let fs = identical_linear_game(Box::new(FairShare::new()), n, gamma);
            let (sf, nf) = leader_advantage(&fifo, 0, &opts).expect("fifo stackelberg");
            let (ss, ns) = leader_advantage(&fs, 0, &opts).expect("fs stackelberg");
            let adv_f = sf.leader_utility - nf.utilities[0];
            let adv_s = ss.leader_utility - ns.utilities[0];
            let ratio_f = sf.leader_rate / nf.rates[0].max(1e-12);
            let ratio_s = ss.leader_rate / ns.rates[0].max(1e-12);
            println!(
                "  {n:<6}{gamma:<8}{adv_f:>16.6}{adv_s:>16.6}{ratio_f:>14.3}{ratio_s:>14.3}"
            );
        }
    }
    note("paper (Thm 5): every FS Nash equilibrium is a Stackelberg equilibrium,");
    note("so the FS advantage column must vanish; under FIFO leading pays and the");
    note("leader over-grabs (rate ratio > 1).");
}
