//! Experiment T1 — reproduces **Table 1** of the paper: the priority-level
//! decomposition that realizes the Fair Share allocation, and validates it
//! by packet simulation.

use greednet_bench::{header, note};
use greednet_des::{FsPriorityTable, SimConfig, Simulator};
use greednet_queueing::fair_share::priority_table;
use greednet_queueing::{AllocationFunction, FairShare};

fn main() {
    header("T1: Table 1 — priority queueing that implements Fair Share");
    // Four users, ascending rates, as in the paper's example table.
    let rates = [0.05, 0.10, 0.20, 0.30];
    note(&format!("rates r = {rates:?} (ascending, as in the paper)"));

    let table = priority_table(&rates);
    println!("\n  {:<6}{:>9}{:>9}{:>9}{:>9}", "user", "A", "B", "C", "D");
    for (u, row) in table.iter().enumerate() {
        print!("  {:<6}", u + 1);
        for &v in row {
            if v > 0.0 {
                print!("{v:>9.3}");
            } else {
                print!("{:>9}", "-");
            }
        }
        println!();
    }
    note("(paper: user k sends r_1, r_2-r_1, ..., r_k-r_{k-1} into levels A..)");

    println!("\n  Packet validation (preemptive priority on these levels):");
    let expect = FairShare::new().congestion(&rates);
    let sim = Simulator::new(SimConfig::new(rates.to_vec(), 300_000.0, 11)).expect("config");
    let mut d = FsPriorityTable::new(&rates, 23).expect("discipline");
    let r = sim.run(&mut d).expect("simulate");
    println!(
        "  {:<6}{:>14}{:>14}{:>10}{:>12}",
        "user", "C^FS closed", "simulated", "rel.err", "CI (95%)"
    );
    let mut worst = 0.0f64;
    for (u, &exp_u) in expect.iter().enumerate() {
        let rel = (r.mean_queue[u] - exp_u).abs() / exp_u;
        worst = worst.max(rel);
        println!(
            "  {:<6}{:>14.5}{:>14.5}{:>9.2}%{:>12.5}",
            u + 1,
            exp_u,
            r.mean_queue[u],
            rel * 100.0,
            r.queue_ci[u].half_width
        );
    }
    println!(
        "\n  RESULT: priority table realizes C^FS within {:.2}% over {} packet events.",
        worst * 100.0,
        r.events
    );
}
