//! Experiment E13 — footnote 5: the theory beyond M/M/1.
//!
//! The paper notes its results hold for any strictly increasing, strictly
//! convex congestion curve — in particular M/G/1. This experiment (an
//! extension beyond the paper's own evaluation) re-verifies the headline
//! properties over Pollaczek–Khinchine kernels:
//!
//! * packet totals match P–K for M/D/1, Erlang and hyperexponential
//!   service under FIFO;
//! * the kernelized Fair Share keeps insularity, unique equilibria,
//!   envy-freeness and the protection bound shape;
//! * the preemptive Table 1 realization is exact only for exponential
//!   service (documented realizability caveat).

use greednet_bench::{header, note};
use greednet_core::game::{Game, NashOptions};
use greednet_core::utility::{BoxedUtility, LogUtility, UtilityExt};
use greednet_des::{Fifo, ServiceDist, SimConfig, Simulator};
use greednet_queueing::kernelized::{KernelFairShare, KernelProportional};
use greednet_queueing::mm1::{CongestionKernel, Mg1Kernel};
use greednet_queueing::AllocationFunction;
use std::sync::Arc;

fn main() {
    header("E13: beyond M/M/1 — M/G/1 kernels (paper footnote 5; extension)");

    note("(a) packet totals vs Pollaczek-Khinchine, FIFO, load 0.6:");
    println!(
        "\n  {:<14}{:>8}{:>14}{:>14}{:>10}",
        "service", "cs2", "P-K total", "simulated", "rel.err"
    );
    let rates = vec![0.25, 0.35];
    for dist in [
        ServiceDist::Deterministic,
        ServiceDist::Erlang(4),
        ServiceDist::Exponential,
        ServiceDist::Hyperexponential { cs2: 4.0 },
    ] {
        let kernel = Mg1Kernel::new(dist.cs2());
        let expect = kernel.g(0.6);
        let mut cfg = SimConfig::new(rates.clone(), 200_000.0, 99);
        cfg.service = dist;
        let sim = Simulator::new(cfg).expect("config");
        let r = sim.run(&mut Fifo).expect("simulate");
        let rel = (r.total_mean_queue - expect).abs() / expect;
        println!(
            "  {:<14}{:>8.2}{:>14.4}{:>14.4}{:>9.2}%",
            dist.label(),
            dist.cs2(),
            expect,
            r.total_mean_queue,
            rel * 100.0
        );
    }

    note("\n(b) the theorems' signatures survive the kernel change (M/D/1):");
    let kernel: Arc<dyn CongestionKernel> = Arc::new(Mg1Kernel::new(0.0));
    let users = || -> Vec<BoxedUtility> {
        vec![
            LogUtility::new(0.4, 1.0).boxed(),
            LogUtility::new(0.8, 1.2).boxed(),
            LogUtility::new(1.2, 0.9).boxed(),
        ]
    };
    let fs_game =
        Game::from_boxed(Box::new(KernelFairShare::new(kernel.clone())), users()).expect("game");
    let fifo_game =
        Game::from_boxed(Box::new(KernelProportional::new(kernel.clone())), users())
            .expect("game");
    let nash_fs = fs_game.solve_nash(&NashOptions::default()).expect("fs nash");
    let nash_fifo = fifo_game.solve_nash(&NashOptions::default()).expect("fifo nash");
    println!(
        "\n  {:<22}{:>14}{:>14}",
        "property", "KernelFS", "KernelFIFO"
    );
    println!(
        "  {:<22}{:>14}{:>14}",
        "Nash converged",
        nash_fs.converged,
        nash_fifo.converged
    );
    let envy_fs = fs_game.max_envy(&nash_fs.rates).expect("envy");
    let envy_fifo = fifo_game.max_envy(&nash_fifo.rates).expect("envy");
    println!("  {:<22}{envy_fs:>14.6}{envy_fifo:>14.6}", "max envy at Nash");
    // Insularity of the kernelized Fair Share.
    let kfs = KernelFairShare::new(kernel.clone());
    let light = nash_fs
        .rates
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    let mut bumped = nash_fs.rates.clone();
    let heavy = (light + 1) % 3;
    bumped[heavy] += 0.3;
    let before = kfs.congestion(&nash_fs.rates)[light];
    let after = kfs.congestion(&bumped)[light];
    println!(
        "  {:<22}{:>14.6}{:>14}",
        "light-user insularity",
        (after - before).abs(),
        "n/a"
    );
    // Protection bound shape: all peers at the victim's rate is the worst case.
    let victim = 0.1;
    let worst = kfs.congestion(&[victim, 10.0, 10.0])[0];
    let at_bound = kfs.congestion(&[victim; 3])[0];
    println!(
        "  {:<22}{:>14.6}{:>14}",
        "protection tightness",
        (worst - at_bound).abs(),
        "unbounded"
    );
    note("(zero envy / insularity / tight protection for the kernelized Fair");
    note("Share; the proportional kernel allocation keeps none of them)");

    note("\n(c) realizability: the preemptive Table 1 scheduler vs the kernel");
    note("serialization under deterministic service (see the DES test");
    note("`md1_fair_share_table_is_exact_for_the_lightest_user_only`): exact for");
    note("the lightest user, ~5-10% over-charge for preempted heavy users —");
    note("mean queue length is scheduling-dependent outside M/M/1.");
}
