//! Experiment E10(b) — §5.2: the Fair Queueing claims on the FTP / Telnet
//! / blaster workload, at packet level.

use greednet_bench::{header, note};
use greednet_des::scenarios::{DisciplineKind, Scenario};

fn main() {
    header("E10b: FTP/Telnet/blaster scenarios (§5.2)");
    let horizon = 60_000.0;
    let seed = 4096;

    for (label, scenario) in [
        ("2 FTP @0.30 + 3 Telnet @0.02", Scenario::ftp_telnet(2, 0.30, 3, 0.02)),
        (
            "2 FTP @0.30 + 3 Telnet @0.02 + blaster @1.0",
            Scenario::ftp_telnet(2, 0.30, 3, 0.02).with_blaster(1.0),
        ),
    ] {
        println!("\n  scenario: {label} (load {:.2})", scenario.load());
        println!(
            "  {:<12}{:>14}{:>14}{:>16}{:>14}{:>14}",
            "discipline", "telnet delay", "telnet p99", "ftp throughput", "blaster tput", "telnet tput"
        );
        for kind in [
            DisciplineKind::Fifo,
            DisciplineKind::ProcessorSharing,
            DisciplineKind::Sfq,
            DisciplineKind::FsTable,
        ] {
            let r = scenario.run(kind, horizon, seed).expect("simulate");
            println!(
                "  {:<12}{:>14.3}{:>14.3}{:>16.4}{:>14.4}{:>14.4}",
                kind.label(),
                r.mean_delay_of("telnet"),
                r.p99_delay_of("telnet"),
                r.throughput_of("ftp"),
                r.throughput_of("blaster"),
                r.throughput_of("telnet"),
            );
        }
    }
    note("paper (§5.2): Fair-Share-family scheduling gives (1) fair throughput");
    note("allocation, (2) lower delay to sources using less than their share,");
    note("and (3) protection from ill-behaved sources, versus FIFO where the");
    note("blaster captures the switch and Telnet delay explodes.");
}
