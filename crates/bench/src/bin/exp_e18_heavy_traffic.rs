//! Thin wrapper running experiment `e18` from the central registry.
//! All logic lives in `greednet_bench::experiments`; common flags
//! (`--seed`, `--threads`, `--json`/`--csv`, `--smoke`) are parsed by
//! `greednet_bench::exp_cli`.

fn main() {
    greednet_bench::exp_cli::exp_main("e18");
}
