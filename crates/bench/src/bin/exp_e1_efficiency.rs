//! Experiment E1 — Theorems 1 & 2: efficiency of Nash equilibria.
//!
//! (a) Identical users: the Fair Share Nash equilibrium coincides with the
//!     symmetric Pareto optimum; FIFO's does not, and the utility it
//!     leaves on the table grows with N (the congestion-game tragedy).
//! (b) Sampled heterogeneous profiles: no discipline gives Pareto Nash
//!     equilibria in general (Theorem 1); Fair Share achieves Pareto
//!     exactly when rates are equal (Theorem 2).

use greednet_bench::{header, identical_linear_game, note, ProfileSampler};
use greednet_core::game::{Game, NashOptions};
use greednet_core::pareto;
use greednet_core::utility::LinearUtility;
use greednet_queueing::{FairShare, Proportional};

fn main() {
    header("E1: efficiency of Nash equilibria (Theorems 1 & 2)");

    // (a) identical linear users, gamma = 0.25.
    let gamma = 0.25;
    note(&format!("(a) N identical linear users, U = r - {gamma} c"));
    println!(
        "\n  {:<4}{:>12}{:>12}{:>12}{:>14}{:>14}",
        "N", "U@FIFO-Nash", "U@FS-Nash", "U@Pareto", "FIFO gap", "FS gap"
    );
    for n in [2usize, 4, 8, 16] {
        let fifo = identical_linear_game(Box::new(Proportional::new()), n, gamma);
        let fs = identical_linear_game(Box::new(FairShare::new()), n, gamma);
        let opts = NashOptions::default();
        let nf = fifo.solve_nash(&opts).expect("fifo nash");
        let ns = fs.solve_nash(&opts).expect("fs nash");
        let u = LinearUtility::new(1.0, gamma);
        let (rp, cp) = pareto::symmetric_pareto(&u, n).expect("pareto");
        let u_pareto = rp - gamma * cp;
        println!(
            "  {:<4}{:>12.5}{:>12.5}{:>12.5}{:>13.1}%{:>13.2}%",
            n,
            nf.utilities[0],
            ns.utilities[0],
            u_pareto,
            100.0 * (u_pareto - nf.utilities[0]) / u_pareto.abs(),
            100.0 * (u_pareto - ns.utilities[0]) / u_pareto.abs(),
        );
    }
    note("paper: FS Nash = symmetric Pareto point (Thm 2); FIFO never Pareto.");

    // (b) heterogeneous profiles.
    note("\n(b) 60 sampled heterogeneous profiles (N = 3): Pareto FDC residual at Nash");
    let mut sampler = ProfileSampler::new(20260706);
    let mut stats: Vec<(&str, usize, usize, f64)> = Vec::new(); // name, pareto count, dominated count, mean residual
    for (name, allocf) in [("FIFO", 0usize), ("FairShare", 1usize)] {
        let mut pareto_count = 0;
        let mut dominated = 0;
        let mut resid_sum = 0.0;
        let mut cases = 0;
        let mut inner = ProfileSampler::new(99);
        for _ in 0..60 {
            let users = inner.profile(3);
            let game = if allocf == 0 {
                Game::new(Proportional::new(), users).expect("game")
            } else {
                Game::new(FairShare::new(), users).expect("game")
            };
            let sol = match game.solve_nash(&NashOptions::default()) {
                Ok(s) if s.converged && s.rates.iter().all(|&r| r > 1e-6) => s,
                _ => continue,
            };
            cases += 1;
            let resid: f64 = pareto::fdc_residuals(&game, &sol.rates)
                .iter()
                .map(|r| r.abs())
                .fold(0.0, f64::max);
            resid_sum += resid;
            if resid < 1e-4 {
                pareto_count += 1;
            }
            if pareto::scaling_improvement(&game, &sol.rates).is_some() {
                dominated += 1;
            }
        }
        stats.push((name, pareto_count, dominated, resid_sum / cases.max(1) as f64));
        let _ = &mut sampler;
    }
    println!(
        "\n  {:<12}{:>14}{:>22}{:>18}",
        "discipline", "Pareto Nash", "scaling-dominated", "mean |FDC resid|"
    );
    for (name, p, d, m) in stats {
        println!("  {name:<12}{p:>14}{d:>22}{m:>18.4}");
    }
    note("paper (Thm 1): zero Pareto Nash equilibria for any MAC discipline on");
    note("heterogeneous profiles; FIFO equilibria are Pareto-dominated by a");
    note("uniform backoff (tragedy of the commons).");
}
