//! Experiment E7 — Theorem 8: out-of-equilibrium protection.
//!
//! For each discipline, sweeps victim rates against adversarial opponents
//! and compares the worst observed congestion with the paper's bound
//! `r_i / (1 − N r_i)`.

use greednet_bench::{header, note, standard_disciplines};
use greednet_core::protection::{adversarial_congestion, protection_bound, protection_sweep};

fn main() {
    header("E7: protection bounds (Theorem 8)");
    let n = 4;
    let victims = [0.02, 0.05, 0.1, 0.15, 0.2, 0.24];
    let levels = [0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 0.95, 2.0, 10.0];
    note(&format!("N = {n}; victim rates {victims:?}; adversary levels up to 10x capacity"));

    println!(
        "\n  {:<12}{:>14}{:>14}{:>12}",
        "discipline", "protective?", "worst ratio", "violations"
    );
    for (name, alloc) in standard_disciplines() {
        let report = protection_sweep(alloc.as_ref(), n, &victims, &levels);
        println!(
            "  {name:<12}{:>14}{:>14.4}{:>12}",
            report.protective(),
            report.worst_ratio,
            report.violations.len()
        );
    }

    println!("\n  Detail: victim at r = 0.1, single flooder at rate L (N = {n}):");
    println!(
        "  {:<8}{:>14}{:>14}{:>14}{:>16}",
        "L", "FIFO c_i", "FS c_i", "SP c_i", "bound r/(1-Nr)"
    );
    let discs = standard_disciplines();
    let bound = protection_bound(n, 0.1);
    for level in [0.2, 0.5, 0.85, 0.95, 2.0, 10.0] {
        let c: Vec<f64> = discs
            .iter()
            .map(|(_, a)| adversarial_congestion(a.as_ref(), n, 0.1, &[level]))
            .collect();
        println!(
            "  {level:<8}{:>14.4}{:>14.4}{:>14.4}{bound:>16.4}",
            c[0], c[1], c[2]
        );
    }
    note("paper (Thm 8): Fair Share respects the bound with equality in the worst");
    note("case (all peers at the victim's own rate) and is the only MAC");
    note("discipline that is protective; FIFO congestion diverges as the flooder");
    note("approaches capacity.");
}
