//! Experiment E11 — §4.2.2: generalized hill climbing as candidate-set
//! elimination. Fair Share candidate sets collapse to the unique Nash
//! equilibrium; FIFO sets stay fat (no robust convergence guarantee).

use greednet_bench::{header, note, standard_disciplines};
use greednet_core::game::{Game, NashOptions};
use greednet_core::utility::{BoxedUtility, LogUtility, UtilityExt};
use greednet_learning::automata::{run as automata_run, AutomataConfig};
use greednet_learning::elimination::{run, EliminationConfig};
use greednet_learning::hill::ExactEnv;

fn main() {
    header("E11: candidate-elimination dynamics (generalized hill climbing)");
    let users: Vec<BoxedUtility> = vec![
        LogUtility::new(0.3, 1.0).boxed(),
        LogUtility::new(0.6, 1.0).boxed(),
        LogUtility::new(0.9, 1.0).boxed(),
    ];
    let cfg = EliminationConfig { grid: 61, lo: 0.005, hi: 0.5, max_rounds: 120 };
    let step = (cfg.hi - cfg.lo) / (cfg.grid - 1) as f64;
    note(&format!(
        "3 log users; {}-point candidate grids on [{}, {}] (step {:.4})",
        cfg.grid, cfg.lo, cfg.hi, step
    ));

    println!(
        "\n  {:<12}{:>10}{:>12}{:>26}{:>12}",
        "discipline", "rounds", "eliminated", "surviving widths", "collapsed"
    );
    for (name, alloc) in standard_disciplines() {
        let out = run(alloc.as_ref(), &users, &cfg).expect("elimination");
        let widths: Vec<String> =
            out.widths().iter().map(|w| format!("{w:.3}")).collect();
        println!(
            "  {name:<12}{:>10}{:>12}{:>26}{:>12}",
            out.rounds,
            out.eliminated,
            widths.join("/"),
            out.collapsed(3.0 * step)
        );
        if name == "FairShare" {
            let game = Game::from_boxed(alloc.clone_box(), users.clone()).expect("game");
            let nash = game.solve_nash(&NashOptions::default()).expect("nash");
            let mids: Vec<String> =
                out.midpoints().iter().map(|m| format!("{m:.4}")).collect();
            let nr: Vec<String> = nash.rates.iter().map(|r| format!("{r:.4}")).collect();
            note(&format!("    FS survivors center on {} vs Nash {}", mids.join("/"), nr.join("/")));
        }
    }
    note("paper (§4.2.2, Thm 5 via [8]): any combination of 'reasonable'");
    note("optimization procedures converges to the unique Nash equilibrium under");
    note("Fair Share — S^infinity is a point; no such guarantee elsewhere.");

    // A second instance of [8]: linear reward-inaction learning automata.
    println!("\n  Learning automata (pursuit, 20000 rounds, 21-point grids, 3 seeds):");
    println!(
        "  {:<12}{:>30}{:>22}",
        "discipline", "mean rates (per user)", "mean concentration"
    );
    for (name, alloc) in standard_disciplines() {
        for seed in [7u64, 11, 23] {
            let acfg = AutomataConfig { seed, ..Default::default() };
            let mut env = ExactEnv::new(alloc.clone_box(), users.len());
            let out = automata_run(&users, &mut env, &acfg).expect("automata");
            let rates: Vec<String> =
                out.mean_rates.iter().map(|r| format!("{r:.3}")).collect();
            let conc =
                out.concentration.iter().sum::<f64>() / out.concentration.len() as f64;
            println!("  {name:<12}{:>30}{conc:>22.3}", rates.join("/"));
        }
    }
    let game = greednet_core::game::Game::new(
        greednet_queueing::FairShare::new(),
        users.clone(),
    )
    .expect("game");
    let nash = game.solve_nash(&NashOptions::default()).expect("nash");
    let nr: Vec<String> = nash.rates.iter().map(|r| format!("{r:.3}")).collect();
    note(&format!("    (Fair Share Nash for reference: {})", nr.join("/")));
    note("automata — which see only their own sampled payoffs — settle on the");
    note("Fair Share equilibrium regardless of seed (Thm 5(1) via [8]); under the");
    note("other disciplines the same automata land somewhere different every run.");
}
