//! Experiment E5 — Theorem 6: the direct mechanism `B^FS` is a revelation
//! mechanism (truth-telling is optimal), while the same construction over
//! FIFO invites lying.

use greednet_bench::{header, note};
use greednet_core::utility::{BoxedUtility, LinearUtility, LogUtility, PowerUtility, UtilityExt};
use greednet_mechanisms::revelation::{max_misreport_gain, DirectMechanism};
use greednet_queueing::{FairShare, Proportional};

fn candidate_lies() -> Vec<BoxedUtility> {
    let mut v: Vec<BoxedUtility> = Vec::new();
    for w in [0.1, 0.25, 0.5, 1.0, 1.8, 3.0] {
        for g in [0.3, 0.8, 1.3, 2.2] {
            v.push(LogUtility::new(w, g).boxed());
        }
    }
    for a in [0.3, 0.5, 0.7] {
        v.push(PowerUtility::new(a, 1.0).boxed());
    }
    for g in [0.1, 0.3, 0.6] {
        v.push(LinearUtility::new(1.0, g).boxed());
    }
    v
}

fn main() {
    header("E5: revelation mechanism B^FS (Theorem 6)");
    let truths: Vec<(&str, Vec<BoxedUtility>)> = vec![
        (
            "3 log users",
            vec![
                LogUtility::new(0.4, 1.0).boxed(),
                LogUtility::new(0.8, 1.2).boxed(),
                LogUtility::new(1.2, 0.8).boxed(),
            ],
        ),
        (
            "mixed families",
            vec![
                LogUtility::new(0.5, 1.5).boxed(),
                PowerUtility::new(0.5, 0.8).boxed(),
                LinearUtility::new(1.0, 0.35).boxed(),
            ],
        ),
    ];
    let lies = candidate_lies();
    note(&format!("{} candidate misreports per user", lies.len()));

    println!(
        "\n  {:<16}{:<6}{:>20}{:>22}",
        "profile", "user", "B^FS best lie gain", "B^FIFO best lie gain"
    );
    let fs = DirectMechanism::new(Box::new(FairShare::new()));
    let fifo = DirectMechanism::new(Box::new(Proportional::new()));
    for (label, truth) in &truths {
        for i in 0..truth.len() {
            let (g_fs, _) = max_misreport_gain(&fs, truth, i, &lies).expect("fs mechanism");
            let (g_fifo, _) =
                max_misreport_gain(&fifo, truth, i, &lies).expect("fifo mechanism");
            println!("  {label:<16}{i:<6}{g_fs:>20.6}{g_fifo:>20.6}");
        }
    }
    note("paper (Thm 6): under B^FS no misreport improves true utility (column");
    note("~0); B^FIFO is manipulable (strictly positive best-lie gains).");
}
