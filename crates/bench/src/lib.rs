//! Experiment harness for the reproduction of *"Making Greed Work in
//! Networks"*.
//!
//! The paper is analytic: its evaluation artifacts are Table 1 and the
//! quantitative content of Theorems 1–8 / Corollaries 1–2. Each binary in
//! `src/bin/` regenerates one artifact as a printed table (see DESIGN.md
//! §4 for the index and EXPERIMENTS.md for paper-vs-measured records):
//!
//! | binary | artifact |
//! |---|---|
//! | `exp_t1_priority_table` | Table 1 + packet validation |
//! | `exp_e1_efficiency` | Thm 1 & 2 (Pareto efficiency of Nash) |
//! | `exp_e2_envy` | Thm 3 (unilateral envy-freeness) |
//! | `exp_e3_uniqueness` | Thm 4 (uniqueness of Nash) |
//! | `exp_e4_stackelberg` | Thm 5 (leader advantage) |
//! | `exp_e5_revelation` | Thm 6 (truthfulness of `B^FS`) |
//! | `exp_e6_convergence` | Thm 7 (relaxation spectra, Newton dynamics) |
//! | `exp_e7_protection` | Thm 8 (protection bounds) |
//! | `exp_e8_alt_constraint` | Cor. 2 (alternative constraints) |
//! | `exp_e9_des_validation` | §3.1 closed forms vs packets |
//! | `exp_e10_dynamics` | §2.2/§4.2.2 noisy hill climbing |
//! | `exp_e10_ftp_telnet` | §5.2 FTP/Telnet/blaster mix |
//! | `exp_e11_elimination` | §4.2.2 generalized hill climbing + learning automata |
//! | `exp_e12_network` | §5.4 networks of switches |
//! | `exp_e13_mg1` | footnote 5: M/G/1 kernels |
//! | `exp_e14_coalitions` | footnote 14: coalition resilience |
//! | `exp_e15_blend_ablation` | ablation along the FIFO→FS blend |
//! | `exp_e16_closed_loop` | §5.2 closed-loop AIMD sources + ECN marking |
//!
//! Criterion micro-benchmarks of the library kernels live in `benches/`.
//!
//! Every experiment implements [`greednet_runtime::Experiment`] in
//! [`experiments`] and is listed in the central [`experiments::registry`];
//! the `src/bin/` targets are thin wrappers over [`exp_cli::exp_main`],
//! and the same registry backs `greednet exp <id>` in the CLI crate. This
//! `lib` target additionally holds the shared utilities (the
//! [`DisciplineSet`], sampled utility profiles, standard game builders).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod exp_cli;
pub mod experiments;

use greednet_core::game::Game;
use greednet_core::utility::{
    BoxedUtility, LinearUtility, LogUtility, PowerUtility, QuadraticCongestionUtility, UtilityExt,
};
use greednet_queueing::alloc::AllocationFunction;
use greednet_queueing::{Blend, FairShare, Proportional, SerialPriority};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A typed, ordered set of named allocation disciplines.
///
/// Replaces the old free function returning `Vec<(&str, Box<dyn ...>)>`:
/// experiments now share one value with named constructors, iteration in
/// reporting order, and lookup by name.
pub struct DisciplineSet {
    entries: Vec<(&'static str, Box<dyn AllocationFunction>)>,
}

impl DisciplineSet {
    /// Empty set (extend with [`with`](Self::with)).
    #[must_use]
    pub fn empty() -> Self {
        DisciplineSet {
            entries: Vec::new(),
        }
    }

    /// The four disciplines every experiment sweeps, in reporting order:
    /// FIFO, Fair Share, serial priority, and the 50/50 blend.
    #[must_use]
    pub fn standard() -> Self {
        DisciplineSet::fifo_vs_fair_share()
            .with("SerialPrio", Box::new(SerialPriority::new()))
            .with("Blend(0.5)", Box::new(blend(0.5)))
    }

    /// Just the paper's two protagonists: FIFO and Fair Share.
    #[must_use]
    pub fn fifo_vs_fair_share() -> Self {
        DisciplineSet::empty()
            .with("FIFO", Box::new(Proportional::new()))
            .with("FairShare", Box::new(FairShare::new()))
    }

    /// Appends a named discipline.
    ///
    /// # Panics
    /// If the name is already present (lookup would be ambiguous).
    #[must_use]
    pub fn with(mut self, name: &'static str, alloc: Box<dyn AllocationFunction>) -> Self {
        assert!(
            self.get(name).is_none(),
            "duplicate discipline name {name:?}"
        );
        self.entries.push((name, alloc));
        self
    }

    /// Looks a discipline up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&dyn AllocationFunction> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, a)| a.as_ref())
    }

    /// Names in reporting order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    /// Iterates `(name, discipline)` pairs in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &dyn AllocationFunction)> {
        self.entries.iter().map(|(n, a)| (*n, a.as_ref()))
    }

    /// Number of disciplines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for DisciplineSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("DisciplineSet").field(&self.names()).finish()
    }
}

/// The FIFO→Fair-Share blend `C^θ = (1−θ)·C^FIFO + θ·C^FS`.
#[must_use]
pub fn blend(theta: f64) -> Blend {
    Blend::new(
        Box::new(Proportional::new()),
        Box::new(FairShare::new()),
        theta,
    )
    .expect("valid blend")
}

/// A deterministic sampler of heterogeneous AU utility profiles.
#[derive(Debug)]
pub struct ProfileSampler {
    rng: SmallRng,
}

impl ProfileSampler {
    /// Creates a sampler with a fixed seed.
    pub fn new(seed: u64) -> Self {
        ProfileSampler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.rng.random::<f64>()
    }

    /// Samples one utility from the mixed AU families.
    pub fn utility(&mut self) -> BoxedUtility {
        match self.rng.random_range(0..4u8) {
            0 => LogUtility::new(self.uniform(0.2, 1.2), self.uniform(0.5, 2.5)).boxed(),
            1 => PowerUtility::new(self.uniform(0.3, 0.8), self.uniform(0.4, 2.0)).boxed(),
            2 => LinearUtility::new(1.0, self.uniform(0.1, 0.7)).boxed(),
            _ => QuadraticCongestionUtility::new(1.0, self.uniform(0.5, 3.0)).boxed(),
        }
    }

    /// Samples a profile of `n` users.
    pub fn profile(&mut self, n: usize) -> Vec<BoxedUtility> {
        (0..n).map(|_| self.utility()).collect()
    }

    /// Samples a rate vector with total load below `max_load`.
    pub fn rates(&mut self, n: usize, max_load: f64) -> Vec<f64> {
        let mut r: Vec<f64> = (0..n).map(|_| self.uniform(0.01, 1.0)).collect();
        let total: f64 = r.iter().sum();
        let scale = self.uniform(0.3, 0.95) * max_load / total;
        for x in &mut r {
            *x *= scale;
        }
        r
    }
}

/// Builds a game of `n` identical linear users over `alloc`.
pub fn identical_linear_game(alloc: Box<dyn AllocationFunction>, n: usize, gamma: f64) -> Game {
    let users = (0..n)
        .map(|_| LinearUtility::new(1.0, gamma).boxed())
        .collect();
    Game::from_boxed(alloc, users).expect("non-empty game")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic() {
        let mut a = ProfileSampler::new(7);
        let mut b = ProfileSampler::new(7);
        assert_eq!(a.rates(3, 0.9), b.rates(3, 0.9));
    }

    #[test]
    fn sampled_rates_respect_load_cap() {
        let mut s = ProfileSampler::new(1);
        for _ in 0..50 {
            let r = s.rates(5, 0.9);
            assert!(r.iter().sum::<f64>() < 0.9);
            assert!(r.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn sampled_profiles_are_valid_au() {
        let mut s = ProfileSampler::new(2);
        for _ in 0..20 {
            let u = s.utility();
            assert!(u.du_dr(0.2, 0.5) > 0.0);
            assert!(u.du_dc(0.2, 0.5) < 0.0);
        }
    }

    #[test]
    fn standard_discipline_set() {
        let d = DisciplineSet::standard();
        assert_eq!(d.len(), 4);
        assert_eq!(
            d.names(),
            vec!["FIFO", "FairShare", "SerialPrio", "Blend(0.5)"]
        );
        assert!(d.get("FairShare").is_some());
        assert!(d.get("nope").is_none());
        for (name, alloc) in d.iter() {
            assert!(!name.is_empty());
            let c = alloc.congestion(&[0.1, 0.2]);
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate discipline name")]
    fn duplicate_discipline_names_rejected() {
        let _ = DisciplineSet::fifo_vs_fair_share()
            .with("FIFO", Box::new(greednet_queueing::Proportional::new()));
    }

    #[test]
    fn identical_linear_game_builds() {
        let g = identical_linear_game(Box::new(FairShare::new()), 3, 0.3);
        assert_eq!(g.n(), 3);
    }
}
