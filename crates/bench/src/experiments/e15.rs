//! Experiment E15 — ablation: interpolating between FIFO and Fair Share.
//!
//! DESIGN.md calls for ablation benches on the design choices. The blend
//! `C^θ = (1−θ)·C^FIFO + θ·C^FS` is a valid allocation function for every
//! θ (the feasible set is convex), which lets us ask: are the paper's
//! properties *gradual* in the discipline, or do they hold only at the
//! Fair Share endpoint? Answer (matching the "only MAC allocation
//! function" uniqueness theorems): envy, protection, Stackelberg immunity
//! and nilpotency all fail for every θ < 1 — the properties are
//! knife-edge, not gradual — though the *magnitude* of the failures
//! shrinks smoothly with θ. The θ-sweep runs in parallel.

use crate::{blend, ProfileSampler};
use greednet_core::game::{Game, NashOptions};
use greednet_core::protection::{adversarial_congestion, protection_bound};
use greednet_core::relaxation::spectral_radius;
use greednet_core::stackelberg::{leader_advantage, StackelbergOptions};
use greednet_core::utility::{LinearUtility, UtilityExt};
use greednet_runtime::{Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E15 (ablation): properties along the FIFO → Fair Share blend.
pub struct E15BlendAblation;

impl Experiment for E15BlendAblation {
    fn id(&self) -> &'static str {
        "e15"
    }

    fn title(&self) -> &'static str {
        "E15 (ablation): properties along the FIFO -> Fair Share blend"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        report.note("C^theta = (1-theta) FIFO + theta FairShare; theta = 1 is Fair Share");
        let n = 3;
        let gamma = 0.25;
        let profiles = ctx.budget.count(30);
        let envy_seed = ctx.stage_seed(1);
        report.note(format!(
            "{profiles} sampled profiles per theta for the envy column"
        ));

        let thetas = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
        let rows = ParallelSweep::new(ctx.threads).map(&thetas, |_, &theta| {
            // Envy over sampled profiles (every theta sees the same draws).
            let mut sampler = ProfileSampler::new(envy_seed);
            let mut max_envy = f64::NEG_INFINITY;
            for _ in 0..profiles {
                let users = sampler.profile(n);
                let game = Game::from_boxed(Box::new(blend(theta)), users).expect("game");
                if let Ok(sol) = game.solve_nash(&NashOptions::default()) {
                    if sol.converged {
                        max_envy = max_envy.max(game.max_envy(&sol.rates).expect("envy"));
                    }
                }
            }
            // Protection ratio (victim 0.1, N = 4, flooder sweep).
            let b = blend(theta);
            let observed = adversarial_congestion(&b, 4, 0.1, &[0.2, 0.5, 0.69, 0.695]);
            let ratio = observed / protection_bound(4, 0.1);
            // Stackelberg advantage (identical linear users).
            let users: Vec<_> = (0..n)
                .map(|_| LinearUtility::new(1.0, gamma).boxed())
                .collect();
            let game = Game::from_boxed(Box::new(blend(theta)), users).expect("game");
            let (stack, nash) =
                leader_advantage(&game, 0, &StackelbergOptions::default()).expect("stackelberg");
            let adv = stack.leader_utility - nash.utilities[0];
            // Relaxation spectral radius at the (tie-broken) Nash point.
            let mut pt = nash.rates.clone();
            for (i, r) in pt.iter_mut().enumerate() {
                *r *= 1.0 + 1e-4 * i as f64;
            }
            let rho = spectral_radius(&game, &pt).expect("spectrum");
            (theta, max_envy, ratio, adv, rho)
        });

        let mut t = Table::new(&[
            "theta",
            "max envy",
            "protect ratio",
            "leader advantage",
            "spectral radius",
        ]);
        for (theta, max_envy, ratio, adv, rho) in rows {
            t.row(vec![
                Cell::num_text(theta, format!("{theta}")),
                Cell::num(max_envy),
                if ratio.is_finite() {
                    Cell::num_text(ratio, format!("{ratio:.3}"))
                } else {
                    "inf".into()
                },
                Cell::num_text(adv, format!("{adv:.6}")),
                Cell::num_text(rho, format!("{rho:.4}")),
            ]);
        }
        report.table(t);
        report.note("every failure magnitude shrinks monotonically with theta, but only");
        report.note("theta = 1 (pure Fair Share) reaches envy <= 0, protection ratio <= 1,");
        report.note("zero leader advantage and a nilpotent relaxation matrix — the");
        report.note("uniqueness halves of Theorems 3/5/7/8 are knife-edge properties.");
        report
    }
}
