//! Experiment E12 — §5.4: networks of switches (the paper's named open
//! problem, under its own suggested Poisson approximation).
//!
//! Parking-lot topologies: one through user crossing `k` switches, one
//! local user per switch. Checks which single-switch results survive:
//! unique reachable equilibria, same-route envy-freeness and per-route
//! protection under Fair Share — and the continued failure of all three
//! under FIFO — while cross-route envy illustrates why §5.4 says fairness
//! needs a new definition.

use greednet_core::game::NashOptions;
use greednet_core::utility::{BoxedUtility, LogUtility, UtilityExt};
use greednet_network::{NetworkGame, Topology};
use greednet_queueing::{AllocationFunction, FairShare, Proportional};
use greednet_runtime::{Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E12: networks of switches (§5.4 extension).
pub struct E12Network;

fn users(k: usize) -> Vec<BoxedUtility> {
    (0..=k).map(|_| LogUtility::new(0.5, 1.0).boxed()).collect()
}

fn parking_lot(k: usize, fair: bool) -> NetworkGame {
    let alloc: Box<dyn AllocationFunction> = if fair {
        Box::new(FairShare::new())
    } else {
        Box::new(Proportional::new())
    };
    NetworkGame::new(Topology::parking_lot(k).expect("topology"), alloc, users(k)).expect("game")
}

impl Experiment for E12Network {
    fn id(&self) -> &'static str {
        "e12"
    }

    fn title(&self) -> &'static str {
        "E12: networks of switches (§5.4; extension under the paper's Poisson approximation)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        report.note("parking lot: 1 through user crossing k switches + 1 local user per switch");

        let mut grid: Vec<(usize, bool)> = Vec::new();
        for k in [2usize, 3, 5] {
            for fair in [true, false] {
                grid.push((k, fair));
            }
        }
        let rows = ParallelSweep::new(ctx.threads).map(&grid, |_, &(k, fair)| {
            let net = parking_lot(k, fair);
            let nash = net.solve_nash(&NashOptions::default()).expect("nash");
            let gain = net.max_deviation_gain(&nash.rates, 192).expect("verify");
            (
                k,
                fair,
                nash.converged,
                nash.rates[0],
                nash.rates[1],
                gain,
                nash.congestions[0] / nash.congestions[1],
            )
        });
        let mut t = Table::new(&[
            "k",
            "discipline",
            "converged",
            "r(through)",
            "r(local)",
            "deviation gain",
            "thru/local c",
        ]);
        for (k, fair, converged, r_thru, r_local, gain, c_ratio) in rows {
            t.row(vec![
                k.into(),
                if fair { "FairShare" } else { "FIFO" }.into(),
                converged.into(),
                Cell::num_text(r_thru, format!("{r_thru:.4}")),
                Cell::num_text(r_local, format!("{r_local:.4}")),
                Cell::num_text(gain, format!("{gain:.2e}")),
                Cell::num_text(c_ratio, format!("{c_ratio:.3}")),
            ]);
        }
        report.table(t);
        report.note("long routes rationally send less; equilibria exist, converge and verify");
        report.note("under both disciplines in this benign setting.");

        // Protection across routes.
        report.section("protection of the through user (r = 0.08) vs flooding locals (k = 3)");
        let mut t = Table::new(&[
            "discipline",
            "worst congestion",
            "summed bound",
            "protected?",
        ]);
        for fair in [true, false] {
            let net = parking_lot(3, fair);
            let observed = net.adversarial_congestion(0, 0.08, &[0.1, 0.3, 0.8, 0.95, 2.0]);
            let bound = net.protection_bound(0, 0.08);
            t.row(vec![
                if fair { "FairShare" } else { "FIFO" }.into(),
                Cell::num_text(observed, format!("{observed:.4}")),
                Cell::num_text(bound, format!("{bound:.4}")),
                (observed <= bound * (1.0 + 1e-9)).into(),
            ]);
        }
        report.table(t);

        // Fairness needs redefinition: cross-route envy under FS.
        report.section("envy in a network under Fair Share (2 switches, 2 through + 2 local)");
        let t2 =
            Topology::new(2, vec![vec![0, 1], vec![0, 1], vec![0], vec![1]]).expect("topology");
        let u: Vec<BoxedUtility> = vec![
            LogUtility::new(0.3, 1.0).boxed(),
            LogUtility::new(0.9, 1.0).boxed(),
            LogUtility::new(0.5, 1.0).boxed(),
            LogUtility::new(0.5, 1.0).boxed(),
        ];
        let net = NetworkGame::new(t2, Box::new(FairShare::new()), u).expect("game");
        let nash = net.solve_nash(&NashOptions::default()).expect("nash");
        let same = net.max_same_route_envy(&nash.rates);
        let mut cross = f64::NEG_INFINITY;
        for i in 0..4 {
            for j in 0..4 {
                if i != j && net.topology().route(i) != net.topology().route(j) {
                    cross = cross.max(net.envy(&nash.rates, i, j));
                }
            }
        }
        report.metric("same_route_max_envy", same);
        report.metric("cross_route_max_envy", cross);
        report.note(format!(
            "same-route max envy : {same:+.6}  (envy-freeness survives)"
        ));
        report.note(format!(
            "cross-route max env : {cross:+.6}  (positive: short routes look 'better';"
        ));
        report.note("§5.4: fairness across routes needs a new definition)");
        report
    }
}
