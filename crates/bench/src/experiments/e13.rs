//! Experiment E13 — footnote 5: the theory beyond M/M/1.
//!
//! The paper notes its results hold for any strictly increasing, strictly
//! convex congestion curve — in particular M/G/1. This experiment (an
//! extension beyond the paper's own evaluation) re-verifies the headline
//! properties over Pollaczek–Khinchine kernels; the four service-law
//! packet validations run in parallel.

use greednet_core::game::{Game, NashOptions};
use greednet_core::utility::{BoxedUtility, LogUtility, UtilityExt};
use greednet_des::{Fifo, ServiceDist, SimConfig, Simulator};
use greednet_queueing::kernelized::{KernelFairShare, KernelProportional};
use greednet_queueing::mm1::{CongestionKernel, Mg1Kernel};
use greednet_queueing::AllocationFunction;
use greednet_runtime::{Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};
use std::sync::Arc;

/// E13: beyond M/M/1 — M/G/1 kernels (paper footnote 5; extension).
pub struct E13Mg1;

impl Experiment for E13Mg1 {
    fn id(&self) -> &'static str {
        "e13"
    }

    fn title(&self) -> &'static str {
        "E13: beyond M/M/1 — M/G/1 kernels (paper footnote 5; extension)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let horizon = ctx.budget.horizon(200_000.0);

        report.section(format!(
            "(a) packet totals vs Pollaczek-Khinchine, FIFO, load 0.6, horizon {horizon}"
        ));
        let rates = vec![0.25, 0.35];
        let dists = [
            ServiceDist::Deterministic,
            ServiceDist::Erlang(4),
            ServiceDist::Exponential,
            ServiceDist::Hyperexponential { cs2: 4.0 },
        ];
        let rows =
            ParallelSweep::new(ctx.threads).map_seeded(ctx.stage_seed(1), &dists, |seed, &dist| {
                let kernel = Mg1Kernel::new(dist.cs2());
                let expect = kernel.g(0.6);
                let cfg = SimConfig::builder(rates.clone())
                    .horizon(horizon)
                    .seed(seed)
                    .service(dist)
                    .build()
                    .expect("valid config");
                let sim = Simulator::new(cfg).expect("simulator");
                let r = sim.run(&mut Fifo).expect("simulate");
                (dist, expect, r.total_mean_queue)
            });
        let mut t = Table::new(&["service", "cs2", "P-K total", "simulated", "rel.err"]);
        for (dist, expect, got) in rows {
            let rel = (got - expect).abs() / expect;
            t.row(vec![
                dist.label().into(),
                Cell::num_text(dist.cs2(), format!("{:.2}", dist.cs2())),
                Cell::num_text(expect, format!("{expect:.4}")),
                Cell::num_text(got, format!("{got:.4}")),
                Cell::num_text(rel, format!("{:.2}%", rel * 100.0)),
            ]);
        }
        report.table(t);

        report.section("(b) the theorems' signatures survive the kernel change (M/D/1)");
        let kernel: Arc<dyn CongestionKernel> = Arc::new(Mg1Kernel::new(0.0));
        let users = || -> Vec<BoxedUtility> {
            vec![
                LogUtility::new(0.4, 1.0).boxed(),
                LogUtility::new(0.8, 1.2).boxed(),
                LogUtility::new(1.2, 0.9).boxed(),
            ]
        };
        let fs_game = Game::from_boxed(Box::new(KernelFairShare::new(kernel.clone())), users())
            .expect("game");
        let fifo_game =
            Game::from_boxed(Box::new(KernelProportional::new(kernel.clone())), users())
                .expect("game");
        let nash_fs = fs_game
            .solve_nash(&NashOptions::default())
            .expect("fs nash");
        let nash_fifo = fifo_game
            .solve_nash(&NashOptions::default())
            .expect("fifo nash");
        let mut t = Table::new(&["property", "KernelFS", "KernelFIFO"]);
        t.row(vec![
            "Nash converged".into(),
            nash_fs.converged.into(),
            nash_fifo.converged.into(),
        ]);
        let envy_fs = fs_game.max_envy(&nash_fs.rates).expect("envy");
        let envy_fifo = fifo_game.max_envy(&nash_fifo.rates).expect("envy");
        t.row(vec![
            "max envy at Nash".into(),
            Cell::num_text(envy_fs, format!("{envy_fs:.6}")),
            Cell::num_text(envy_fifo, format!("{envy_fifo:.6}")),
        ]);
        // Insularity of the kernelized Fair Share.
        let kfs = KernelFairShare::new(kernel.clone());
        let light = nash_fs
            .rates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut bumped = nash_fs.rates.clone();
        let heavy = (light + 1) % 3;
        bumped[heavy] += 0.3;
        let before = kfs.congestion(&nash_fs.rates)[light];
        let after = kfs.congestion(&bumped)[light];
        t.row(vec![
            "light-user insularity".into(),
            Cell::num_text(
                (after - before).abs(),
                format!("{:.6}", (after - before).abs()),
            ),
            "n/a".into(),
        ]);
        // Protection bound shape: all peers at the victim's rate is the worst case.
        let victim = 0.1;
        let worst = kfs.congestion(&[victim, 10.0, 10.0])[0];
        let at_bound = kfs.congestion(&[victim; 3])[0];
        t.row(vec![
            "protection tightness".into(),
            Cell::num_text(
                (worst - at_bound).abs(),
                format!("{:.6}", (worst - at_bound).abs()),
            ),
            "unbounded".into(),
        ]);
        report.table(t);
        report.note("(zero envy / insularity / tight protection for the kernelized Fair");
        report.note("Share; the proportional kernel allocation keeps none of them)");

        report.section("(c) realizability");
        report.note("the preemptive Table 1 scheduler vs the kernel serialization under");
        report.note("deterministic service (see the DES test");
        report.note("`md1_fair_share_table_is_exact_for_the_lightest_user_only`): exact for");
        report.note("the lightest user, ~5-10% over-charge for preempted heavy users —");
        report.note("mean queue length is scheduling-dependent outside M/M/1.");
        report
    }
}
