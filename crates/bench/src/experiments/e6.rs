//! Experiment E6 — Theorem 7 and §4.2.3: rapid convergence.
//!
//! Computes the relaxation matrix of the synchronous Newton dynamics at
//! the Nash equilibrium for identical linear users: Fair Share must be
//! nilpotent (spectral radius 0, convergence in ≤ N steps); FIFO's leading
//! eigenvalue matches the closed form `-(N-1)(u+2r)/(2u+2r)` and tends to
//! the paper's `1 − N` as spare capacity vanishes; FIFO dynamics diverge
//! for N ≥ 3.

use crate::identical_linear_game;
use greednet_core::game::NashOptions;
use greednet_core::relaxation::{fifo_linear_leading_eigenvalue, is_nilpotent_at, spectral_radius};
use greednet_learning::newton;
use greednet_queueing::{FairShare, Proportional};
use greednet_runtime::{Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E6: relaxation spectra and Newton dynamics (Theorem 7, §4.2.3).
pub struct E6Convergence;

impl Experiment for E6Convergence {
    fn id(&self) -> &'static str {
        "e6"
    }

    fn title(&self) -> &'static str {
        "E6: relaxation spectra and Newton dynamics (Theorem 7, §4.2.3)"
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let gamma = 0.2;
        report.note(format!(
            "identical linear users, U = r - {gamma} c, at the Nash point"
        ));

        let populations = [2usize, 3, 4, 6, 8];
        let rows = ParallelSweep::new(ctx.threads).map(&populations, |_, &n| {
            let fifo = identical_linear_game(Box::new(Proportional::new()), n, gamma);
            let fs = identical_linear_game(Box::new(FairShare::new()), n, gamma);
            let nf = fifo.solve_nash(&NashOptions::default()).expect("fifo nash");
            let ns = fs.solve_nash(&NashOptions::default()).expect("fs nash");
            let rho_f = spectral_radius(&fifo, &nf.rates).expect("spectrum");
            let closed = fifo_linear_leading_eigenvalue(n, nf.rates[0]).abs();
            // Break rate ties slightly so FS stays in its C^2 region.
            let mut fs_point = ns.rates.clone();
            for (i, r) in fs_point.iter_mut().enumerate() {
                *r *= 1.0 + 1e-4 * i as f64;
            }
            let rho_s = spectral_radius(&fs, &fs_point).expect("spectrum");
            let nil = is_nilpotent_at(&fs, &fs_point, 1e-8).expect("nilpotency");
            (n, rho_f, closed, rho_s, nil)
        });
        let mut t = Table::new(&[
            "N",
            "FIFO rho",
            "FIFO closed",
            "FS rho",
            "FS nilpotent?",
            "paper 1-N",
        ]);
        for (n, rho_f, closed, rho_s, nil) in rows {
            t.row(vec![
                n.into(),
                Cell::num_text(rho_f, format!("{rho_f:.4}")),
                Cell::num_text(closed, format!("{closed:.4}")),
                Cell::num_text(rho_s, format!("{rho_s:.2e}")),
                nil.into(),
                (1i64 - n as i64).into(),
            ]);
        }
        report.table(t);
        report.note("FIFO rho > 1 for N >= 3 (unstable); FS rho = 0 (nilpotent). As load");
        report.note("grows the FIFO eigenvalue approaches the paper's 1 - N exactly:");

        report.section("FIFO leading eigenvalue vs spare capacity u = 1 - N r (N = 4)");
        let mut t = Table::new(&["r", "eigenvalue", "paper -3"]);
        for r in [0.15, 0.2, 0.23, 0.2475, 0.24975] {
            let lam = fifo_linear_leading_eigenvalue(4, r);
            t.row(vec![
                Cell::num_text(r, format!("{r}")),
                Cell::num_text(lam, format!("{lam:.4}")),
                (-3i64).into(),
            ]);
        }
        report.table(t);

        report.section("Newton trajectories (FS: heterogeneous log users; FIFO: identical linear)");
        let mut t = Table::new(&["discipline", "N", "steps to 1e-8", "final residual / ratio"]);
        for n in [3usize, 4, 6] {
            let log_users = || -> Vec<greednet_core::utility::BoxedUtility> {
                use greednet_core::utility::{LogUtility, UtilityExt};
                (0..n)
                    .map(|i| LogUtility::new(0.3 + 0.25 * i as f64, 1.0).boxed())
                    .collect()
            };
            let fs = greednet_core::game::Game::new(FairShare::new(), log_users()).expect("game");
            let ns = fs.solve_nash(&NashOptions::default()).expect("fs nash");
            let start: Vec<f64> = ns
                .rates
                .iter()
                .enumerate()
                .map(|(i, &x)| x * (1.0 + 0.01 * (1.0 + i as f64)))
                .collect();
            let traj = newton::run(&fs, &start, n + 3).expect("newton");
            let steps = traj
                .steps_to_converge(1e-8)
                .map_or_else(|| "-".into(), |s| s.to_string());
            let resid = *traj.residuals.last().expect("residuals");
            t.row(vec![
                "FairShare".into(),
                n.into(),
                steps.into(),
                Cell::num_text(resid, format!("{resid:.3e}")),
            ]);

            // FIFO rows use the paper's identical-linear population (the
            // unstable case); heterogeneous log users can damp FIFO dynamics.
            let fifo = identical_linear_game(Box::new(Proportional::new()), n, gamma);
            let nf = fifo.solve_nash(&NashOptions::default()).expect("fifo nash");
            let start: Vec<f64> = nf.rates.iter().map(|&x| x + 1e-4).collect();
            let traj = newton::run(&fifo, &start, 6).expect("newton");
            let ratio = traj.residuals.last().expect("residuals") / traj.residuals[0].max(1e-300);
            let verdict = if traj.steps_to_converge(1e-8).is_some() {
                "converged"
            } else if traj.diverged(3.0) {
                "diverged"
            } else {
                "slow"
            };
            t.row(vec![
                "FIFO(linear)".into(),
                n.into(),
                verdict.into(),
                Cell::num_text(ratio, format!("{ratio:.1}x")),
            ]);
        }
        report.table(t);
        report.note("paper (Thm 7): FS relaxation matrix is nilpotent — convergence within");
        report.note("N synchronous Newton steps wherever rates are distinct (the C^2 region;");
        report.note("identical users sit exactly on the rate-tie manifold, where the");
        report.note("dynamics remain stable but finite-step convergence degrades to");
        report.note("geometric — see EXPERIMENTS.md).");
        report
    }
}
