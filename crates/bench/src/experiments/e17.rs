//! Experiment E17 — finite-N convergence to the mean field.
//!
//! The paper's analysis is stated for finite user sets; the large-N
//! engine solves the same game as `N → ∞`. This experiment (an extension
//! beyond the paper's own evaluation) quantifies the bridge: for a
//! 3-class log-utility population, the finite-`N` equilibrium rates must
//! converge on the continuum fixed point with monotonically shrinking
//! error across `N = 10^2..10^6` for every discipline. FIFO is also
//! checked against its closed-form continuum limit `R = A/(1+A)`.

use greednet_core::utility::{LogUtility, UtilityExt};
use greednet_largen::{solve_finite, solve_mean_field, ClassSpec, LargenDiscipline, SolveOptions};
use greednet_runtime::{Cell, ExpCtx, Experiment, RunReport, Table};

/// E17: finite-N equilibria converge on the mean field (extension).
pub struct E17LargeN;

fn classes() -> Vec<ClassSpec> {
    vec![
        ClassSpec::new(LogUtility::new(0.6, 1.0).boxed(), 1.0),
        ClassSpec::new(LogUtility::new(0.5, 1.0).boxed(), 1.0),
        ClassSpec::new(LogUtility::new(0.4, 1.0).boxed(), 1.0),
    ]
}

impl Experiment for E17LargeN {
    fn id(&self) -> &'static str {
        "e17"
    }

    fn title(&self) -> &'static str {
        "E17: finite-N equilibria converge on the mean field (extension)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        // At N = 10^6 the aggregate load is an f64 sum over a million
        // terms whose order shifts between sweeps; the resulting ~1e-11
        // best-response jitter sits above the default 1e-12 tolerance.
        // 1e-10 clears the floor and is still 4+ orders below the
        // smallest finite-N error being measured.
        let opts = SolveOptions {
            tol: 1e-10,
            ..SolveOptions::default()
        };

        report.section("(a) continuum fixed points, 3 log classes w = 0.6/0.5/0.4");
        let mf: Vec<_> = LargenDiscipline::ALL
            .iter()
            .map(|&disc| {
                (
                    disc,
                    solve_mean_field(disc, &classes(), &opts).expect("continuum solves"),
                )
            })
            .collect();
        let mut t = Table::new(&["discipline", "x0", "x1", "x2", "load", "steps"]);
        for (disc, sol) in &mf {
            t.row(vec![
                disc.name().into(),
                Cell::num_text(sol.x[0], format!("{:.9}", sol.x[0])),
                Cell::num_text(sol.x[1], format!("{:.9}", sol.x[1])),
                Cell::num_text(sol.x[2], format!("{:.9}", sol.x[2])),
                Cell::num_text(sol.load, format!("{:.9}", sol.load)),
                i64::from(sol.steps).into(),
            ]);
        }
        report.table(t);
        // FIFO + log has the closed form x_c = (w_c/γ)/(1+A), A = Σ m_c·w_c/γ.
        let a_sum = (0.6 + 0.5 + 0.4) / 3.0;
        let fifo_load = mf[0].1.load;
        report.metric(
            "fifo_closed_form_err",
            (fifo_load - a_sum / (1.0 + a_sum)).abs(),
        );

        report.section("(b) finite-N error vs the continuum, per discipline");
        let full = [100usize, 1_000, 10_000, 100_000, 1_000_000];
        let smoke_cap = if ctx.budget.scale < 1.0 {
            10_000
        } else {
            usize::MAX
        };
        let sizes: Vec<usize> = full.iter().copied().filter(|&n| n <= smoke_cap).collect();
        let mut t = Table::new(&["N", "err fifo", "err fs", "err sfq"]);
        let mut errs: Vec<Vec<f64>> = vec![Vec::new(); LargenDiscipline::ALL.len()];
        for &n in &sizes {
            let mut cells = vec![Cell::from(n)];
            for (d, (disc, cont)) in mf.iter().enumerate() {
                let fin = solve_finite(*disc, &classes(), n, ctx.stage_seed(2), ctx.threads, &opts)
                    .expect("finite solves");
                assert!(
                    fin.converged,
                    "{} at N={n}: residual {}",
                    disc.name(),
                    fin.residual
                );
                let err = fin
                    .class_x
                    .iter()
                    .zip(cont.x.iter())
                    .map(|(xf, xm)| (xf - xm).abs())
                    .fold(0.0f64, f64::max);
                errs[d].push(err);
                cells.push(Cell::num_text(err, format!("{err:.3e}")));
            }
            t.row(cells);
        }
        report.table(t);

        for (d, (disc, _)) in mf.iter().enumerate() {
            let monotone = errs[d].windows(2).all(|w| w[1] < w[0]);
            report.metric(
                format!("{}_monotone", disc.name()),
                f64::from(u8::from(monotone)),
            );
            report.metric(
                format!("{}_final_err", disc.name()),
                *errs[d].last().expect("at least one size"),
            );
        }
        report.note("the error is the max per-class |x_c(N) − x_c(∞)|; the apportionment");
        report.note("gives the first class the rounding remainder at every N, so the");
        report.note("class-fraction bias keeps one sign and the error decays like 1/N");
        report.note("instead of oscillating with the rounding");
        report
    }
}
