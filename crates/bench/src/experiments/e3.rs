//! Experiment E3 — Theorem 4: uniqueness of Nash equilibria.
//!
//! For each sampled profile, runs best-response iteration from many random
//! starting points (solved in parallel via `distinct_equilibria_par`) and
//! clusters the converged equilibria. Fair Share must always produce
//! exactly one cluster.

use crate::{DisciplineSet, ProfileSampler};
use greednet_core::game::{distinct_equilibria_par, Game, NashOptions};
use greednet_runtime::{ExpCtx, Experiment, RunReport, Table};

/// E3: uniqueness of Nash equilibria (Theorem 4).
pub struct E3Uniqueness;

impl Experiment for E3Uniqueness {
    fn id(&self) -> &'static str {
        "e3"
    }

    fn title(&self) -> &'static str {
        "E3: uniqueness of Nash equilibria (Theorem 4)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let profiles = ctx.budget.count(40);
        let starts_per = ctx.budget.count(12);
        let n = 3;
        report.note(format!(
            "{profiles} profiles x {starts_per} random starts each, N = {n}, cluster tol 1e-4"
        ));

        let mut t = Table::new(&[
            "discipline",
            "profiles",
            "multi-equilibria",
            "max #equilibria",
        ]);
        for (name, alloc) in DisciplineSet::standard().iter() {
            let mut sampler = ProfileSampler::new(ctx.stage_seed(1));
            let mut multi = 0usize;
            let mut max_count = 0usize;
            let mut solved = 0usize;
            for _ in 0..profiles {
                let users = sampler.profile(n);
                let starts: Vec<Vec<f64>> =
                    (0..starts_per).map(|_| sampler.rates(n, 0.85)).collect();
                let game = Game::from_boxed(alloc.clone_box(), users).expect("game");
                let eqs = match distinct_equilibria_par(
                    &game,
                    &starts,
                    &NashOptions::default(),
                    1e-4,
                    ctx.threads,
                ) {
                    Ok(e) if !e.is_empty() => e,
                    _ => continue,
                };
                solved += 1;
                max_count = max_count.max(eqs.len());
                if eqs.len() > 1 {
                    multi += 1;
                }
            }
            t.row(vec![
                name.into(),
                solved.into(),
                multi.into(),
                max_count.into(),
            ]);
        }
        report.table(t);
        report.note("paper (Thm 4): Fair Share always has a unique Nash equilibrium and is");
        report.note("the only MAC discipline guaranteeing it. (Best-response iteration can");
        report.note("only find equilibria it converges to; multiplicity counts are lower");
        report.note("bounds for the others.)");
        report
    }
}
