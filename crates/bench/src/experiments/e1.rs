//! Experiment E1 — Theorems 1 & 2: efficiency of Nash equilibria.
//!
//! (a) Identical users: the Fair Share Nash equilibrium coincides with the
//!     symmetric Pareto optimum; FIFO's does not, and the utility it
//!     leaves on the table grows with N (the congestion-game tragedy).
//! (b) Sampled heterogeneous profiles: no discipline gives Pareto Nash
//!     equilibria in general (Theorem 1); Fair Share achieves Pareto
//!     exactly when rates are equal (Theorem 2).

use crate::{identical_linear_game, ProfileSampler};
use greednet_core::game::{Game, NashOptions};
use greednet_core::pareto;
use greednet_core::utility::LinearUtility;
use greednet_queueing::{FairShare, Proportional};
use greednet_runtime::{det_mean, Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E1: efficiency of Nash equilibria (Theorems 1 & 2).
pub struct E1Efficiency;

impl Experiment for E1Efficiency {
    fn id(&self) -> &'static str {
        "e1"
    }

    fn title(&self) -> &'static str {
        "E1: efficiency of Nash equilibria (Theorems 1 & 2)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let sweep = ParallelSweep::new(ctx.threads);

        // (a) identical linear users, gamma = 0.25.
        let gamma = 0.25;
        report.section(format!("(a) N identical linear users, U = r - {gamma} c"));
        let populations = [2usize, 4, 8, 16];
        let rows = sweep.map(&populations, |_, &n| {
            let fifo = identical_linear_game(Box::new(Proportional::new()), n, gamma);
            let fs = identical_linear_game(Box::new(FairShare::new()), n, gamma);
            let opts = NashOptions::default();
            let nf = fifo.solve_nash(&opts).expect("fifo nash");
            let ns = fs.solve_nash(&opts).expect("fs nash");
            let u = LinearUtility::new(1.0, gamma);
            let (rp, cp) = pareto::symmetric_pareto(&u, n).expect("pareto");
            (n, nf.utilities[0], ns.utilities[0], rp - gamma * cp)
        });
        let mut t = Table::new(&[
            "N",
            "U@FIFO-Nash",
            "U@FS-Nash",
            "U@Pareto",
            "FIFO gap",
            "FS gap",
        ]);
        for (n, u_fifo, u_fs, u_pareto) in rows {
            let gap = |u: f64| 100.0 * (u_pareto - u) / u_pareto.abs();
            t.row(vec![
                n.into(),
                Cell::num(u_fifo),
                Cell::num(u_fs),
                Cell::num(u_pareto),
                Cell::num_text(gap(u_fifo), format!("{:.1}%", gap(u_fifo))),
                Cell::num_text(gap(u_fs), format!("{:.2}%", gap(u_fs))),
            ]);
        }
        report.table(t);
        report.note("paper: FS Nash = symmetric Pareto point (Thm 2); FIFO never Pareto.");

        // (b) heterogeneous profiles.
        let profiles = ctx.budget.count(60);
        report.section(format!(
            "(b) {profiles} sampled heterogeneous profiles (N = 3): Pareto FDC residual at Nash"
        ));
        let mut t = Table::new(&[
            "discipline",
            "Pareto Nash",
            "scaling-dominated",
            "mean |FDC resid|",
        ]);
        for (name, fifo) in [("FIFO", true), ("FairShare", false)] {
            // Both disciplines see the same sampled profiles (one sampler
            // stream, restarted), as in the original experiment.
            let mut sampler = ProfileSampler::new(ctx.stage_seed(2));
            let drawn: Vec<_> = (0..profiles).map(|_| sampler.profile(3)).collect();
            let outcomes = sweep.map(&drawn, |_, users| {
                let game = if fifo {
                    Game::new(Proportional::new(), users.clone()).expect("game")
                } else {
                    Game::new(FairShare::new(), users.clone()).expect("game")
                };
                let sol = match game.solve_nash(&NashOptions::default()) {
                    Ok(s) if s.converged && s.rates.iter().all(|&r| r > 1e-6) => s,
                    _ => return None,
                };
                let resid: f64 = pareto::fdc_residuals(&game, &sol.rates)
                    .iter()
                    .map(|r| r.abs())
                    .fold(0.0, f64::max);
                let dominated = pareto::scaling_improvement(&game, &sol.rates).is_some();
                Some((resid, dominated))
            });
            let solved: Vec<_> = outcomes.into_iter().flatten().collect();
            let pareto_count = solved.iter().filter(|(r, _)| *r < 1e-4).count();
            let dominated = solved.iter().filter(|(_, d)| *d).count();
            let mean_resid = det_mean(solved.iter().map(|(r, _)| *r));
            t.row(vec![
                name.into(),
                pareto_count.into(),
                dominated.into(),
                Cell::num_text(mean_resid, format!("{mean_resid:.4}")),
            ]);
        }
        report.table(t);
        report.note("paper (Thm 1): zero Pareto Nash equilibria for any MAC discipline on");
        report.note("heterogeneous profiles; FIFO equilibria are Pareto-dominated by a");
        report.note("uniform backoff (tragedy of the commons).");
        report
    }
}
