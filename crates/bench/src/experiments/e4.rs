//! Experiment E4 — Theorem 5: Stackelberg leadership.
//!
//! Sweeps N and congestion-aversion gamma for identical linear users and
//! reports the leader's utility premium from committing first (followers
//! re-equilibrate). Fair Share rows must be ~0.

use crate::identical_linear_game;
use greednet_core::stackelberg::{leader_advantage, StackelbergOptions};
use greednet_queueing::{FairShare, Proportional};
use greednet_runtime::{Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E4: Stackelberg leader advantage (Theorem 5).
pub struct E4Stackelberg;

impl Experiment for E4Stackelberg {
    fn id(&self) -> &'static str {
        "e4"
    }

    fn title(&self) -> &'static str {
        "E4: Stackelberg leader advantage (Theorem 5)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        report.note("identical linear users U = r - gamma*c; leader = user 0");

        let mut grid: Vec<(usize, f64)> = Vec::new();
        for &n in &[2usize, 3, 5] {
            for &gamma in &[0.1, 0.25, 0.5] {
                grid.push((n, gamma));
            }
        }
        let rows = ParallelSweep::new(ctx.threads).map(&grid, |_, &(n, gamma)| {
            let opts = StackelbergOptions::default();
            let fifo = identical_linear_game(Box::new(Proportional::new()), n, gamma);
            let fs = identical_linear_game(Box::new(FairShare::new()), n, gamma);
            let (sf, nf) = leader_advantage(&fifo, 0, &opts).expect("fifo stackelberg");
            let (ss, ns) = leader_advantage(&fs, 0, &opts).expect("fs stackelberg");
            (
                n,
                gamma,
                sf.leader_utility - nf.utilities[0],
                ss.leader_utility - ns.utilities[0],
                sf.leader_rate / nf.rates[0].max(1e-12),
                ss.leader_rate / ns.rates[0].max(1e-12),
            )
        });

        let mut t = Table::new(&[
            "N",
            "gamma",
            "FIFO adv.",
            "FS adv.",
            "FIFO r_L/r_N",
            "FS r_L/r_N",
        ]);
        let mut worst_fs_adv = 0.0f64;
        for (n, gamma, adv_f, adv_s, ratio_f, ratio_s) in rows {
            worst_fs_adv = worst_fs_adv.max(adv_s.abs());
            t.row(vec![
                n.into(),
                Cell::num_text(gamma, format!("{gamma}")),
                Cell::num_text(adv_f, format!("{adv_f:.6}")),
                Cell::num_text(adv_s, format!("{adv_s:.6}")),
                Cell::num_text(ratio_f, format!("{ratio_f:.3}")),
                Cell::num_text(ratio_s, format!("{ratio_s:.3}")),
            ]);
        }
        report.table(t);
        report.metric("worst_fs_advantage", worst_fs_adv);
        report.note("paper (Thm 5): every FS Nash equilibrium is a Stackelberg equilibrium,");
        report.note("so the FS advantage column must vanish; under FIFO leading pays and the");
        report.note("leader over-grabs (rate ratio > 1).");
        report
    }
}
