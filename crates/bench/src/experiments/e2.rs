//! Experiment E2 — Theorem 3: fairness as (unilateral) envy-freeness.
//!
//! Sweeps sampled heterogeneous profiles; at each discipline's Nash
//! equilibrium records the maximum envy, and also tests the stronger
//! *unilateral* property: a user at its own optimum must envy no one,
//! no matter what the others play.

use crate::{DisciplineSet, ProfileSampler};
use greednet_core::game::{Game, NashOptions};
use greednet_runtime::{Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E2: envy-freeness (Theorem 3).
pub struct E2Envy;

impl Experiment for E2Envy {
    fn id(&self) -> &'static str {
        "e2"
    }

    fn title(&self) -> &'static str {
        "E2: envy-freeness (Theorem 3)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let profiles = ctx.budget.count(80);
        let n = 3;
        report.note(format!(
            "{profiles} sampled heterogeneous profiles, N = {n}"
        ));

        let sweep = ParallelSweep::new(ctx.threads);
        let mut t = Table::new(&[
            "discipline",
            "envious Nash",
            "cases",
            "max envy",
            "unilateral envy",
            "max unilateral envy",
        ]);
        for (name, alloc) in DisciplineSet::standard().iter() {
            // Every discipline sees the same sampled cases.
            let mut sampler = ProfileSampler::new(ctx.stage_seed(1));
            let drawn: Vec<_> = (0..profiles)
                .map(|_| (sampler.profile(n), sampler.rates(n, 0.8)))
                .collect();
            let outcomes = sweep.map(&drawn, |_, (users, rates_bg)| {
                let game = Game::from_boxed(alloc.clone_box(), users.clone()).expect("game");
                // Nash envy.
                let nash_envy = match game.solve_nash(&NashOptions::default()) {
                    Ok(sol) if sol.converged => Some(game.max_envy(&sol.rates).expect("envy")),
                    _ => None,
                };
                // Unilateral envy: user 0 optimizes against arbitrary others.
                let mut rates = rates_bg.clone();
                let mut uni: Option<f64> = None;
                if let Ok(br) = game.best_response(&rates, 0, 128) {
                    rates[0] = br;
                    let c = game.allocation().congestion(&rates);
                    let own = game.users()[0].value(rates[0], c[0]);
                    for j in 1..n {
                        let e = game.users()[0].value(rates[j], c[j]) - own;
                        if e.is_finite() {
                            uni = Some(uni.map_or(e, |u: f64| u.max(e)));
                        }
                    }
                }
                (nash_envy, uni)
            });

            let mut envious = 0usize;
            let mut max_envy = f64::NEG_INFINITY;
            let mut unilateral_envy = 0usize;
            let mut max_uni = f64::NEG_INFINITY;
            let mut cases = 0usize;
            for (nash_envy, uni) in outcomes {
                if let Some(e) = nash_envy {
                    cases += 1;
                    max_envy = max_envy.max(e);
                    if e > 1e-6 {
                        envious += 1;
                    }
                }
                if let Some(e) = uni {
                    max_uni = max_uni.max(e);
                    if e > 1e-6 {
                        unilateral_envy += 1;
                    }
                }
            }
            t.row(vec![
                name.into(),
                envious.into(),
                cases.into(),
                Cell::num(max_envy),
                unilateral_envy.into(),
                Cell::num(max_uni),
            ]);
        }
        report.table(t);
        report.note("paper (Thm 3): Fair Share is unilaterally envy-free — and is the ONLY");
        report.note("MAC discipline with that property; expect zero envy rows only for it.");
        report
    }
}
