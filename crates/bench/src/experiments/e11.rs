//! Experiment E11 — §4.2.2: generalized hill climbing as candidate-set
//! elimination. Fair Share candidate sets collapse to the unique Nash
//! equilibrium; FIFO sets stay fat (no robust convergence guarantee).
//! The learning-automata replications run as a parallel batch.

use crate::DisciplineSet;
use greednet_core::game::{Game, NashOptions};
use greednet_core::utility::{BoxedUtility, LogUtility, UtilityExt};
use greednet_learning::automata::{run as automata_run, AutomataConfig};
use greednet_learning::elimination::{run as elimination_run, EliminationConfig};
use greednet_learning::hill::ExactEnv;
use greednet_queueing::FairShare;
use greednet_runtime::{Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E11: candidate-elimination dynamics (generalized hill climbing).
pub struct E11Elimination;

fn log_users() -> Vec<BoxedUtility> {
    vec![
        LogUtility::new(0.3, 1.0).boxed(),
        LogUtility::new(0.6, 1.0).boxed(),
        LogUtility::new(0.9, 1.0).boxed(),
    ]
}

impl Experiment for E11Elimination {
    fn id(&self) -> &'static str {
        "e11"
    }

    fn title(&self) -> &'static str {
        "E11: candidate-elimination dynamics (generalized hill climbing)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let users = log_users();
        let cfg = EliminationConfig {
            grid: 61,
            lo: 0.005,
            hi: 0.5,
            max_rounds: 120,
        };
        let step = (cfg.hi - cfg.lo) / (cfg.grid - 1) as f64;
        report.note(format!(
            "3 log users; {}-point candidate grids on [{}, {}] (step {:.4})",
            cfg.grid, cfg.lo, cfg.hi, step
        ));

        let disciplines = DisciplineSet::standard();
        let mut t = Table::new(&[
            "discipline",
            "rounds",
            "eliminated",
            "surviving widths",
            "collapsed",
        ]);
        for (name, alloc) in disciplines.iter() {
            let out = elimination_run(alloc, &users, &cfg).expect("elimination");
            let widths: Vec<String> = out.widths().iter().map(|w| format!("{w:.3}")).collect();
            t.row(vec![
                name.into(),
                out.rounds.into(),
                out.eliminated.into(),
                widths.join("/").into(),
                out.collapsed(3.0 * step).into(),
            ]);
            if name == "FairShare" {
                let game = Game::from_boxed(alloc.clone_box(), users.clone()).expect("game");
                let nash = game.solve_nash(&NashOptions::default()).expect("nash");
                let mids: Vec<String> = out.midpoints().iter().map(|m| format!("{m:.4}")).collect();
                let nr: Vec<String> = nash.rates.iter().map(|r| format!("{r:.4}")).collect();
                report.note(format!(
                    "FS survivors center on {} vs Nash {}",
                    mids.join("/"),
                    nr.join("/")
                ));
            }
        }
        report.table(t);
        report.note("paper (§4.2.2, Thm 5 via [8]): any combination of 'reasonable'");
        report.note("optimization procedures converges to the unique Nash equilibrium under");
        report.note("Fair Share — S^infinity is a point; no such guarantee elsewhere.");

        // A second instance of [8]: linear reward-inaction learning automata.
        let rounds = ctx.budget.count(20_000);
        let seeds_per = ctx.budget.count(3);
        report.section(format!(
            "learning automata (pursuit, {rounds} rounds, 21-point grids, {seeds_per} seeds)"
        ));
        let names = disciplines.names();
        let mut grid: Vec<(usize, u64)> = Vec::new();
        for d in 0..names.len() {
            for s in 0..seeds_per as u64 {
                grid.push((d, s));
            }
        }
        let rows = ParallelSweep::new(ctx.threads).map_seeded(
            ctx.stage_seed(100),
            &grid,
            |seed, &(d, _)| {
                let alloc = disciplines.get(names[d]).expect("discipline");
                let acfg = AutomataConfig {
                    seed,
                    rounds,
                    ..Default::default()
                };
                let mut env = ExactEnv::new(alloc.clone_box(), users.len());
                let out = automata_run(&users, &mut env, &acfg).expect("automata");
                let rates: Vec<String> = out.mean_rates.iter().map(|r| format!("{r:.3}")).collect();
                let conc = out.concentration.iter().sum::<f64>() / out.concentration.len() as f64;
                (d, rates.join("/"), conc)
            },
        );
        let mut t = Table::new(&["discipline", "mean rates (per user)", "mean concentration"]);
        for (d, rates, conc) in rows {
            t.row(vec![
                names[d].into(),
                rates.into(),
                Cell::num_text(conc, format!("{conc:.3}")),
            ]);
        }
        report.table(t);
        let game = Game::new(FairShare::new(), users.clone()).expect("game");
        let nash = game.solve_nash(&NashOptions::default()).expect("nash");
        let nr: Vec<String> = nash.rates.iter().map(|r| format!("{r:.3}")).collect();
        report.note(format!("(Fair Share Nash for reference: {})", nr.join("/")));
        report.note("automata — which see only their own sampled payoffs — settle on the");
        report.note("Fair Share equilibrium regardless of seed (Thm 5(1) via [8]); under the");
        report.note("other disciplines the same automata land somewhere different every run.");
        report
    }
}
