//! Experiment E18 — heavy-traffic scaling of the equilibrium slack.
//!
//! As congestion aversion `γ → 0` a greedy population drives the switch
//! toward capacity, and the service discipline sets *how fast*: the
//! equilibrium slack `1 − R` scales like `γ/w` under FIFO but only like
//! `sqrt(γ/w)` under the serial (Fair Share) allocation — the square-root
//! slowdown characteristic of diffusion-regime queueing analyses (cf.
//! the Wu–Bui–Johari heavy-traffic literature in PAPERS.md). This
//! experiment (an extension beyond the paper's own evaluation) fits both
//! exponents from the continuum fixed point and cross-checks the regime
//! at finite `N`.

use greednet_core::utility::{LogUtility, UtilityExt};
use greednet_largen::{solve_finite, solve_mean_field, ClassSpec, LargenDiscipline, SolveOptions};
use greednet_runtime::{Cell, ExpCtx, Experiment, RunReport, Table};

/// E18: heavy-traffic slack exponents per discipline (extension).
pub struct E18HeavyTraffic;

/// Least-squares slope of `ln(slack)` against `ln(γ)`.
fn log_log_slope(gammas: &[f64], slacks: &[f64]) -> f64 {
    let n = gammas.len() as f64;
    let xs: Vec<f64> = gammas.iter().map(|g| g.ln()).collect();
    let ys: Vec<f64> = slacks.iter().map(|s| s.ln()).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs
        .iter()
        .zip(ys.iter())
        .map(|(x, y)| (x - mx) * (y - my))
        .sum();
    let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

impl Experiment for E18HeavyTraffic {
    fn id(&self) -> &'static str {
        "e18"
    }

    fn title(&self) -> &'static str {
        "E18: heavy-traffic slack exponents per discipline (extension)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let w = 1.0;
        // Steep best-response slopes (~w/γ) put the meaningful residual
        // floor near 1e-11; 1e-9 is comfortably above it and far below
        // the slacks being measured.
        let opts = SolveOptions {
            tol: 1e-9,
            // γ = 1e-5 sits right at the default budget's edge (the
            // damping controller spends ~10 halvings finding the stable
            // band before converging); give heavy traffic headroom.
            max_sweeps: 2000,
            ..SolveOptions::default()
        };
        let full = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5];
        let gammas: &[f64] = if ctx.budget.scale < 1.0 {
            &full[..3]
        } else {
            &full
        };

        report.section("(a) continuum slack 1−R vs γ, single log class w = 1");
        let mut t = Table::new(&[
            "gamma",
            "fifo slack",
            "γ/w",
            "fs slack",
            "sqrt(γ/w)",
            "sfq slack",
        ]);
        let mut slacks: Vec<Vec<f64>> = vec![Vec::new(); LargenDiscipline::ALL.len()];
        for &gamma in gammas {
            let classes = vec![ClassSpec::new(LogUtility::new(w, gamma).boxed(), 1.0)];
            let mut cells = vec![Cell::num_text(gamma, format!("{gamma:.0e}"))];
            for (d, &disc) in LargenDiscipline::ALL.iter().enumerate() {
                let sol = solve_mean_field(disc, &classes, &opts).expect("continuum solves");
                assert!(
                    sol.converged,
                    "{} at γ={gamma}: residual {}",
                    disc.name(),
                    sol.residual
                );
                let slack = 1.0 - sol.load;
                slacks[d].push(slack);
                cells.push(Cell::num_text(slack, format!("{slack:.4e}")));
                match disc {
                    LargenDiscipline::Fifo => {
                        cells.push(Cell::num_text(gamma / w, format!("{:.4e}", gamma / w)));
                    }
                    LargenDiscipline::FairShare => {
                        let pred = (gamma / w).sqrt();
                        cells.push(Cell::num_text(pred, format!("{pred:.4e}")));
                    }
                    LargenDiscipline::Sfq => {}
                }
            }
            t.row(cells);
        }
        report.table(t);

        report.section("(b) fitted log-log exponents");
        let mut t = Table::new(&["discipline", "fitted exponent", "diffusion prediction"]);
        for (d, &disc) in LargenDiscipline::ALL.iter().enumerate() {
            let slope = log_log_slope(gammas, &slacks[d]);
            let pred = match disc {
                LargenDiscipline::Fifo => 1.0,
                // SFQ's β-shifted condition g'(R) = w/γ − β has the same
                // γ → 0 exponent as Fair Share.
                LargenDiscipline::FairShare | LargenDiscipline::Sfq => 0.5,
            };
            report.metric(format!("{}_exponent", disc.name()), slope);
            t.row(vec![
                disc.name().into(),
                Cell::num_text(slope, format!("{slope:.4}")),
                Cell::num_text(pred, format!("{pred:.1}")),
            ]);
        }
        report.table(t);

        report.section("(c) the regime survives at finite N (FIFO vs FS slack)");
        let sizes: &[usize] = if ctx.budget.scale < 1.0 {
            &[10_000]
        } else {
            &[10_000, 100_000]
        };
        let gamma = gammas[gammas.len() - 1];
        // The finite engine's aggregate load is an f64 sum over N terms
        // whose order shifts between sweeps; heavy traffic amplifies
        // that ~N·ε accumulation jitter by dBR/dR ~ w/γ into a
        // best-response noise floor near 1e-9 at γ = 1e-5. A residual
        // target of 1e-7 sits safely above the floor and still measures
        // the ~1e-5..1e-2 slacks of interest to ≲1%.
        let fin_opts = SolveOptions {
            tol: 1e-7,
            max_sweeps: 2000,
            ..SolveOptions::default()
        };
        let classes = vec![ClassSpec::new(LogUtility::new(w, gamma).boxed(), 1.0)];
        let mut t = Table::new(&["N", "fifo slack", "fs slack", "fs/fifo ratio"]);
        for &n in sizes {
            let fifo = solve_finite(
                LargenDiscipline::Fifo,
                &classes,
                n,
                ctx.stage_seed(3),
                ctx.threads,
                &fin_opts,
            )
            .expect("fifo finite solves");
            assert!(fifo.converged, "fifo at N={n}: residual {}", fifo.residual);
            let fs = solve_finite(
                LargenDiscipline::FairShare,
                &classes,
                n,
                ctx.stage_seed(3),
                ctx.threads,
                &fin_opts,
            )
            .expect("fs finite solves");
            assert!(fs.converged, "fs at N={n}: residual {}", fs.residual);
            let (sf, ss) = (1.0 - fifo.load, 1.0 - fs.load);
            t.row(vec![
                n.into(),
                Cell::num_text(sf, format!("{sf:.4e}")),
                Cell::num_text(ss, format!("{ss:.4e}")),
                Cell::num_text(ss / sf, format!("{:.1}", ss / sf)),
            ]);
        }
        report.table(t);
        report.note(format!(
            "at γ = {gamma:.0e} the serial allocation keeps ~sqrt(w/γ) times more"
        ));
        report.note("slack than FIFO: greedy users under FIFO bid the switch all the way");
        report.note("into the diffusion window, Fair Share stops them a square root short");
        report
    }
}
