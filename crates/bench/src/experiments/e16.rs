//! Experiment E16 — §5.2 with the feedback loop closed: FTP sources as
//! ACK-clocked AIMD flows (probing for bandwidth instead of declaring a
//! rate) against open-loop Telnet sources, with and without an ECN-style
//! marking threshold at the bottleneck, under FIFO vs Fair Queueing.
//!
//! The open-loop E10b grid shows what the *switch* does to a fixed load;
//! this closes the loop and shows what the switch's discipline does to
//! the *sources*: under FIFO without marking, AIMD windows grow to their
//! cap and the standing queue taxes every Telnet packet; marking tames
//! the queue but FIFO still mixes everyone into it; under FQ(SFQ) the
//! interactive sources are insulated either way, matching the paper's
//! claim that fair queueing provides protection without needing
//! cooperative sources.

use greednet_des::scenarios::{ClosedScenario, DisciplineKind};
use greednet_runtime::{Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E16: closed-loop AIMD transfers + ECN marking (§5.2, feedback).
pub struct E16ClosedLoop;

/// The (marking, discipline) grid: each cell runs one closed scenario.
const GRID: [(Option<usize>, DisciplineKind); 6] = [
    (None, DisciplineKind::Fifo),
    (None, DisciplineKind::Sfq),
    (None, DisciplineKind::FsTable),
    (Some(5), DisciplineKind::Fifo),
    (Some(5), DisciplineKind::Sfq),
    (Some(5), DisciplineKind::FsTable),
];

impl Experiment for E16ClosedLoop {
    fn id(&self) -> &'static str {
        "e16"
    }

    fn title(&self) -> &'static str {
        "E16: closed-loop AIMD transfers + ECN marking (§5.2, feedback)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let horizon = ctx.budget.horizon(40_000.0);
        report.note(format!(
            "2 AIMD FTP flows + 3 Telnet @0.02; horizon {horizon} per cell"
        ));

        let rows = ParallelSweep::new(ctx.threads).map_seeded(
            ctx.stage_seed(0),
            &GRID,
            |seed, &(marking, kind)| {
                let mut scenario = ClosedScenario::aimd_ftp_telnet(2, 3, 0.02);
                if let Some(th) = marking {
                    scenario = scenario.marking(th);
                }
                let r = scenario.run(kind, horizon, seed).expect("simulate");
                let ftp_flows: Vec<_> = r
                    .indices("ftp")
                    .iter()
                    .map(|&i| r.report.flows[i].clone())
                    .collect();
                let acked: u64 = ftp_flows.iter().map(|f| f.acked).sum();
                let marked: u64 = ftp_flows.iter().map(|f| f.marked).sum();
                let mark_frac = if acked == 0 {
                    0.0
                } else {
                    marked as f64 / acked as f64
                };
                let mean_cwnd =
                    ftp_flows.iter().map(|f| f.final_window).sum::<f64>() / ftp_flows.len() as f64;
                (
                    marking,
                    kind.label(),
                    r.throughput_of("ftp"),
                    r.mean_delay_of("telnet"),
                    r.report.result.total_mean_queue,
                    mean_cwnd,
                    mark_frac,
                )
            },
        );

        let mut t = Table::new(&[
            "marking",
            "discipline",
            "ftp throughput",
            "telnet delay",
            "total queue",
            "final cwnd",
            "mark frac",
        ]);
        for (marking, label, ftp, delay, queue, cwnd, marks) in rows {
            let mark_label = marking.map_or("off".to_string(), |th| format!("q>={th}"));
            t.row(vec![
                mark_label.into(),
                label.into(),
                Cell::num_text(ftp, format!("{ftp:.4}")),
                Cell::num_text(delay, format!("{delay:.3}")),
                Cell::num_text(queue, format!("{queue:.2}")),
                Cell::num_text(cwnd, format!("{cwnd:.2}")),
                Cell::num_text(marks, format!("{marks:.3}")),
            ]);
        }
        report.table(t);

        report.note("expected: without marking, FIFO lets the AIMD windows grow to the cap");
        report.note("and the standing queue inflates Telnet delay; ECN marking shrinks the");
        report.note("queue under FIFO; FQ insulates Telnet either way while the transfers");
        report.note("keep (fairly shared) bulk throughput — protection without cooperation.");
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greednet_runtime::{Budget, ExpCtx};

    #[test]
    fn e16_report_shape_and_directional_claims() {
        let ctx = ExpCtx::new(0xE16, 2).with_budget(Budget::smoke());
        let report = E16ClosedLoop.run(&ctx);
        let tables = report.tables();
        assert_eq!(tables.len(), 1);
        let t = tables[0];
        assert_eq!(t.rows().len(), GRID.len());
        // Pull (marking, discipline) -> telnet delay out of the table.
        let delay = |mark: &str, disc: &str| -> f64 {
            let row = t
                .rows()
                .iter()
                .find(|r| r[0].text() == mark && r[1].text() == disc)
                .expect("row");
            match row[3] {
                greednet_runtime::Cell::Num { value, .. } => value,
                ref other => panic!("expected numeric delay cell, got {other:?}"),
            }
        };
        // ECN marking tames the FIFO queue: telnet delay improves by a
        // lot (AIMD at the window cap vs AIMD held near the threshold).
        assert!(delay("q>=5", "FIFO") < 0.5 * delay("off", "FIFO"));
        // FQ insulates telnet even without marking.
        assert!(delay("off", "FQ(SFQ)") < 0.5 * delay("off", "FIFO"));
    }
}
