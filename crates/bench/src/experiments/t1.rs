//! Experiment T1 — reproduces **Table 1** of the paper: the priority-level
//! decomposition that realizes the Fair Share allocation, validated by a
//! parallel batch of packet-simulation replications.

use crate::experiments::{histogram_rows, mean_and_hw};
use greednet_des::{FsPriorityTable, MetricsProbe, SimConfig, SimMetrics, Simulator};
use greednet_queueing::fair_share::priority_table;
use greednet_queueing::{AllocationFunction, FairShare};
use greednet_runtime::{child_seed, Cell, ExpCtx, Experiment, Replications, RunReport, Table};

/// T1: Table 1 — priority queueing that implements Fair Share.
pub struct T1PriorityTable;

impl Experiment for T1PriorityTable {
    fn id(&self) -> &'static str {
        "t1"
    }

    fn title(&self) -> &'static str {
        "T1: Table 1 — priority queueing that implements Fair Share"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        // Four users, ascending rates, as in the paper's example table.
        let rates = [0.05, 0.10, 0.20, 0.30];
        report.note(format!("rates r = {rates:?} (ascending, as in the paper)"));
        report.note("(paper: user k sends r_1, r_2-r_1, ..., r_k-r_{k-1} into levels A..)");

        let table = priority_table(&rates);
        let mut t = Table::new(&["user", "A", "B", "C", "D"]).with_title("priority decomposition");
        for (u, row) in table.iter().enumerate() {
            let mut cells = vec![Cell::from(u + 1)];
            for &v in row {
                cells.push(if v > 0.0 {
                    Cell::num_text(v, format!("{v:.3}"))
                } else {
                    "-".into()
                });
            }
            t.row(cells);
        }
        report.table(t);

        report.section("packet validation (preemptive priority on these levels)");
        let reps = Replications::new(ctx.budget.count(8), ctx.stage_seed(1));
        let horizon = ctx.budget.horizon(120_000.0);
        report.note(format!(
            "{} replications of horizon {horizon} each",
            reps.count()
        ));
        let simulate = |seed: u64| {
            let cfg = SimConfig::builder(rates.to_vec())
                .horizon(horizon)
                .seed(seed)
                .build()
                .expect("valid config");
            let sim = Simulator::new(cfg).expect("simulator");
            let d = FsPriorityTable::new(&rates, child_seed(seed, 1)).expect("discipline");
            (sim, d)
        };
        // Telemetry runs probed: same estimates bitwise (the probe only
        // observes), with per-replication metrics merged in task order.
        let (runs, metrics) = if ctx.telemetry {
            let (out, pool) = reps.run_profiled(ctx.threads, |_, seed| {
                let (sim, mut d) = simulate(seed);
                let mut probe = MetricsProbe::new(rates.len());
                let r = sim.run_probed(&mut d, &mut probe).expect("simulate");
                ((r.mean_queue, r.events), probe.into_metrics())
            });
            report
                .telemetry_mut()
                .add_pool("replications:fs-table", pool);
            let mut merged = SimMetrics::new(rates.len());
            let mut data = Vec::with_capacity(out.len());
            for (rep, m) in out {
                merged.merge(&m);
                data.push(rep);
            }
            (data, Some(merged))
        } else {
            let data = reps.run(ctx.threads, |_, seed| {
                let (sim, mut d) = simulate(seed);
                let r = sim.run(&mut d).expect("simulate");
                (r.mean_queue, r.events)
            });
            (data, None)
        };
        let events: u64 = runs.iter().map(|(_, e)| e).sum();
        let expect = FairShare::new().congestion(&rates);

        let mut t = Table::new(&["user", "C^FS closed", "simulated", "rel.err", "CI (95%)"]);
        let mut worst = 0.0f64;
        for (u, &exp_u) in expect.iter().enumerate() {
            let samples: Vec<f64> = runs.iter().map(|(q, _)| q[u]).collect();
            let (mean, hw) = mean_and_hw(&samples);
            let rel = (mean - exp_u).abs() / exp_u;
            worst = worst.max(rel);
            t.row(vec![
                (u + 1).into(),
                Cell::num(exp_u),
                Cell::num(mean),
                Cell::num_text(rel, format!("{:.2}%", rel * 100.0)),
                Cell::num(hw),
            ]);
        }
        report.table(t);
        report.metric("worst_rel_err", worst);
        report.metric("events", events as f64);
        report.note(format!(
            "RESULT: priority table realizes C^FS within {:.2}% over {events} packet events.",
            worst * 100.0
        ));

        if let Some(m) = metrics {
            report.section("telemetry: log2 histograms (all replications merged)");
            let mut t = Table::new(&["histogram", "bucket", "count"]);
            for u in 0..rates.len() {
                histogram_rows(&mut t, &format!("delay user {}", u + 1), &m.delay[u]);
            }
            histogram_rows(&mut t, "occupancy@arrival", &m.occupancy);
            histogram_rows(&mut t, "busy period", &m.busy_periods);
            report.table(t);
            report.metric("telemetry_preemptions", m.preemptions.get() as f64);
            report.metric("telemetry_service_starts", m.service_starts.get() as f64);
            report.note("(histograms merge in task order: identical at any --threads.)");
        }
        report
    }
}
