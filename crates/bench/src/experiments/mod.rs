//! All 20 paper-reproduction experiments as [`Experiment`]
//! implementations, plus the central [`registry`].
//!
//! Each module ports one former ad-hoc binary to the structured
//! [`greednet_runtime::RunReport`] API: the computation is identical, but
//! output goes into tables/notes/metrics instead of `println!`, stochastic
//! stages derive their seeds from the [`greednet_runtime::ExpCtx`] root seed via
//! index-keyed splitting, and embarrassingly-parallel stages (replication
//! batches, profile sweeps, multi-start solves) run on the deterministic
//! thread pool — so `--threads N` never changes any number in the report.

use greednet_runtime::{Experiment, Registry};

pub mod e1;
pub mod e10a;
pub mod e10b;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod t1;

/// The central registry of every experiment, in reporting order
/// (T1, E1..E18).
#[must_use]
pub fn registry() -> Registry {
    let mut r = Registry::new();
    let all: Vec<Box<dyn Experiment>> = vec![
        Box::new(t1::T1PriorityTable),
        Box::new(e1::E1Efficiency),
        Box::new(e2::E2Envy),
        Box::new(e3::E3Uniqueness),
        Box::new(e4::E4Stackelberg),
        Box::new(e5::E5Revelation),
        Box::new(e6::E6Convergence),
        Box::new(e7::E7Protection),
        Box::new(e8::E8AltConstraint),
        Box::new(e9::E9DesValidation),
        Box::new(e10a::E10aDynamics),
        Box::new(e10b::E10bFtpTelnet),
        Box::new(e11::E11Elimination),
        Box::new(e12::E12Network),
        Box::new(e13::E13Mg1),
        Box::new(e14::E14Coalitions),
        Box::new(e15::E15BlendAblation),
        Box::new(e16::E16ClosedLoop),
        Box::new(e17::E17LargeN),
        Box::new(e18::E18HeavyTraffic),
    ];
    for e in all {
        r.register(e);
    }
    r
}

/// Appends one `[histogram, bucket, count]` row per non-empty bucket of
/// a telemetry histogram. Bucket bounds and counts are exact (integer
/// counts, power-of-two bounds), so these rows are part of the
/// deterministic report payload.
pub(crate) fn histogram_rows(
    t: &mut greednet_runtime::Table,
    label: &str,
    h: &greednet_telemetry::Log2Histogram,
) {
    for (lo, hi, n) in h.nonzero_buckets() {
        let bucket = if lo == 0.0 && hi == 0.0 {
            "0".to_string()
        } else {
            format!("[{lo:.4e}, {hi:.4e})")
        };
        t.row(vec![
            label.into(),
            bucket.into(),
            i64::try_from(n).unwrap_or(i64::MAX).into(),
        ]);
    }
}

/// Statistics of a batch of replication estimates: mean and the 95%
/// normal-approximation half-width across replications.
#[must_use]
pub(crate) fn mean_and_hw(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    if samples.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, f64::NAN);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use greednet_runtime::{Budget, ExpCtx};

    #[test]
    fn registry_has_all_twenty_unique_ids() {
        let reg = registry();
        assert_eq!(reg.len(), 20);
        let ids = reg.ids();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len(), "ids must be unique");
        for id in ["t1", "e1", "e9", "e10a", "e10b", "e15", "e16", "e17", "e18"] {
            assert!(reg.get(id).is_some(), "missing {id}");
        }
    }

    #[test]
    fn mean_and_hw_basics() {
        let (m, hw) = mean_and_hw(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!(hw > 0.0);
        assert!(mean_and_hw(&[]).0.is_nan());
    }

    #[test]
    fn smoke_budget_context_is_cheap() {
        let ctx = ExpCtx::new(1, 2).with_budget(Budget::smoke());
        assert!(ctx.budget.horizon(400_000.0) < 400_000.0);
        assert!(ctx.budget.count(60) >= 2);
    }
}
