//! Experiment E7 — Theorem 8: out-of-equilibrium protection.
//!
//! For each discipline, sweeps victim rates against adversarial opponents
//! and compares the worst observed congestion with the paper's bound
//! `r_i / (1 − N r_i)`.

use crate::DisciplineSet;
use greednet_core::protection::{adversarial_congestion, protection_bound, protection_sweep};
use greednet_runtime::{Cell, ExpCtx, Experiment, RunReport, Table};

/// E7: protection bounds (Theorem 8).
pub struct E7Protection;

impl Experiment for E7Protection {
    fn id(&self) -> &'static str {
        "e7"
    }

    fn title(&self) -> &'static str {
        "E7: protection bounds (Theorem 8)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let n = 4;
        let victims = [0.02, 0.05, 0.1, 0.15, 0.2, 0.24];
        let levels = [0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 0.95, 2.0, 10.0];
        report.note(format!(
            "N = {n}; victim rates {victims:?}; adversary levels up to 10x capacity"
        ));

        let disciplines = DisciplineSet::standard();
        let mut t = Table::new(&["discipline", "protective?", "worst ratio", "violations"]);
        for (name, alloc) in disciplines.iter() {
            let rep = protection_sweep(alloc, n, &victims, &levels);
            t.row(vec![
                name.into(),
                rep.protective().into(),
                Cell::num_text(rep.worst_ratio, format!("{:.4}", rep.worst_ratio)),
                rep.violations.len().into(),
            ]);
        }
        report.table(t);

        report.section(format!(
            "detail: victim at r = 0.1, single flooder at rate L (N = {n})"
        ));
        let mut t = Table::new(&["L", "FIFO c_i", "FS c_i", "SP c_i", "bound r/(1-Nr)"]);
        let bound = protection_bound(n, 0.1);
        for level in [0.2, 0.5, 0.85, 0.95, 2.0, 10.0] {
            let c: Vec<f64> = ["FIFO", "FairShare", "SerialPrio"]
                .iter()
                .map(|name| {
                    let alloc = disciplines.get(name).expect("standard discipline");
                    adversarial_congestion(alloc, n, 0.1, &[level])
                })
                .collect();
            t.row(vec![
                Cell::num_text(level, format!("{level}")),
                Cell::num_text(c[0], format!("{:.4}", c[0])),
                Cell::num_text(c[1], format!("{:.4}", c[1])),
                Cell::num_text(c[2], format!("{:.4}", c[2])),
                Cell::num_text(bound, format!("{bound:.4}")),
            ]);
        }
        report.table(t);
        report.note("paper (Thm 8): Fair Share respects the bound with equality in the worst");
        report.note("case (all peers at the victim's own rate) and is the only MAC");
        report.note("discipline that is protective; FIFO congestion diverges as the flooder");
        report.note("approaches capacity.");
        report
    }
}
