//! Experiment E9 — §3.1: closed-form allocation functions vs simulated
//! packets, for every discipline, with across-replication confidence
//! intervals. The replication batch is the workspace's flagship parallel
//! workload: each discipline runs `budget.count(16)` independent
//! replications whose seeds split off the root seed by index, so the
//! report is identical at any `--threads` setting.

use crate::experiments::{histogram_rows, mean_and_hw};
use greednet_des::scenarios::DisciplineKind;
use greednet_des::{MetricsProbe, SimConfig, SimMetrics, Simulator};
use greednet_queueing::{mm1, AllocationFunction, FairShare, Proportional, SerialPriority};
use greednet_runtime::{
    child_seed, Cell, ExpCtx, Experiment, PoolStats, Replications, RunReport, Table,
};

/// E9: packet-level validation of the allocation formulas (§3.1).
pub struct E9DesValidation;

/// Per-replication estimates: `(mean_queue, total_queue_dist)` pairs.
type BatchEstimates = Vec<(Vec<f64>, Vec<f64>)>;

/// Runs one discipline's replication batch. With `ctx.telemetry` the
/// simulations run probed: the per-replication estimates are bitwise
/// identical to the unprobed path (the probe only observes), and the
/// per-replication [`SimMetrics`] are merged in task order so the merged
/// histograms are thread-count independent too.
fn replicate(
    ctx: &ExpCtx,
    kind: DisciplineKind,
    rates: &[f64],
    horizon: f64,
    reps: usize,
    stage: u64,
) -> (BatchEstimates, Option<(SimMetrics, PoolStats)>) {
    let batch = Replications::new(reps, ctx.stage_seed(stage));
    let simulate = |seed: u64| {
        let cfg = SimConfig::builder(rates.to_vec())
            .horizon(horizon)
            .seed(seed)
            .build()
            .expect("valid config");
        let sim = Simulator::new(cfg).expect("simulator");
        let d = kind.build(rates, child_seed(seed, 1)).expect("discipline");
        (sim, d)
    };
    if ctx.telemetry {
        let (out, pool) = batch.run_profiled(ctx.threads, |_, seed| {
            let (sim, mut d) = simulate(seed);
            let mut probe = MetricsProbe::new(rates.len());
            let r = sim.run_probed(d.as_mut(), &mut probe).expect("simulate");
            ((r.mean_queue, r.total_queue_dist), probe.into_metrics())
        });
        let mut merged = SimMetrics::new(rates.len());
        let mut data = Vec::with_capacity(out.len());
        for (rep, metrics) in out {
            merged.merge(&metrics);
            data.push(rep);
        }
        (data, Some((merged, pool)))
    } else {
        let data = batch.run(ctx.threads, |_, seed| {
            let (sim, mut d) = simulate(seed);
            let r = sim.run(d.as_mut()).expect("simulate");
            (r.mean_queue, r.total_queue_dist)
        });
        (data, None)
    }
}

impl Experiment for E9DesValidation {
    fn id(&self) -> &'static str {
        "e9"
    }

    fn title(&self) -> &'static str {
        "E9: packet-level validation of the allocation formulas (§3.1)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let rates = vec![0.08, 0.22, 0.35];
        let horizon = ctx.budget.horizon(100_000.0);
        let reps = ctx.budget.count(16);
        let load: f64 = rates.iter().sum();
        report.note(format!(
            "rates {rates:?} (load {load:.2}), {reps} replications x horizon {horizon} per discipline"
        ));

        let closed: Vec<(DisciplineKind, Vec<f64>)> = vec![
            (DisciplineKind::Fifo, Proportional::new().congestion(&rates)),
            (
                DisciplineKind::LifoPreemptive,
                Proportional::new().congestion(&rates),
            ),
            (
                DisciplineKind::ProcessorSharing,
                Proportional::new().congestion(&rates),
            ),
            (
                DisciplineKind::SerialPriority,
                SerialPriority::new().congestion(&rates),
            ),
            (DisciplineKind::FsTable, FairShare::new().congestion(&rates)),
        ];

        let mut t = Table::new(&[
            "discipline",
            "user",
            "closed",
            "simulated",
            "rel.err",
            "CI half",
            "in CI?",
        ]);
        let mut worst = 0.0f64;
        let mut last_dists: Vec<Vec<f64>> = Vec::new();
        let mut fs_metrics: Option<SimMetrics> = None;
        for (stage, (kind, expect)) in closed.iter().enumerate() {
            let (runs, tele) = replicate(ctx, *kind, &rates, horizon, reps, stage as u64);
            if let Some((metrics, pool)) = tele {
                report
                    .telemetry_mut()
                    .add_pool(format!("replications:{}", kind.label()), pool);
                if *kind == DisciplineKind::FsTable {
                    fs_metrics = Some(metrics);
                }
            }
            for (u, &exp_u) in expect.iter().enumerate() {
                let samples: Vec<f64> = runs.iter().map(|(q, _)| q[u]).collect();
                let (mean, hw) = mean_and_hw(&samples);
                let rel = (mean - exp_u).abs() / exp_u;
                worst = worst.max(rel);
                t.row(vec![
                    kind.label().into(),
                    u.into(),
                    Cell::num(exp_u),
                    Cell::num(mean),
                    Cell::num_text(rel, format!("{:.2}%", rel * 100.0)),
                    Cell::num(hw),
                    ((mean - exp_u).abs() <= hw).into(),
                ]);
            }
            let total: f64 =
                runs.iter().map(|(q, _)| q.iter().sum::<f64>()).sum::<f64>() / runs.len() as f64;
            t.row(vec![
                kind.label().into(),
                "TOTAL".into(),
                Cell::num(mm1::g(load)),
                Cell::num(total),
                "(work conservation)".into(),
                "".into(),
                "".into(),
            ]);
            if *kind == DisciplineKind::FsTable {
                last_dists = runs.into_iter().map(|(_, d)| d).collect();
            }
        }
        report.table(t);
        report.metric("worst_rel_err", worst);
        report.note("SFQ has no closed form here (non-preemptive FQ approximation); its");
        report.note("work-conservation total is checked in the integration tests.");

        // Total-queue occupancy distribution: geometric for M/M/1 under any
        // non-anticipating work-conserving discipline.
        report.section(format!(
            "occupancy distribution P(N = k) vs the geometric law (load {load:.2})"
        ));
        let mut t = Table::new(&["k", "geometric", "simulated", "abs.err"]);
        for k in 0..8usize {
            let expect = (1.0 - load) * load.powi(i32::try_from(k).unwrap_or(i32::MAX));
            let got = last_dists.iter().filter_map(|d| d.get(k)).sum::<f64>()
                / last_dists.len().max(1) as f64;
            t.row(vec![
                k.into(),
                Cell::num(expect),
                Cell::num(got),
                Cell::num((got - expect).abs()),
            ]);
        }
        report.table(t);
        report.note("(run under the Fair Share table: total occupancy is discipline-");
        report.note("invariant for M/M/1, and matches (1-rho) rho^k.)");

        if let Some(m) = fs_metrics {
            report
                .section("telemetry: log2 histograms (Fair Share table, all replications merged)");
            let mut t = Table::new(&["histogram", "bucket", "count"]);
            for u in 0..rates.len() {
                histogram_rows(&mut t, &format!("delay user {u}"), &m.delay[u]);
            }
            histogram_rows(&mut t, "occupancy@arrival", &m.occupancy);
            histogram_rows(&mut t, "busy period", &m.busy_periods);
            report.table(t);
            let arrivals: u64 = m
                .arrivals
                .iter()
                .map(greednet_telemetry::Counter::get)
                .sum();
            report.metric("telemetry_arrivals", arrivals as f64);
            report.metric("telemetry_preemptions", m.preemptions.get() as f64);
            report.metric(
                "telemetry_delay_p50_user0",
                m.delay[0].quantile(0.5).unwrap_or(f64::NAN),
            );
            report.note("(histograms merge in task order: identical at any --threads.)");
        }
        report
    }
}
