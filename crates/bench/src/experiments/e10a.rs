//! Experiment E10(a) — §2.2/§4.2.2: hill climbing against noisy packet
//! measurements converges under Fair Share, struggles under FIFO. The
//! per-seed climbs run as a parallel replication batch.

use greednet_core::game::{Game, NashOptions};
use greednet_core::utility::{BoxedUtility, LinearUtility, UtilityExt};
use greednet_des::scenarios::DisciplineKind;
use greednet_learning::hill::{climb, HillConfig, Schedule, SimEnv};
use greednet_queueing::{FairShare, Proportional};
use greednet_runtime::{det_mean, Cell, ExpCtx, Experiment, Replications, RunReport, Table};

/// E10a: noisy self-optimization dynamics (§2.2, §4.2.2).
pub struct E10aDynamics;

impl Experiment for E10aDynamics {
    fn id(&self) -> &'static str {
        "e10a"
    }

    fn title(&self) -> &'static str {
        "E10a: noisy self-optimization dynamics (§2.2, §4.2.2)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let n = 3;
        let gamma = 0.45;
        let users = || -> Vec<BoxedUtility> {
            (0..n)
                .map(|_| LinearUtility::new(1.0, gamma).boxed())
                .collect()
        };
        let start = vec![0.03, 0.10, 0.20];
        let measurement = ctx.budget.horizon(6_000.0);
        let rounds = ctx.budget.count(40);
        let seeds_per = ctx.budget.count(5);
        report.note(format!(
            "{n} identical linear users (gamma = {gamma}), start {start:?}, \
             {rounds} rounds x {measurement} time-unit packet measurements, {seeds_per} seeds"
        ));

        let mut t = Table::new(&[
            "discipline",
            "replication",
            "final dist to Nash",
            "utility shortfall",
            "observations",
        ]);
        for (stage, (kind, game)) in [
            (
                DisciplineKind::FsTable,
                Game::new(FairShare::new(), users()).expect("game"),
            ),
            (
                DisciplineKind::Fifo,
                Game::new(Proportional::new(), users()).expect("game"),
            ),
        ]
        .into_iter()
        .enumerate()
        {
            let nash = game.solve_nash(&NashOptions::default()).expect("nash");
            let runs = Replications::new(seeds_per, ctx.stage_seed(stage as u64)).run(
                ctx.threads,
                |_, seed| {
                    let mut env = SimEnv::new(kind, n, measurement, seed);
                    let config = HillConfig {
                        rounds,
                        initial_step: 0.04,
                        min_step: 4e-3,
                        schedule: Schedule::Simultaneous, // the paper's synchronous model
                        ..Default::default()
                    };
                    let traj = climb(&users(), &mut env, &start, &config).expect("climb");
                    // Mean per-user shortfall in TRUE utility vs the Nash point.
                    let u_final = game.utilities_at(&traj.final_rates);
                    let shortfall: f64 = nash
                        .utilities
                        .iter()
                        .zip(&u_final)
                        .map(|(a, b)| a - b)
                        .sum::<f64>()
                        / n as f64;
                    (traj.distance_to(&nash.rates), shortfall, traj.observations)
                },
            );
            for (rep, (dist, shortfall, obs)) in runs.iter().enumerate() {
                t.row(vec![
                    kind.label().into(),
                    rep.into(),
                    Cell::num_text(*dist, format!("{dist:.4}")),
                    Cell::num(*shortfall),
                    (*obs).into(),
                ]);
            }
            let mean_dist = det_mean(runs.iter().map(|r| r.0));
            let mean_short = det_mean(runs.iter().map(|r| r.1));
            t.row(vec![
                kind.label().into(),
                "MEAN".into(),
                Cell::num_text(mean_dist, format!("{mean_dist:.4}")),
                Cell::num(mean_short),
                "".into(),
            ]);
            report.metric(
                if kind == DisciplineKind::FsTable {
                    "fs_mean_dist"
                } else {
                    "fifo_mean_dist"
                },
                mean_dist,
            );
        }
        report.table(t);
        report.note("paper (§2.2, §4.2.2): simple hill climbing suffices under Fair Share —");
        report.note("the insularity of C^FS keeps other users' probing out of your own");
        report.note("measurements. Under FIFO every probe perturbs everyone: at the same");
        report.note("measurement budget the climbers end farther from equilibrium with a");
        report.note("much larger utility shortfall (negative entries = users profiting at");
        report.note("others' expense while the system drifts).");
        report
    }
}
