//! Experiment E14 — footnote 14: coalitional manipulation.
//!
//! For each discipline and each sampled profile (solved in parallel),
//! sweeps all coalitions of size ≥ 2 and searches for a joint rate
//! deviation that strictly benefits every member. Fair Share equilibria
//! must be coalition-proof; FIFO equilibria are cartel-friendly.

use crate::{DisciplineSet, ProfileSampler};
use greednet_core::coalition::find_manipulating_coalition;
use greednet_core::game::{Game, NashOptions};
use greednet_runtime::{det_max, Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E14: coalitional manipulation of Nash equilibria (footnote 14).
pub struct E14Coalitions;

impl Experiment for E14Coalitions {
    fn id(&self) -> &'static str {
        "e14"
    }

    fn title(&self) -> &'static str {
        "E14: coalitional manipulation of Nash equilibria (footnote 14)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let profiles = ctx.budget.count(25);
        let n = 3;
        report.note(format!(
            "{profiles} sampled heterogeneous profiles, N = {n}, all coalitions of size 2..={n}"
        ));

        let sweep = ParallelSweep::new(ctx.threads);
        let mut t = Table::new(&[
            "discipline",
            "profiles",
            "manipulable",
            "max min-member gain",
        ]);
        for (name, alloc) in DisciplineSet::standard().iter() {
            let mut sampler = ProfileSampler::new(ctx.stage_seed(1));
            let drawn: Vec<_> = (0..profiles).map(|_| sampler.profile(n)).collect();
            let outcomes = sweep.map(&drawn, |_, users| {
                let game = Game::from_boxed(alloc.clone_box(), users.clone()).expect("game");
                let nash = match game.solve_nash(&NashOptions::default()) {
                    Ok(s) if s.converged => s,
                    _ => return None,
                };
                let gain = find_manipulating_coalition(&game, &nash.rates, n, 100)
                    .map(|dev| dev.gains.iter().fold(f64::INFINITY, |a, &b| a.min(b)));
                Some(gain)
            });
            let solved: Vec<_> = outcomes.into_iter().flatten().collect();
            let manipulable = solved.iter().filter(|g| g.is_some()).count();
            let worst_gain = det_max(solved.iter().flatten().copied()).max(0.0);
            t.row(vec![
                name.into(),
                solved.len().into(),
                manipulable.into(),
                Cell::num(worst_gain),
            ]);
        }
        report.table(t);
        report.note("paper (footnote 14, via Moulin-Shenker): all Fair Share Nash equilibria");
        report.note("are resilient against coalitions acting in concert; under FIFO any pair");
        report.note("can profit by jointly backing off (the cartel is the Pareto improvement");
        report.note("of E1 in miniature).");
        report
    }
}
