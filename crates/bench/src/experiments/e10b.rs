//! Experiment E10(b) — §5.2: the Fair Queueing claims on the FTP / Telnet
//! / blaster workload, at packet level; the scenario × discipline grid
//! runs in parallel.

use greednet_des::scenarios::{DisciplineKind, Scenario};
use greednet_runtime::{Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E10b: FTP/Telnet/blaster scenarios (§5.2).
pub struct E10bFtpTelnet;

impl Experiment for E10bFtpTelnet {
    fn id(&self) -> &'static str {
        "e10b"
    }

    fn title(&self) -> &'static str {
        "E10b: FTP/Telnet/blaster scenarios (§5.2)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let horizon = ctx.budget.horizon(60_000.0);
        report.note(format!("horizon {horizon} per (scenario, discipline) cell"));

        let kinds = [
            DisciplineKind::Fifo,
            DisciplineKind::ProcessorSharing,
            DisciplineKind::Sfq,
            DisciplineKind::FsTable,
        ];
        for (stage, (label, blaster)) in [
            ("2 FTP @0.30 + 3 Telnet @0.02", false),
            ("2 FTP @0.30 + 3 Telnet @0.02 + blaster @1.0", true),
        ]
        .into_iter()
        .enumerate()
        {
            let scenario = if blaster {
                Scenario::ftp_telnet(2, 0.30, 3, 0.02).with_blaster(1.0)
            } else {
                Scenario::ftp_telnet(2, 0.30, 3, 0.02)
            };
            report.section(format!("scenario: {label} (load {:.2})", scenario.load()));
            let rows = ParallelSweep::new(ctx.threads).map_seeded(
                ctx.stage_seed(stage as u64),
                &kinds,
                |seed, &kind| {
                    let r = scenario.run(kind, horizon, seed).expect("simulate");
                    (
                        kind.label(),
                        r.mean_delay_of("telnet"),
                        r.p99_delay_of("telnet"),
                        r.throughput_of("ftp"),
                        r.throughput_of("blaster"),
                        r.throughput_of("telnet"),
                    )
                },
            );
            let mut t = Table::new(&[
                "discipline",
                "telnet delay",
                "telnet p99",
                "ftp throughput",
                "blaster tput",
                "telnet tput",
            ]);
            for (label, delay, p99, ftp, blast, telnet) in rows {
                t.row(vec![
                    label.into(),
                    Cell::num_text(delay, format!("{delay:.3}")),
                    Cell::num_text(p99, format!("{p99:.3}")),
                    Cell::num_text(ftp, format!("{ftp:.4}")),
                    Cell::num_text(blast, format!("{blast:.4}")),
                    Cell::num_text(telnet, format!("{telnet:.4}")),
                ]);
            }
            report.table(t);
        }
        report.note("paper (§5.2): Fair-Share-family scheduling gives (1) fair throughput");
        report.note("allocation, (2) lower delay to sources using less than their share,");
        report.note("and (3) protection from ill-behaved sources, versus FIFO where the");
        report.note("blaster captures the switch and Telnet delay explodes.");
        report
    }
}
