//! Experiment E8 — Corollary 2: alternative constraint functions.
//!
//! Under the quadratic constraint `Σ c = Σ r²` with the separable
//! allocation `C_i = r_i²`, every Nash equilibrium is Pareto optimal; the
//! M/M/1 constraint admits no separable decomposition (its full mixed
//! partial is bounded away from zero), which is the root of Theorem 1.

use crate::ProfileSampler;
use greednet_mechanisms::constraints::{
    mixed_partial_defect, Mm1Constraint, QuadraticConstraint, SeparableAllocation,
};
use greednet_runtime::{Cell, ExpCtx, Experiment, RunReport, Table};

/// E8: alternative constraint functions (Corollary 2).
pub struct E8AltConstraint;

impl Experiment for E8AltConstraint {
    fn id(&self) -> &'static str {
        "e8"
    }

    fn title(&self) -> &'static str {
        "E8: alternative constraint functions (Corollary 2)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());

        report.section("(a) Pareto optimality of Nash under the quadratic constraint");
        let mut t = Table::new(&["profile", "max |Nash residual|", "max |Pareto residual|"]);
        let s = SeparableAllocation;
        let mut sampler = ProfileSampler::new(ctx.stage_seed(1));
        for p in 0..ctx.budget.count(6) {
            let users = sampler.profile(3);
            let nash = s.nash(&users).expect("separable nash");
            // Nash residual: users sit at their unconstrained optima, so the
            // Pareto residuals below double as the Nash FDC residuals.
            let res: f64 = s
                .pareto_residuals(&users, &nash)
                .iter()
                .map(|r| r.abs())
                .fold(0.0, f64::max);
            t.row(vec![
                p.into(),
                Cell::num_text(res, format!("{res:.2e}")),
                Cell::num_text(res, format!("{res:.2e}")),
            ]);
        }
        report.table(t);
        report.note("(identical columns: with C_i = r_i^2 the Nash FDC IS the Pareto FDC)");

        report.section("(b) separability obstruction: full mixed partial d^N f / dr_1..dr_N");
        let mut t = Table::new(&["N", "M/M/1 |d^N g(sum r)|", "quadratic |d^N sum r^2|"]);
        for n in [2usize, 3, 4] {
            let rates = vec![0.08; n];
            let mm1 = mixed_partial_defect(&Mm1Constraint, &rates, 0.01).abs();
            let quad = mixed_partial_defect(&QuadraticConstraint, &rates, 0.01).abs();
            t.row(vec![
                n.into(),
                Cell::num_text(mm1, format!("{mm1:.4}")),
                Cell::num_text(quad, format!("{quad:.2e}")),
            ]);
        }
        report.table(t);
        report.note("paper (Cor. 2 / Thm 1 proof): a constraint supports Pareto Nash via");
        report.note("C_i = f - h_i iff it decomposes with dh_i/dr_i = 0, which forces the");
        report.note("full mixed partial to vanish — true for sum-of-squares, false for M/M/1.");
        report
    }
}
