//! Experiment E5 — Theorem 6: the direct mechanism `B^FS` is a revelation
//! mechanism (truth-telling is optimal), while the same construction over
//! FIFO invites lying.

use greednet_core::utility::{BoxedUtility, LinearUtility, LogUtility, PowerUtility, UtilityExt};
use greednet_mechanisms::revelation::{max_misreport_gain, DirectMechanism};
use greednet_queueing::{FairShare, Proportional};
use greednet_runtime::{Cell, ExpCtx, Experiment, ParallelSweep, RunReport, Table};

/// E5: revelation mechanism `B^FS` (Theorem 6).
pub struct E5Revelation;

fn candidate_lies() -> Vec<BoxedUtility> {
    let mut v: Vec<BoxedUtility> = Vec::new();
    for w in [0.1, 0.25, 0.5, 1.0, 1.8, 3.0] {
        for g in [0.3, 0.8, 1.3, 2.2] {
            v.push(LogUtility::new(w, g).boxed());
        }
    }
    for a in [0.3, 0.5, 0.7] {
        v.push(PowerUtility::new(a, 1.0).boxed());
    }
    for g in [0.1, 0.3, 0.6] {
        v.push(LinearUtility::new(1.0, g).boxed());
    }
    v
}

impl Experiment for E5Revelation {
    fn id(&self) -> &'static str {
        "e5"
    }

    fn title(&self) -> &'static str {
        "E5: revelation mechanism B^FS (Theorem 6)"
    }

    fn run(&self, ctx: &ExpCtx) -> RunReport {
        let mut report = ctx.report(self.id(), self.title());
        let truths: Vec<(&str, Vec<BoxedUtility>)> = vec![
            (
                "3 log users",
                vec![
                    LogUtility::new(0.4, 1.0).boxed(),
                    LogUtility::new(0.8, 1.2).boxed(),
                    LogUtility::new(1.2, 0.8).boxed(),
                ],
            ),
            (
                "mixed families",
                vec![
                    LogUtility::new(0.5, 1.5).boxed(),
                    PowerUtility::new(0.5, 0.8).boxed(),
                    LinearUtility::new(1.0, 0.35).boxed(),
                ],
            ),
        ];
        let lies = candidate_lies();
        report.note(format!("{} candidate misreports per user", lies.len()));

        // One task per (profile, user) pair: each pair sweeps all lies
        // under both mechanisms.
        let mut cases: Vec<(usize, usize)> = Vec::new();
        for (p, (_, truth)) in truths.iter().enumerate() {
            for i in 0..truth.len() {
                cases.push((p, i));
            }
        }
        let rows = ParallelSweep::new(ctx.threads).map(&cases, |_, &(p, i)| {
            let fs = DirectMechanism::new(Box::new(FairShare::new()));
            let fifo = DirectMechanism::new(Box::new(Proportional::new()));
            let truth = &truths[p].1;
            let (g_fs, _) = max_misreport_gain(&fs, truth, i, &lies).expect("fs mechanism");
            let (g_fifo, _) = max_misreport_gain(&fifo, truth, i, &lies).expect("fifo mechanism");
            (p, i, g_fs, g_fifo)
        });

        let mut t = Table::new(&[
            "profile",
            "user",
            "B^FS best lie gain",
            "B^FIFO best lie gain",
        ]);
        let mut worst_fs_gain = 0.0f64;
        for (p, i, g_fs, g_fifo) in rows {
            worst_fs_gain = worst_fs_gain.max(g_fs);
            t.row(vec![
                truths[p].0.into(),
                i.into(),
                Cell::num_text(g_fs, format!("{g_fs:.6}")),
                Cell::num_text(g_fifo, format!("{g_fifo:.6}")),
            ]);
        }
        report.table(t);
        report.metric("worst_fs_lie_gain", worst_fs_gain);
        report.note("paper (Thm 6): under B^FS no misreport improves true utility (column");
        report.note("~0); B^FIFO is manipulable (strictly positive best-lie gains).");
        report
    }
}
