//! The finite-`N` engine: every one of `N` users best-responds to the
//! previous sweep's population in a damped Jacobi iteration.
//!
//! One sweep costs `O(N log N)` (a sort plus the sorted-prefix Φ
//! profile) and the `N` best responses are sharded across the
//! deterministic pool in fixed-size chunks. Chunk boundaries never
//! depend on the thread count and the pool merges chunk results in task
//! order, so the solution is **bitwise identical** at any `--threads`.

use crate::kernel::{best_response_finite, phi_sorted, PopView};
use crate::model::{apportion, validate, ClassSpec, LargenDiscipline, LargenError, SolveOptions};
use greednet_numerics::conv;
use greednet_runtime::{child_seed, parallel_map_indexed};
use greednet_telemetry::{NoopProbe, Probe, SolverEvent};

/// Fixed best-response chunk size. A constant (rather than `N/threads`)
/// keeps the work decomposition — and therefore every floating-point
/// reduction order — independent of the thread count.
const CHUNK: usize = 2048;

/// Default per-class initial scaled rate when `opts.init` is `None`.
const DEFAULT_INIT: f64 = 0.25;

/// Residual ratio above which a sweep counts as stalled.
const STALL_CONTRACTION: f64 = 0.97;

/// Consecutive stalled sweeps before the damping is adjusted.
const STALL_PATIENCE: u32 = 4;

/// Damping floor — deep enough for best-response slopes of order
/// `w/γ ~ 10^5` (the heavy-traffic regime of experiment E18).
const MIN_DAMPING: f64 = 1e-6;

/// A converged (or best-effort) finite-`N` equilibrium, reduced to
/// per-class summaries.
#[derive(Debug, Clone)]
pub struct FiniteSolution {
    /// Mean scaled rate `x = N·r` per class.
    pub class_x: Vec<f64>,
    /// Mean scaled congestion `Φ = N·C` per class (infinite if the
    /// class is drowned by an overloaded allocation).
    pub class_phi: Vec<f64>,
    /// Users apportioned to each class (sums to `n`).
    pub class_counts: Vec<u64>,
    /// Aggregate offered load `R = (1/N)·Σ x_i` at the final iterate.
    pub load: f64,
    /// Jacobi sweeps performed.
    pub sweeps: u32,
    /// Final max best-response deviation `max_i |BR_i − x_i|`.
    pub residual: f64,
    /// Whether `residual < opts.tol` within the sweep budget.
    pub converged: bool,
}

/// Solves the finite-`N` game without instrumentation.
///
/// # Errors
///
/// Returns [`LargenError`] when the classes/options fail validation or
/// `n == 0`.
pub fn solve_finite(
    disc: LargenDiscipline,
    classes: &[ClassSpec],
    n: usize,
    seed: u64,
    threads: usize,
    opts: &SolveOptions,
) -> Result<FiniteSolution, LargenError> {
    solve_finite_probed(disc, classes, n, seed, threads, opts, &mut NoopProbe)
}

/// [`solve_finite`] with a telemetry probe observing one
/// [`SolverEvent::MeanFieldSweep`] per Jacobi sweep.
///
/// # Errors
///
/// Returns [`LargenError`] when the classes/options fail validation or
/// `n == 0`.
#[allow(clippy::too_many_lines)]
pub fn solve_finite_probed<P: Probe>(
    disc: LargenDiscipline,
    classes: &[ClassSpec],
    n: usize,
    seed: u64,
    threads: usize,
    opts: &SolveOptions,
    probe: &mut P,
) -> Result<FiniteSolution, LargenError> {
    let weights = validate(classes, opts)?;
    if n == 0 {
        return Err(LargenError::ZeroUsers);
    }
    let counts = apportion(conv::index_to_u64(n), &weights);
    // Cumulative class ends: user i belongs to the first class whose end
    // exceeds i.
    let mut ends = Vec::with_capacity(counts.len());
    let mut acc = 0u64;
    for &c in &counts {
        acc += c;
        ends.push(acc);
    }
    let class_of = |i: usize| ends.partition_point(|&e| e <= conv::index_to_u64(i));

    let init: Vec<f64> = match &opts.init {
        Some(v) => v.clone(),
        None => vec![DEFAULT_INIT; classes.len()],
    };
    let inv_n = 1.0 / n as f64;
    // Jittered start: a per-user multiplicative perturbation from the
    // user's own seed stream, so convergence to a jitter-independent
    // fixed point is exercised on every run.
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let z = child_seed(seed, conv::index_to_u64(i));
            let u = (z >> 11) as f64 / (1u64 << 53) as f64;
            init[class_of(i)] * (1.0 + opts.jitter * (2.0 * u - 1.0))
        })
        .collect();

    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut sorted_x: Vec<f64> = Vec::with_capacity(n);
    let mut cum_mass: Vec<f64> = Vec::with_capacity(n + 1);
    let mut cum_load: Vec<f64> = Vec::with_capacity(n + 1);
    let mut phi_by_rank: Vec<f64> = Vec::with_capacity(n);
    let mut phi: Vec<f64> = vec![0.0; n];

    let chunks = n.div_ceil(CHUNK);
    let inner_tol = opts.tol * 1e-2;
    let self_mass = inv_n;
    let mut damping = opts.damping;
    let mut best_residual = f64::INFINITY;
    let mut stalls = 0u32;
    let mut flips = 0u32;
    let mut oks = 0u32;
    let mut prev_dir: Option<bool> = None;
    let mut sweeps = 0u32;
    let mut residual = f64::INFINITY;
    let mut converged = false;

    while sweeps < opts.max_sweeps {
        let pre_load = x.iter().sum::<f64>() * inv_n;
        if pre_load >= 1.0 {
            // Overload rescue (mirrors the continuum solver): a Jacobi
            // sweep where everyone chases a large best response at once
            // can overshoot capacity, where the congestion profiles go
            // infinite. Scale the profile back under capacity; it counts
            // as a sweep *and* as an oscillating stall, since the
            // overshoot is direct evidence the damping is too hot.
            let shrink = 0.9 / pre_load;
            for v in &mut x {
                *v *= shrink;
            }
            sweeps += 1;
            stalls += 1;
            flips += 1;
            oks = 0;
            if stalls >= STALL_PATIENCE {
                damping = (damping * 0.5).max(MIN_DAMPING);
                stalls = 0;
                flips = 0;
            }
            prev_dir = Some(false);
            if P::ENABLED {
                probe.on_solver(&SolverEvent::MeanFieldSweep {
                    sweep: u64::from(sweeps),
                    users: conv::index_to_u64(n),
                    residual: f64::INFINITY,
                    load: pre_load,
                });
            }
            continue;
        }

        // Population summary of the current iterate, in sorted order.
        order.clear();
        order.extend(0..n);
        order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
        sorted_x.clear();
        sorted_x.extend(order.iter().map(|&i| x[i]));
        cum_mass.clear();
        cum_load.clear();
        cum_mass.push(0.0);
        cum_load.push(0.0);
        for &v in &sorted_x {
            cum_mass.push(cum_mass[cum_mass.len() - 1] + inv_n);
            cum_load.push(cum_load[cum_load.len() - 1] + v * inv_n);
        }
        let total_load = cum_load[n];

        phi_sorted(
            disc,
            &sorted_x,
            &cum_mass,
            &cum_load,
            total_load,
            &mut phi_by_rank,
        );
        for (rank, &i) in order.iter().enumerate() {
            phi[i] = phi_by_rank[rank];
        }

        // Best responses, sharded in fixed chunks; results merge in
        // chunk order so the reduction below is thread-invariant.
        let br_chunks: Vec<Vec<f64>> = {
            let x = &x;
            let phi = &phi;
            let sorted_x = &sorted_x;
            let cum_mass = &cum_mass;
            let cum_load = &cum_load;
            parallel_map_indexed(threads, chunks, move |c| {
                let lo = c * CHUNK;
                let hi = (lo + CHUNK).min(n);
                let pop = PopView {
                    sorted_x,
                    cum_mass,
                    cum_load,
                    total_load,
                };
                (lo..hi)
                    .map(|i| {
                        best_response_finite(
                            disc,
                            &pop,
                            classes[class_of(i)].utility.as_ref(),
                            phi[i],
                            x[i],
                            self_mass,
                            inner_tol,
                        )
                    })
                    .collect()
            })
        };

        residual = 0.0;
        let mut drift = 0.0;
        let mut idx = 0usize;
        for chunk in &br_chunks {
            for &br in chunk {
                let dev = (br - x[idx]).abs();
                if dev > residual {
                    residual = dev;
                }
                drift += br - x[idx];
                x[idx] += damping * (br - x[idx]);
                idx += 1;
            }
        }
        sweeps += 1;

        if P::ENABLED {
            probe.on_solver(&SolverEvent::MeanFieldSweep {
                sweep: u64::from(sweeps),
                users: conv::index_to_u64(n),
                residual,
                load: total_load,
            });
        }

        if residual < opts.tol {
            converged = true;
            break;
        }
        // Stall-based damping control. A stall = failing to beat the best
        // residual so far by 3% (best-so-far, not previous-step: limit
        // cycles dip below their own previous step without progressing).
        // The *sign* of the aggregate drift Σ(BR_i − x_i) separates the
        // two ways to stall: oscillation/divergence flips it sweep to
        // sweep (damping too hot for the best-response slope → halve),
        // slow monotone creep keeps it (damping too cold, usually from
        // earlier halving → grow back toward the configured value).
        let dir = drift > 0.0;
        if residual > STALL_CONTRACTION * best_residual {
            stalls += 1;
            oks = 0;
            if prev_dir.is_some_and(|p| p != dir) {
                flips += 1;
            }
            if stalls >= STALL_PATIENCE {
                if flips * 2 >= stalls {
                    damping = (damping * 0.5).max(MIN_DAMPING);
                } else {
                    damping = (damping * 2.0).min(opts.damping);
                }
                stalls = 0;
                flips = 0;
            }
        } else {
            stalls = 0;
            flips = 0;
            // Upward probing: sustained progress at a previously-halved
            // damping means the stable band may sit higher — try it. An
            // overshoot just re-triggers the oscillation rule above, so
            // the controller hovers around the fastest stable damping
            // instead of crawling at the stall bar's contraction rate.
            oks += 1;
            if oks >= STALL_PATIENCE && damping < opts.damping {
                damping = (damping * 2.0).min(opts.damping);
                oks = 0;
            }
        }
        prev_dir = Some(dir);
        best_residual = best_residual.min(residual);
    }

    // Final per-class summaries at the last iterate (Φ recomputed so it
    // matches the reported rates, not the pre-update profile).
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
    sorted_x.clear();
    sorted_x.extend(order.iter().map(|&i| x[i]));
    cum_mass.clear();
    cum_load.clear();
    cum_mass.push(0.0);
    cum_load.push(0.0);
    for &v in &sorted_x {
        cum_mass.push(cum_mass[cum_mass.len() - 1] + inv_n);
        cum_load.push(cum_load[cum_load.len() - 1] + v * inv_n);
    }
    let load = cum_load[n];
    phi_sorted(
        disc,
        &sorted_x,
        &cum_mass,
        &cum_load,
        load,
        &mut phi_by_rank,
    );
    for (rank, &i) in order.iter().enumerate() {
        phi[i] = phi_by_rank[rank];
    }

    let k = classes.len();
    let mut class_x = vec![0.0; k];
    let mut class_phi = vec![0.0; k];
    for i in 0..n {
        let c = class_of(i);
        class_x[c] += x[i];
        class_phi[c] += phi[i];
    }
    for c in 0..k {
        if counts[c] > 0 {
            let m = counts[c] as f64;
            class_x[c] /= m;
            class_phi[c] /= m;
        }
    }

    Ok(FiniteSolution {
        class_x,
        class_phi,
        class_counts: counts,
        load,
        sweeps,
        residual,
        converged,
    })
}
