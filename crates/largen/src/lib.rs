//! # greednet-largen — large-`N` mean-field equilibrium engine
//!
//! Solves the switch-sharing game of the paper at populations far beyond
//! the dense-matrix Nash solver in `greednet-core`: `N = 10^4..10^6`
//! users in the finite engine, and the exact `N → ∞` continuum limit as
//! a `K`-class fixed point.
//!
//! Both solvers share one numeric kernel (see DESIGN.md §10 for the
//! formulation and the fixed-point contract):
//!
//! - **share-scale variables** `x = N·r`, `Φ = N·C`, aggregate load
//!   `R = (1/N)·Σ x_i`, so equilibria have a well-defined limit;
//! - a **sorted-prefix congestion profile** — Fair Share for the whole
//!   population in `O(N log N)` per sweep;
//! - a **safeguarded Newton best response** per user/class against the
//!   frozen previous iterate, damped Jacobi outside.
//!
//! The finite engine shards its `O(N)` best-response sweep across the
//! deterministic `greednet-runtime` pool in fixed-size chunks, so
//! results are bitwise identical at any thread count. Determinism is
//! enforced by `greednet-lint` (this crate is in its deterministic
//! scope).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod finite;
pub(crate) mod kernel;
pub mod meanfield;
pub mod model;

pub use finite::{solve_finite, solve_finite_probed, FiniteSolution};
pub use meanfield::{solve_mean_field, solve_mean_field_probed, MeanFieldSolution};
pub use model::{apportion, ClassSpec, LargenDiscipline, LargenError, SolveOptions, SFQ_BETA};
