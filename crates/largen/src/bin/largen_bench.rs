//! `largen-bench` — throughput baseline for the large-N engine.
//!
//! Solves a 3-class log-utility population with every discipline at the
//! requested `N` and reports users/sec per sweep plus
//! iterations-to-converge as `BENCH_largen.json` (compare against the
//! checked-in baseline at N = 10^6).

use greednet_core::utility::{LogUtility, UtilityExt};
use greednet_largen::{solve_finite, ClassSpec, LargenDiscipline, SolveOptions};
use greednet_runtime::{available_threads, BenchJson};
use std::time::Instant;

struct Args {
    n: usize,
    seed: u64,
    threads: usize,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 1_000_000,
        seed: 7,
        threads: available_threads(),
        out: Some("BENCH_largen.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--n" => {
                let v = it.next().ok_or("--n needs a value")?;
                args.n = v.parse().map_err(|e| format!("--n: {e}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?);
            }
            "--no-out" => args.out = None,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.n == 0 {
        return Err("--n must be > 0".to_string());
    }
    Ok(args)
}

fn classes() -> Vec<ClassSpec> {
    vec![
        ClassSpec::new(LogUtility::new(0.6, 1.0).boxed(), 1.0),
        ClassSpec::new(LogUtility::new(0.5, 1.0).boxed(), 1.0),
        ClassSpec::new(LogUtility::new(0.4, 1.0).boxed(), 1.0),
    ]
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("largen-bench: {e}");
            std::process::exit(2);
        }
    };

    let opts = SolveOptions::default();
    let mut json = BenchJson::new();
    json.uint("n", args.n as u64)
        .uint("seed", args.seed)
        .uint("threads", args.threads as u64);

    let mut disciplines = BenchJson::new();
    for disc in LargenDiscipline::ALL {
        let start = Instant::now();
        let sol = solve_finite(disc, &classes(), args.n, args.seed, args.threads, &opts)
            .unwrap_or_else(|e| panic!("{} solve failed: {e}", disc.name()));
        let elapsed = start.elapsed().as_secs_f64();
        let sweeps = f64::from(sol.sweeps);
        let users_per_sec_per_sweep = if elapsed > 0.0 {
            args.n as f64 * sweeps / elapsed
        } else {
            f64::INFINITY
        };
        eprintln!(
            "{}: {} sweeps, residual {:.3e}, load {:.6}, {:.3}s",
            disc.name(),
            sol.sweeps,
            sol.residual,
            sol.load,
            elapsed
        );
        let mut entry = BenchJson::new();
        entry
            .uint("sweeps", u64::from(sol.sweeps))
            .bool("converged", sol.converged)
            .fixed("load", sol.load, 6)
            .fixed("elapsed_s", elapsed, 3)
            .fixed("users_per_sec_per_sweep", users_per_sec_per_sweep, 0);
        disciplines.obj(disc.name(), entry);
    }
    json.obj("disciplines", disciplines);

    if let Err(e) = json.emit(args.out.as_deref()) {
        eprintln!("largen-bench: {e}");
        std::process::exit(1);
    }
}
