//! Shared model types for the large-N engine: disciplines, utility
//! classes, solver options, apportionment, and errors.
//!
//! # The share-scale formulation
//!
//! The engine works in *share-scale* variables. A user in a population of
//! `N` sends raw rate `r = x/N` and sees raw mean queue `C = Φ/N`; its
//! preferences are `U(x, Φ)` over the scaled pair (see
//! [`greednet_core::utility::ScaledUtility`] for the equivalent raw-rate
//! game). The aggregate offered load is `R = (1/N)·Σ x_i < 1`, and a
//! user's first-derivative condition becomes
//!
//! ```text
//! M(x_i, Φ_i) + dΦ_i/dx_i = 0        (M = U_x / U_Φ < 0)
//! ```
//!
//! because `dΦ/dx = dC/dr` — both numerator and denominator scale by `N`.
//! As `N → ∞` this converges to the continuum (mean-field) game in which
//! each of `K` utility classes with population fraction `w_c` plays one
//! scaled rate `x_c` against the aggregate; the finite-`N` engine and the
//! continuum fixed point share these types.

use greednet_core::utility::BoxedUtility;
use greednet_numerics::conv;
use std::fmt;

/// Packetization slack coefficient for the SFQ large-N model: SFQ is
/// modeled as Fair Share plus a per-unit-rate congestion surcharge
/// `β·x` reflecting the one-packet granularity by which Fair Queueing
/// trails the fluid serial allocation. This is a modeling choice with
/// its own well-defined mean-field limit (DESIGN.md §10), not a theorem
/// of the paper.
pub const SFQ_BETA: f64 = 0.5;

/// The service disciplines the large-N engine solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LargenDiscipline {
    /// FIFO — the proportional allocation `Φ_i = x_i/(1−R)`.
    Fifo,
    /// Fair Share — the serial (sorted-prefix) allocation.
    FairShare,
    /// Stochastic Fair Queueing — Fair Share plus packetization slack
    /// [`SFQ_BETA`]`·x`.
    Sfq,
}

impl LargenDiscipline {
    /// Parses a discipline name: `fifo`, `fs`/`fairshare`/`fair-share`,
    /// `sfq`/`fq`.
    #[must_use]
    pub fn parse(name: &str) -> Option<LargenDiscipline> {
        match name {
            "fifo" => Some(LargenDiscipline::Fifo),
            "fs" | "fairshare" | "fair-share" => Some(LargenDiscipline::FairShare),
            "sfq" | "fq" => Some(LargenDiscipline::Sfq),
            _ => None,
        }
    }

    /// Canonical short name (`fifo`, `fs`, `sfq`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LargenDiscipline::Fifo => "fifo",
            LargenDiscipline::FairShare => "fs",
            LargenDiscipline::Sfq => "sfq",
        }
    }

    /// All three disciplines, in canonical order.
    pub const ALL: [LargenDiscipline; 3] = [
        LargenDiscipline::Fifo,
        LargenDiscipline::FairShare,
        LargenDiscipline::Sfq,
    ];
}

/// One utility class: a shared (share-scale) utility and its population
/// fraction.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// The class utility, evaluated at share-scale `(x, Φ)`.
    pub utility: BoxedUtility,
    /// Population fraction `w_c > 0`. Fractions are normalized to sum to
    /// one by the solvers, so callers may pass any positive weights.
    pub weight: f64,
}

impl ClassSpec {
    /// Creates a class with the given utility and positive weight.
    #[must_use]
    pub fn new(utility: BoxedUtility, weight: f64) -> ClassSpec {
        ClassSpec { utility, weight }
    }
}

/// Options shared by the continuum and finite-`N` solvers.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Damping factor `d ∈ (0, 1]` of the outer Jacobi iteration:
    /// `x ← x + d·(BR(x) − x)`. Both solvers adapt it automatically
    /// when the residual stalls — halving (down to a `10^-6` floor)
    /// while the updates oscillate, growing back toward this configured
    /// ceiling while they creep monotonically. Steep best-response
    /// slopes (heavy traffic, large `w/γ`) need `d` far below any
    /// sensible fixed default.
    pub damping: f64,
    /// Convergence tolerance on the max best-response deviation
    /// `max_i |BR_i − x_i|` (share-scale units).
    pub tol: f64,
    /// Total sweep/step budget.
    pub max_sweeps: u32,
    /// Per-class initial scaled rates (defaults to 0.25 each).
    pub init: Option<Vec<f64>>,
    /// Relative amplitude of the per-user init jitter in the finite
    /// engine (exercises that the fixed point is independent of the
    /// starting point; the continuum solver ignores it).
    pub jitter: f64,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions {
            damping: 0.5,
            tol: 1e-12,
            max_sweeps: 500,
            init: None,
            jitter: 1e-3,
        }
    }
}

/// Errors from the large-N solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LargenError {
    /// The class list was empty.
    NoClasses,
    /// A class weight was non-finite or not positive.
    BadWeight {
        /// Offending class index.
        class: usize,
        /// The weight as given.
        weight: f64,
    },
    /// `opts.init` was present but its length differs from the class
    /// count, or an entry was non-finite/negative.
    BadInit(String),
    /// A solver option was out of range.
    BadOptions(String),
    /// The finite engine was asked for a population of zero users.
    ZeroUsers,
    /// A best response grew without bound (the utility rewards rate
    /// faster than the discipline ever charges for it).
    Unbounded {
        /// Class whose best response diverged.
        class: usize,
    },
}

impl fmt::Display for LargenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LargenError::NoClasses => write!(f, "need at least one utility class"),
            LargenError::BadWeight { class, weight } => {
                write!(f, "class {class} weight {weight} must be finite and > 0")
            }
            LargenError::BadInit(msg) => write!(f, "bad init: {msg}"),
            LargenError::BadOptions(msg) => write!(f, "bad options: {msg}"),
            LargenError::ZeroUsers => write!(f, "population must have at least one user"),
            LargenError::Unbounded { class } => {
                write!(f, "best response of class {class} is unbounded")
            }
        }
    }
}

impl std::error::Error for LargenError {}

/// Validates classes + options; returns the normalized weights.
pub(crate) fn validate(
    classes: &[ClassSpec],
    opts: &SolveOptions,
) -> Result<Vec<f64>, LargenError> {
    if classes.is_empty() {
        return Err(LargenError::NoClasses);
    }
    for (c, spec) in classes.iter().enumerate() {
        if !(spec.weight.is_finite() && spec.weight > 0.0) {
            return Err(LargenError::BadWeight {
                class: c,
                weight: spec.weight,
            });
        }
    }
    if !(opts.damping.is_finite() && opts.damping > 0.0 && opts.damping <= 1.0) {
        return Err(LargenError::BadOptions(format!(
            "damping {} must be in (0, 1]",
            opts.damping
        )));
    }
    if !(opts.tol.is_finite() && opts.tol > 0.0) {
        return Err(LargenError::BadOptions(format!(
            "tol {} must be finite and > 0",
            opts.tol
        )));
    }
    if opts.max_sweeps == 0 {
        return Err(LargenError::BadOptions("max_sweeps must be > 0".into()));
    }
    if !(opts.jitter.is_finite() && opts.jitter >= 0.0 && opts.jitter < 1.0) {
        return Err(LargenError::BadOptions(format!(
            "jitter {} must be in [0, 1)",
            opts.jitter
        )));
    }
    if let Some(init) = &opts.init {
        if init.len() != classes.len() {
            return Err(LargenError::BadInit(format!(
                "{} entries for {} classes",
                init.len(),
                classes.len()
            )));
        }
        for (c, &x) in init.iter().enumerate() {
            if !(x.is_finite() && x >= 0.0) {
                return Err(LargenError::BadInit(format!(
                    "class {c} init {x} must be finite and >= 0"
                )));
            }
        }
    }
    let total: f64 = classes.iter().map(|s| s.weight).sum();
    Ok(classes.iter().map(|s| s.weight / total).collect())
}

/// Splits a population of `n` users across classes by normalized weight:
/// `floor(w_c·n)` each, remainder distributed one user at a time to the
/// first classes in order.
///
/// The remainder rule is deliberate: for fixed weights the class-fraction
/// deviation from `w_c` keeps the same sign at every `n` (the first
/// classes are always the rounded-up ones), so the finite-`N` equilibrium
/// error decays monotonically in `n` instead of oscillating with the
/// rounding (experiment E17 depends on this).
#[must_use]
pub fn apportion(n: u64, weights: &[f64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let total: f64 = weights.iter().sum();
    let mut counts: Vec<u64> = weights
        .iter()
        .map(|&w| conv::f64_to_u64((w / total * n as f64).floor()))
        .collect();
    let assigned: u64 = counts.iter().sum();
    let remainder = n.saturating_sub(assigned);
    for k in 0..remainder {
        // More remainder slots than classes cannot happen (floor drops
        // < 1 user per class), but cycle defensively instead of indexing
        // out of bounds.
        let idx = conv::f64_to_usize(k as f64 % counts.len() as f64);
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use greednet_core::utility::{LogUtility, UtilityExt};

    #[test]
    fn parse_and_name_round_trip() {
        for d in LargenDiscipline::ALL {
            assert_eq!(LargenDiscipline::parse(d.name()), Some(d));
        }
        assert_eq!(
            LargenDiscipline::parse("fairshare"),
            Some(LargenDiscipline::FairShare)
        );
        assert_eq!(LargenDiscipline::parse("fq"), Some(LargenDiscipline::Sfq));
        assert_eq!(LargenDiscipline::parse("ps"), None);
    }

    #[test]
    fn apportion_floors_and_gives_remainder_to_first_classes() {
        // Thirds at n ≡ 1 (mod 3): first class takes the extra user.
        assert_eq!(apportion(100, &[1.0, 1.0, 1.0]), vec![34, 33, 33]);
        assert_eq!(apportion(10_000, &[1.0, 1.0, 1.0]), vec![3334, 3333, 3333]);
        // Exact splits stay exact.
        assert_eq!(apportion(90, &[1.0, 2.0]), vec![30, 60]);
        // Total is always preserved.
        for n in [1u64, 7, 97, 1000] {
            let counts = apportion(n, &[0.6, 0.5, 0.4]);
            assert_eq!(counts.iter().sum::<u64>(), n);
        }
    }

    #[test]
    fn validate_normalizes_weights_and_rejects_bad_input() {
        let classes = vec![
            ClassSpec::new(LogUtility::new(1.0, 1.0).boxed(), 2.0),
            ClassSpec::new(LogUtility::new(0.5, 1.0).boxed(), 2.0),
        ];
        let w = validate(&classes, &SolveOptions::default()).expect("valid");
        assert_eq!(w, vec![0.5, 0.5]);
        assert_eq!(
            validate(&[], &SolveOptions::default()),
            Err(LargenError::NoClasses)
        );
        let bad = vec![ClassSpec::new(LogUtility::new(1.0, 1.0).boxed(), 0.0)];
        assert!(matches!(
            validate(&bad, &SolveOptions::default()),
            Err(LargenError::BadWeight { class: 0, .. })
        ));
        let opts = SolveOptions {
            damping: 1.5,
            ..SolveOptions::default()
        };
        assert!(matches!(
            validate(&classes, &opts),
            Err(LargenError::BadOptions(_))
        ));
        let opts = SolveOptions {
            init: Some(vec![0.1]),
            ..SolveOptions::default()
        };
        assert!(matches!(
            validate(&classes, &opts),
            Err(LargenError::BadInit(_))
        ));
    }
}
