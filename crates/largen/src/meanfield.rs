//! The continuum (mean-field) fixed point: `K` utility classes, each a
//! mass `w_c` of identical users playing one scaled rate against the
//! aggregate.
//!
//! This is the `N → ∞` limit of the finite engine: the deviator has
//! measure zero (`self_mass = 0` in the shared kernel), so its deviation
//! moves no aggregate and its best response has no capacity cap. The
//! iteration is damped Jacobi with two safety valves: an overload rescue
//! (rescale the profile back under capacity) and bidirectional stall
//! control — halve the damping when the stalled updates oscillate, grow
//! it back when they creep monotonically — with a floor deep enough
//! (`10^-6`) to stabilize heavy-traffic best-response slopes of order
//! `w/γ` (experiment E18).

use crate::kernel::{best_response_continuum, phi_sorted, PopView};
use crate::model::{validate, ClassSpec, LargenDiscipline, LargenError, SolveOptions};
use greednet_numerics::conv;
use greednet_telemetry::{NoopProbe, Probe, SolverEvent};

/// Default per-class initial scaled rate when `opts.init` is `None`.
const DEFAULT_INIT: f64 = 0.25;

/// Residual ratio above which a step counts as stalled (overload
/// rescues always count).
const STALL_CONTRACTION: f64 = 0.97;

/// Consecutive stalled steps before the damping is adjusted.
const STALL_PATIENCE: u32 = 4;

/// Damping floor for the stall-based halving.
const MIN_DAMPING: f64 = 1e-6;

/// A continuum equilibrium profile.
#[derive(Debug, Clone)]
pub struct MeanFieldSolution {
    /// Scaled rate `x_c` per class.
    pub x: Vec<f64>,
    /// Scaled congestion `Φ_c` per class.
    pub phi: Vec<f64>,
    /// Aggregate offered load `R = Σ w_c·x_c`.
    pub load: f64,
    /// Fixed-point steps performed (across all damping attempts).
    pub steps: u32,
    /// Final max best-response deviation `max_c |BR_c − x_c|`.
    pub residual: f64,
    /// Whether `residual < opts.tol` within the attempt budget.
    pub converged: bool,
}

/// Solves the `K`-class mean-field game without instrumentation.
///
/// # Errors
///
/// Returns [`LargenError`] on invalid classes/options, or
/// [`LargenError::Unbounded`] when a class best response diverges (its
/// utility rewards rate faster than the discipline charges for it).
pub fn solve_mean_field(
    disc: LargenDiscipline,
    classes: &[ClassSpec],
    opts: &SolveOptions,
) -> Result<MeanFieldSolution, LargenError> {
    solve_mean_field_probed(disc, classes, opts, &mut NoopProbe)
}

/// [`solve_mean_field`] with a telemetry probe observing one
/// [`SolverEvent::FixedPointStep`] per iteration.
///
/// # Errors
///
/// Returns [`LargenError`] on invalid classes/options or an unbounded
/// class best response.
pub fn solve_mean_field_probed<P: Probe>(
    disc: LargenDiscipline,
    classes: &[ClassSpec],
    opts: &SolveOptions,
    probe: &mut P,
) -> Result<MeanFieldSolution, LargenError> {
    let weights = validate(classes, opts)?;
    let k = classes.len();
    let mut x: Vec<f64> = match &opts.init {
        Some(v) => v.clone(),
        None => vec![DEFAULT_INIT; k],
    };

    let mut order: Vec<usize> = Vec::with_capacity(k);
    let mut sorted_x: Vec<f64> = Vec::with_capacity(k);
    let mut cum_mass: Vec<f64> = Vec::with_capacity(k + 1);
    let mut cum_load: Vec<f64> = Vec::with_capacity(k + 1);
    let mut phi_by_rank: Vec<f64> = Vec::with_capacity(k);
    let mut phi: Vec<f64> = vec![0.0; k];
    let mut br: Vec<f64> = vec![0.0; k];

    let inner_tol = opts.tol * 1e-2;
    let mut damping = opts.damping;
    let mut best_residual = f64::INFINITY;
    let mut stalls = 0u32;
    let mut flips = 0u32;
    let mut oks = 0u32;
    let mut prev_dir: Option<bool> = None;
    let mut steps = 0u32;
    let mut residual = f64::INFINITY;
    let mut converged = false;

    while steps < opts.max_sweeps {
        let total_load: f64 = x.iter().zip(weights.iter()).map(|(&v, &w)| v * w).sum();
        if total_load >= 1.0 {
            // Overload rescue: scale the whole profile back under
            // capacity. It counts as a step *and* as a stall — an
            // overshoot past capacity is direct evidence the damping is
            // too aggressive for the local best-response slope.
            let shrink = 0.9 / total_load;
            for v in &mut x {
                *v *= shrink;
            }
            steps += 1;
            stalls += 1;
            flips += 1;
            oks = 0;
            if stalls >= STALL_PATIENCE {
                damping = (damping * 0.5).max(MIN_DAMPING);
                stalls = 0;
                flips = 0;
            }
            prev_dir = Some(false);
            if P::ENABLED {
                probe.on_solver(&SolverEvent::FixedPointStep {
                    step: u64::from(steps),
                    classes: conv::index_to_u64(k),
                    residual: f64::INFINITY,
                    load: total_load,
                });
            }
            continue;
        }

        order.clear();
        order.extend(0..k);
        order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
        sorted_x.clear();
        sorted_x.extend(order.iter().map(|&i| x[i]));
        cum_mass.clear();
        cum_load.clear();
        cum_mass.push(0.0);
        cum_load.push(0.0);
        for (rank, &i) in order.iter().enumerate() {
            cum_mass.push(cum_mass[rank] + weights[i]);
            cum_load.push(cum_load[rank] + sorted_x[rank] * weights[i]);
        }
        phi_sorted(
            disc,
            &sorted_x,
            &cum_mass,
            &cum_load,
            total_load,
            &mut phi_by_rank,
        );
        for (rank, &i) in order.iter().enumerate() {
            phi[i] = phi_by_rank[rank];
        }

        let pop = PopView {
            sorted_x: &sorted_x,
            cum_mass: &cum_mass,
            cum_load: &cum_load,
            total_load,
        };
        for c in 0..k {
            br[c] = best_response_continuum(
                disc,
                &pop,
                classes[c].utility.as_ref(),
                phi[c],
                x[c],
                inner_tol,
            )
            .ok_or(LargenError::Unbounded { class: c })?;
        }

        residual = 0.0;
        let mut drift = 0.0;
        for c in 0..k {
            let dev = (br[c] - x[c]).abs();
            if dev > residual {
                residual = dev;
            }
            drift += weights[c] * (br[c] - x[c]);
            x[c] += damping * (br[c] - x[c]);
        }
        steps += 1;
        if P::ENABLED {
            probe.on_solver(&SolverEvent::FixedPointStep {
                step: u64::from(steps),
                classes: conv::index_to_u64(k),
                residual,
                load: total_load,
            });
        }
        if residual < opts.tol {
            converged = true;
            break;
        }
        // Best-so-far comparison (not previous-step): limit cycles dip
        // below their own previous step without ever making progress.
        // The sign of the aggregate drift Σ w_c·(BR_c − x_c) separates
        // the two ways to stall: oscillation flips it step to step
        // (damping too hot → halve), monotone creep keeps it (damping
        // too cold, usually from earlier halving → grow back toward the
        // configured value).
        let dir = drift > 0.0;
        if residual > STALL_CONTRACTION * best_residual {
            stalls += 1;
            oks = 0;
            if prev_dir.is_some_and(|p| p != dir) {
                flips += 1;
            }
            if stalls >= STALL_PATIENCE {
                if flips * 2 >= stalls {
                    damping = (damping * 0.5).max(MIN_DAMPING);
                } else {
                    damping = (damping * 2.0).min(opts.damping);
                }
                stalls = 0;
                flips = 0;
            }
        } else {
            stalls = 0;
            flips = 0;
            // Upward probing: sustained progress at a previously-halved
            // damping means the stable band may sit higher — try it. An
            // overshoot just re-triggers the oscillation rule above, so
            // the controller hovers around the fastest stable damping
            // instead of crawling at the stall bar's contraction rate.
            oks += 1;
            if oks >= STALL_PATIENCE && damping < opts.damping {
                damping = (damping * 2.0).min(opts.damping);
                oks = 0;
            }
        }
        prev_dir = Some(dir);
        best_residual = best_residual.min(residual);
    }

    // Report Φ at the final profile so (x, Φ, load) are consistent.
    let total_load: f64 = x.iter().zip(weights.iter()).map(|(&v, &w)| v * w).sum();
    order.clear();
    order.extend(0..k);
    order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
    sorted_x.clear();
    sorted_x.extend(order.iter().map(|&i| x[i]));
    cum_mass.clear();
    cum_load.clear();
    cum_mass.push(0.0);
    cum_load.push(0.0);
    for (rank, &i) in order.iter().enumerate() {
        cum_mass.push(cum_mass[rank] + weights[i]);
        cum_load.push(cum_load[rank] + sorted_x[rank] * weights[i]);
    }
    phi_sorted(
        disc,
        &sorted_x,
        &cum_mass,
        &cum_load,
        total_load,
        &mut phi_by_rank,
    );
    for (rank, &i) in order.iter().enumerate() {
        phi[i] = phi_by_rank[rank];
    }

    Ok(MeanFieldSolution {
        x,
        phi,
        load: total_load,
        steps,
        residual,
        converged,
    })
}
