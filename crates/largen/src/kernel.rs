//! Shared numeric kernels: the deviator's congestion slope per
//! discipline, the population congestion profile, and the safeguarded
//! Newton/bisection inner solve.
//!
//! Both solvers summarize the opposing population the same way — scaled
//! rates sorted ascending with cumulative masses and mass-weighted loads
//! — so one kernel serves the finite-`N` engine (uniform masses `1/N`,
//! self-exclusion, capacity cap) and the continuum fixed point (class
//! masses `w_c`, measure-zero deviator) alike.

use crate::model::{LargenDiscipline, SFQ_BETA};
use greednet_core::utility::Utility;
use greednet_queueing::mm1::{g, g_double_prime, g_prime};

/// A borrowed view of the previous-iterate population in sorted order.
///
/// `cum_mass[k]` / `cum_load[k]` are the total mass and mass-weighted
/// scaled load of the first `k` sorted members (so index `n` holds the
/// totals); `total_load` is the aggregate offered load `R`.
pub(crate) struct PopView<'a> {
    pub sorted_x: &'a [f64],
    pub cum_mass: &'a [f64],
    pub cum_load: &'a [f64],
    pub total_load: f64,
}

impl PopView<'_> {
    /// Mass and load of members with scaled rate strictly below `x`.
    /// Strict inequality makes the serialized load tie-invariant: members
    /// tied with the deviator are clamped at `x` either way.
    fn below(&self, x: f64) -> (f64, f64) {
        let k = self.sorted_x.partition_point(|&v| v < x);
        (self.cum_mass[k], self.cum_load[k])
    }
}

/// First and second derivatives of the deviator's scaled congestion
/// `Φ(x)` when it plays `x` against the frozen population.
///
/// `self_mass` is the deviator's own population mass: `1/N` in the
/// finite engine (its deviation moves the aggregate, and its previous
/// rate `self_prev` must be excluded from the opposing population) and
/// `0` in the continuum (a measure-zero deviation leaves every aggregate
/// untouched, and the exclusion terms vanish identically).
// gn:hot
pub(crate) fn phi_slope(
    disc: LargenDiscipline,
    pop: &PopView<'_>,
    x: f64,
    self_prev: f64,
    self_mass: f64,
) -> (f64, f64) {
    match disc {
        LargenDiscipline::Fifo => {
            // Φ(x) = x/(1−R(x)) with R(x) = R_others + self_mass·x.
            let r = pop.total_load - self_mass * self_prev + self_mass * x;
            if r >= 1.0 {
                return (f64::INFINITY, f64::INFINITY);
            }
            let om = 1.0 - r;
            let d1 = 1.0 / om + self_mass * x / (om * om);
            let d2 = 2.0 * self_mass / (om * om) + 2.0 * self_mass * self_mass * x / (om * om * om);
            (d1, d2)
        }
        LargenDiscipline::FairShare | LargenDiscipline::Sfq => {
            // dΦ/dx = g'(s(x)) with the serialized load
            // s(x) = load_below + (1 − mass_below)·x  (everyone at or
            // above the deviator clamped down to x).
            let (mut mb, mut lb) = pop.below(x);
            if self_prev < x {
                mb -= self_mass;
                lb -= self_mass * self_prev;
            }
            let s = lb + (1.0 - mb) * x;
            let mut d1 = g_prime(s);
            let d2 = g_double_prime(s) * (1.0 - mb);
            if disc == LargenDiscipline::Sfq {
                d1 += SFQ_BETA;
            }
            (d1, d2)
        }
    }
}

/// Scaled congestion `Φ` of every population member, in sorted order.
///
/// Fair Share uses the serial recursion on mass-weighted serialized loads
/// `S_k = load_below(k) + W_k·x_(k)` (with `W_k` the mass at or above
/// member `k`): `Φ_(k) = Φ_(k-1) + (g(S_k) − g(S_{k-1})) / W_k` — the
/// mass-measure generalization of the sorted-prefix evaluation in
/// `greednet_queueing::fair_share`. Members whose serialized subsystem is
/// overloaded (`S_k ≥ 1`) get `+∞`, as do all heavier members.
// gn:hot(amortized)
pub(crate) fn phi_sorted(
    disc: LargenDiscipline,
    sorted_x: &[f64],
    cum_mass: &[f64],
    cum_load: &[f64],
    total_load: f64,
    out: &mut Vec<f64>,
) {
    let n = sorted_x.len();
    out.clear();
    match disc {
        LargenDiscipline::Fifo => {
            if total_load >= 1.0 {
                out.resize(n, f64::INFINITY);
            } else {
                let om = 1.0 - total_load;
                out.extend(sorted_x.iter().map(|&x| x / om));
            }
        }
        LargenDiscipline::FairShare | LargenDiscipline::Sfq => {
            let mut phi_prev = 0.0;
            let mut s_prev = 0.0;
            for k in 0..n {
                let w_rem = 1.0 - cum_mass[k];
                let s_k = cum_load[k] + w_rem * sorted_x[k];
                let phik = if s_k >= 1.0 {
                    f64::INFINITY
                } else {
                    phi_prev + (g(s_k) - g(s_prev)) / w_rem
                };
                out.push(phik);
                phi_prev = phik;
                s_prev = s_k;
                if phik.is_infinite() {
                    out.resize(n, f64::INFINITY);
                    break;
                }
            }
            if disc == LargenDiscipline::Sfq {
                for (p, &x) in out.iter_mut().zip(sorted_x.iter()) {
                    *p += SFQ_BETA * x;
                }
            }
        }
    }
}

/// Safeguarded Newton on an increasing function with a validated bracket
/// `F(lo) < 0 < F(hi)`: Newton proposals are accepted only inside the
/// shrinking bracket, otherwise the step falls back to bisection, so the
/// iteration is unconditionally convergent and fully deterministic.
// gn:hot
pub(crate) fn solve_increasing<F: Fn(f64) -> (f64, f64)>(
    eval: &F,
    mut lo: f64,
    mut hi: f64,
    x0: f64,
    tol: f64,
) -> f64 {
    let mut x = x0.clamp(lo, hi);
    for _ in 0..100 {
        let (f, fp) = eval(x);
        if f > 0.0 {
            hi = x;
        } else if f < 0.0 {
            lo = x;
        } else {
            return x;
        }
        let newton = x - f / fp;
        x = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if hi - lo <= tol * (1.0 + x.abs()) {
            return x;
        }
    }
    x
}

/// Smallest scaled rate a best response considers (below this the first
/// derivative condition is treated as cornered at zero).
const X_FLOOR: f64 = 1e-12;

/// The finite-`N` best response: the deviator (mass `1/N`) re-optimizes
/// its scaled rate against the frozen population, with its congestion
/// sensitivity `M` evaluated at the previous sweep's `Φ` (exact at the
/// fixed point). The response is capped at the residual capacity
/// `(1 − R_others)·N`, where both FIFO and the serial disciplines
/// saturate.
// gn:hot
pub(crate) fn best_response_finite(
    disc: LargenDiscipline,
    pop: &PopView<'_>,
    utility: &dyn Utility,
    phi_frozen: f64,
    self_prev: f64,
    self_mass: f64,
    tol: f64,
) -> f64 {
    let load_others = pop.total_load - self_mass * self_prev;
    let cap = (1.0 - load_others) / self_mass;
    if cap <= X_FLOOR {
        return 0.0;
    }
    let eval = |x: f64| {
        let (d1, d2) = phi_slope(disc, pop, x, self_prev, self_mass);
        (
            utility.marginal_ratio(x, phi_frozen) + d1,
            utility.dm_dr(x, phi_frozen) + d2,
        )
    };
    let hi = cap * (1.0 - 1e-9);
    let (f_lo, _) = eval(X_FLOOR);
    if f_lo >= 0.0 || f_lo.is_nan() {
        return 0.0;
    }
    let (f_hi, _) = eval(hi);
    if f_hi <= 0.0 {
        // Capacity-clamped: the damped outer iteration pulls the
        // aggregate back under control on the next sweep.
        return hi;
    }
    solve_increasing(&eval, X_FLOOR, hi, self_prev, tol)
}

/// The continuum best response: a measure-zero deviator re-optimizes
/// against the fixed aggregate. There is no capacity cap — the bracket
/// grows by doubling — so a utility that outruns the discipline's
/// marginal congestion forever yields `None` (an unbounded best
/// response, surfaced as an error by the fixed-point solver).
// gn:hot
pub(crate) fn best_response_continuum(
    disc: LargenDiscipline,
    pop: &PopView<'_>,
    utility: &dyn Utility,
    phi_frozen: f64,
    self_prev: f64,
    tol: f64,
) -> Option<f64> {
    let eval = |x: f64| {
        let (d1, d2) = phi_slope(disc, pop, x, self_prev, 0.0);
        (
            utility.marginal_ratio(x, phi_frozen) + d1,
            utility.dm_dr(x, phi_frozen) + d2,
        )
    };
    let (f_lo, _) = eval(X_FLOOR);
    if f_lo >= 0.0 || f_lo.is_nan() {
        return Some(0.0);
    }
    let mut hi = (2.0 * self_prev).max(1.0);
    let mut bracketed = false;
    for _ in 0..64 {
        let (f_hi, _) = eval(hi);
        if f_hi > 0.0 {
            bracketed = true;
            break;
        }
        hi *= 2.0;
    }
    if !bracketed {
        return None;
    }
    Some(solve_increasing(&eval, X_FLOOR, hi, self_prev, tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use greednet_core::utility::LogUtility;

    fn singleton_pop<'a>(
        sorted_x: &'a [f64],
        cum_mass: &'a [f64],
        cum_load: &'a [f64],
    ) -> PopView<'a> {
        PopView {
            sorted_x,
            cum_mass,
            cum_load,
            total_load: cum_load[cum_load.len() - 1],
        }
    }

    #[test]
    fn fifo_slope_matches_closed_form() {
        // Two continuum classes at x = 0.3, 0.4 with masses 0.5/0.5:
        // R = 0.35, dΦ/dx = 1/(1−R), d² = 0 for a measure-zero deviator.
        let sorted = [0.3, 0.4];
        let mass = [0.0, 0.5, 1.0];
        let load = [0.0, 0.15, 0.35];
        let pop = singleton_pop(&sorted, &mass, &load);
        let (d1, d2) = phi_slope(LargenDiscipline::Fifo, &pop, 0.7, 0.3, 0.0);
        assert!((d1 - 1.0 / 0.65).abs() < 1e-12);
        assert_eq!(d2, 0.0);
    }

    #[test]
    fn serial_slope_is_g_prime_of_clamped_load() {
        // Deviator at x between the two classes: s = w1·x1 + (1−w1)·x.
        let sorted = [0.2, 0.6];
        let mass = [0.0, 0.5, 1.0];
        let load = [0.0, 0.1, 0.4];
        let pop = singleton_pop(&sorted, &mass, &load);
        let x = 0.4;
        let s = 0.1 + 0.5 * x;
        let (d1, _) = phi_slope(LargenDiscipline::FairShare, &pop, x, 0.6, 0.0);
        assert!((d1 - g_prime(s)).abs() < 1e-12);
        // SFQ adds the packetization slack.
        let (d1_sfq, _) = phi_slope(LargenDiscipline::Sfq, &pop, x, 0.6, 0.0);
        assert!((d1_sfq - (g_prime(s) + SFQ_BETA)).abs() < 1e-12);
    }

    #[test]
    fn phi_sorted_matches_queueing_fair_share_at_uniform_mass() {
        // Uniform masses 1/n reduce the mass recursion to the per-user
        // serial recursion: Φ_i must equal n·C_i from the queueing crate.
        use greednet_queueing::{AllocationFunction, FairShare};
        let x = [0.9, 0.3, 0.6, 0.3];
        let n = x.len();
        let nf = n as f64;
        let rates: Vec<f64> = x.iter().map(|&v| v / nf).collect();
        let c = FairShare::new().congestion(&rates);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
        let sorted: Vec<f64> = order.iter().map(|&i| x[i]).collect();
        let mut cum_mass = vec![0.0];
        let mut cum_load = vec![0.0];
        for &v in &sorted {
            cum_mass.push(cum_mass[cum_mass.len() - 1] + 1.0 / nf);
            cum_load.push(cum_load[cum_load.len() - 1] + v / nf);
        }
        let total = cum_load[n];
        let mut phi = Vec::new();
        phi_sorted(
            LargenDiscipline::FairShare,
            &sorted,
            &cum_mass,
            &cum_load,
            total,
            &mut phi,
        );
        for (k, &i) in order.iter().enumerate() {
            assert!(
                (phi[k] - nf * c[i]).abs() < 1e-9,
                "user {i}: {} vs {}",
                phi[k],
                nf * c[i]
            );
        }
    }

    #[test]
    fn solve_increasing_finds_the_root() {
        // F(x) = x² − 2 on [0, 4]: root √2, derivative 2x.
        let eval = |x: f64| (x * x - 2.0, 2.0 * x);
        let root = solve_increasing(&eval, 0.0, 4.0, 3.5, 1e-14);
        assert!((root - 2.0f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn continuum_fifo_log_best_response_is_closed_form() {
        // −w/(γx) + 1/(1−R) = 0  ⇒  x* = (w/γ)(1−R).
        let u = LogUtility::new(0.8, 1.0);
        let sorted = [0.5];
        let mass = [0.0, 1.0];
        let load = [0.0, 0.5];
        let pop = singleton_pop(&sorted, &mass, &load);
        let x = best_response_continuum(LargenDiscipline::Fifo, &pop, &u, 1.0, 0.5, 1e-14)
            .expect("bounded");
        assert!((x - 0.8 * 0.5).abs() < 1e-10, "{x}");
    }
}
