//! The finite engine's contract with the deterministic pool: the solved
//! equilibrium is **bitwise identical** at any `--threads`, because the
//! chunk decomposition is fixed and results merge in task order. Checked
//! at an `N` spanning several chunks (and not a multiple of the chunk
//! size) for every discipline.

use greednet_core::utility::{LogUtility, UtilityExt};
use greednet_largen::{solve_finite, ClassSpec, LargenDiscipline, SolveOptions};

fn classes() -> Vec<ClassSpec> {
    vec![
        ClassSpec::new(LogUtility::new(0.6, 1.0).boxed(), 1.0),
        ClassSpec::new(LogUtility::new(0.5, 1.0).boxed(), 1.0),
        ClassSpec::new(LogUtility::new(0.4, 1.0).boxed(), 1.0),
    ]
}

#[test]
fn mean_field_sweep_is_bitwise_identical_across_thread_counts() {
    // 3001 users: two full 2048-chunks minus a remainder — the chunk
    // boundary at 2048 falls inside the population.
    let n = 3_001;
    for disc in LargenDiscipline::ALL {
        let base = solve_finite(disc, &classes(), n, 7, 1, &SolveOptions::default())
            .expect("single-thread solve");
        assert!(
            base.converged,
            "{}: residual {}",
            disc.name(),
            base.residual
        );
        for threads in [4usize, 8] {
            let sol = solve_finite(disc, &classes(), n, 7, threads, &SolveOptions::default())
                .expect("multi-thread solve");
            assert_eq!(base.sweeps, sol.sweeps, "{} sweeps", disc.name());
            assert_eq!(
                base.residual.to_bits(),
                sol.residual.to_bits(),
                "{} residual at {threads} threads",
                disc.name()
            );
            assert_eq!(
                base.load.to_bits(),
                sol.load.to_bits(),
                "{} load at {threads} threads",
                disc.name()
            );
            for (c, (a, b)) in base.class_x.iter().zip(sol.class_x.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} class {c} rate at {threads} threads: {a} vs {b}",
                    disc.name()
                );
            }
            for (c, (a, b)) in base.class_phi.iter().zip(sol.class_phi.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} class {c} phi at {threads} threads",
                    disc.name()
                );
            }
        }
    }
}
