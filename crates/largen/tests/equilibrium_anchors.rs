//! Equilibrium anchors for the large-N engine: closed-form continuum
//! fixed points, finite-`N` agreement with the dense `greednet-core`
//! Nash solver on the *same* game (via [`ScaledUtility`]), and
//! independence of the converged point from the init jitter seed.

use greednet_core::utility::{LinearUtility, LogUtility, ScaledUtility, UtilityExt};
use greednet_core::{Game, NashOptions};
use greednet_largen::{
    solve_finite, solve_mean_field, ClassSpec, LargenDiscipline, LargenError, SolveOptions,
    SFQ_BETA,
};
use greednet_queueing::FairShare;

/// FIFO + log utilities, K classes: the first-derivative condition
/// `−w_c/(γ_c·x_c) + 1/(1−R) = 0` gives `x_c = (w_c/γ_c)(1−R)`, so with
/// `A = Σ m_c·w_c/γ_c` the aggregate is `R = A/(1+A)` in closed form.
#[test]
fn continuum_fifo_log_matches_closed_form() {
    let specs = [(0.6, 1.0, 0.2), (0.5, 2.0, 0.3), (0.4, 0.5, 0.5)];
    let classes: Vec<ClassSpec> = specs
        .iter()
        .map(|&(w, g, m)| ClassSpec::new(LogUtility::new(w, g).boxed(), m))
        .collect();
    let a: f64 = specs.iter().map(|&(w, g, m)| m * w / g).sum();
    let sol = solve_mean_field(LargenDiscipline::Fifo, &classes, &SolveOptions::default())
        .expect("solves");
    assert!(sol.converged, "residual {}", sol.residual);
    assert!(
        (sol.load - a / (1.0 + a)).abs() < 1e-9,
        "load {} vs {}",
        sol.load,
        a / (1.0 + a)
    );
    for (c, &(w, g, _)) in specs.iter().enumerate() {
        let expect = (w / g) / (1.0 + a);
        assert!(
            (sol.x[c] - expect).abs() < 1e-9,
            "class {c}: {} vs {expect}",
            sol.x[c]
        );
        // Φ_c must satisfy the FIFO profile at the fixed point.
        let phi = sol.x[c] / (1.0 - sol.load);
        assert!((sol.phi[c] - phi).abs() < 1e-9);
    }
}

/// Fair Share + symmetric linear utility `a·x − γ·Φ`: the serial slope
/// at a symmetric profile is `g'(R)`, so `1 − R* = sqrt(γ/a)`. The init
/// starts *above* the equilibrium load because a linear `M` makes the
/// continuum best response bang-bang from below (`F` is constant in `x`
/// above the symmetric point).
#[test]
fn continuum_fair_share_linear_matches_sqrt_slack() {
    let classes = vec![ClassSpec::new(LinearUtility::new(4.0, 1.0).boxed(), 1.0)];
    let opts = SolveOptions {
        init: Some(vec![0.6]),
        ..SolveOptions::default()
    };
    let sol = solve_mean_field(LargenDiscipline::FairShare, &classes, &opts).expect("solves");
    assert!(sol.converged, "residual {}", sol.residual);
    let slack = (1.0f64 / 4.0).sqrt();
    assert!(
        (sol.load - (1.0 - slack)).abs() < 1e-9,
        "load {} vs {}",
        sol.load,
        1.0 - slack
    );
}

/// SFQ shifts the serial first-order condition by the packetization
/// slack: `g'(R*) = a/γ − β`, i.e. `1 − R* = 1/sqrt(a/γ − β)`.
#[test]
fn continuum_sfq_linear_shifts_by_beta() {
    let classes = vec![ClassSpec::new(LinearUtility::new(4.0, 1.0).boxed(), 1.0)];
    let opts = SolveOptions {
        init: Some(vec![0.6]),
        ..SolveOptions::default()
    };
    let sol = solve_mean_field(LargenDiscipline::Sfq, &classes, &opts).expect("solves");
    assert!(sol.converged, "residual {}", sol.residual);
    let slack = 1.0 / (4.0 - SFQ_BETA).sqrt();
    assert!(
        (sol.load - (1.0 - slack)).abs() < 1e-9,
        "load {} vs {}",
        sol.load,
        1.0 - slack
    );
}

/// FIFO + linear in the *continuum* is degenerate — `M` and the slope
/// are both constant in the deviation, so any utility steeper than the
/// congestion charge diverges. The solver must surface that as
/// [`LargenError::Unbounded`], not hang or panic.
#[test]
fn continuum_fifo_linear_reports_unbounded() {
    let classes = vec![ClassSpec::new(LinearUtility::new(4.0, 1.0).boxed(), 1.0)];
    let err = solve_mean_field(LargenDiscipline::Fifo, &classes, &SolveOptions::default())
        .expect_err("bang-bang best response");
    assert_eq!(err, LargenError::Unbounded { class: 0 });
}

/// The finite engine at symmetric FIFO + log: the continuum fixed point
/// is `x* = w/(γ + w)` in closed form and the finite equilibrium lands
/// within `O(1/N)` of it. (A *linear* `M` is constant in own rate, so a
/// finite-`N` deviator must move the aggregate itself — its best
/// response scales like `N` and the Jacobi sweep rightly oscillates; the
/// finite-engine contract is interior-forcing utilities like log/power,
/// which is what the sampled experiments use.)
#[test]
fn finite_fifo_log_approaches_closed_form() {
    let (w, g) = (3.0, 1.0);
    let classes = vec![ClassSpec::new(LogUtility::new(w, g).boxed(), 1.0)];
    let n = 10_000;
    let sol = solve_finite(
        LargenDiscipline::Fifo,
        &classes,
        n,
        11,
        2,
        &SolveOptions::default(),
    )
    .expect("solves");
    assert!(sol.converged, "residual {}", sol.residual);
    let star = w / (g + w);
    assert!(
        (sol.load - star).abs() < 5e-3,
        "load {} vs continuum {star}",
        sol.load
    );
}

/// The finite engine must agree with the dense `greednet-core` solver on
/// the *identical* game: `N` raw-rate users with
/// `V(r, c) = U(N·r, N·c)` (`ScaledUtility`) over the Fair Share
/// allocation are the share-scale game largen solves directly.
#[test]
fn finite_fair_share_matches_dense_nash_solver() {
    let n = 24usize;
    let class_u = [LogUtility::new(0.6, 1.0), LogUtility::new(0.3, 1.0)];
    let classes: Vec<ClassSpec> = class_u
        .iter()
        .map(|u| ClassSpec::new((*u).boxed(), 1.0))
        .collect();
    let sol = solve_finite(
        LargenDiscipline::FairShare,
        &classes,
        n,
        3,
        1,
        &SolveOptions::default(),
    )
    .expect("largen solves");
    assert!(sol.converged);

    let scale = n as f64;
    let users: Vec<_> = (0..n)
        .map(|i| {
            let u = &class_u[if i < n / 2 { 0 } else { 1 }];
            ScaledUtility::new((*u).boxed(), scale).boxed()
        })
        .collect();
    let game = Game::new(FairShare::new(), users).expect("game");
    let dense = game
        .solve_nash(&NashOptions {
            tol: 1e-12,
            ..NashOptions::default()
        })
        .expect("dense solves");
    assert!(dense.converged);

    for (c, lo_hi) in [(0usize, 0..n / 2), (1usize, n / 2..n)] {
        for i in lo_hi {
            let scaled = scale * dense.rates[i];
            assert!(
                (scaled - sol.class_x[c]).abs() < 1e-6,
                "user {i} (class {c}): dense N·r = {scaled} vs largen x = {}",
                sol.class_x[c]
            );
        }
    }
}

/// The converged fixed point must not depend on the jitter seed — only
/// the iteration path may.
#[test]
fn finite_fixed_point_is_seed_independent() {
    let classes = vec![
        ClassSpec::new(LogUtility::new(0.6, 1.0).boxed(), 1.0),
        ClassSpec::new(LogUtility::new(0.4, 1.0).boxed(), 2.0),
    ];
    for disc in LargenDiscipline::ALL {
        let a = solve_finite(disc, &classes, 5_000, 1, 2, &SolveOptions::default())
            .expect("seed 1 solves");
        let b = solve_finite(disc, &classes, 5_000, 99, 2, &SolveOptions::default())
            .expect("seed 99 solves");
        assert!(a.converged && b.converged);
        for (xa, xb) in a.class_x.iter().zip(b.class_x.iter()) {
            assert!(
                (xa - xb).abs() < 1e-9,
                "{}: {xa} vs {xb} across seeds",
                disc.name()
            );
        }
    }
}

/// Finite-`N` class rates converge on the continuum fixed point (the
/// contract experiment E17 quantifies per discipline).
#[test]
fn finite_solution_tracks_the_continuum_limit() {
    let classes = vec![
        ClassSpec::new(LogUtility::new(0.6, 1.0).boxed(), 1.0),
        ClassSpec::new(LogUtility::new(0.4, 1.0).boxed(), 1.0),
    ];
    for disc in LargenDiscipline::ALL {
        let mf = solve_mean_field(disc, &classes, &SolveOptions::default()).expect("continuum");
        let fin =
            solve_finite(disc, &classes, 10_000, 5, 2, &SolveOptions::default()).expect("finite");
        assert!(mf.converged && fin.converged);
        for (c, (xf, xm)) in fin.class_x.iter().zip(mf.x.iter()).enumerate() {
            assert!(
                (xf - xm).abs() < 1e-2 * (1.0 + xm.abs()),
                "{} class {c}: finite {xf} vs continuum {xm}",
                disc.name()
            );
        }
    }
}
