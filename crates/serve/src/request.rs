//! The wire protocol: typed requests parsed from JSONL lines, their
//! canonical (cache-key) form, and the response records the service
//! streams back.
//!
//! ## Request shape
//!
//! Each request is one JSON object on one line, with a `kind` selecting
//! the scenario and an optional client `id` echoed on every response
//! record (the `id` never enters the cache key — two clients asking the
//! same question share one cache entry):
//!
//! ```text
//! {"kind":"nash","id":"a1","discipline":"fs","users":"log:0.5,1.0;linear:1.0,0.4"}
//! {"kind":"simulate","rates":[0.2,0.1],"discipline":"fs","horizon":3000,"seed":5}
//! {"kind":"table","rates":[0.05,0.1,0.2]}
//! {"kind":"protect","n":4,"victim":0.1,"discipline":"fs"}
//! {"kind":"exp","exp":"t1","smoke":true}
//! {"kind":"largen","discipline":"fs","n":100000,"classes":"log:0.6,1.0;log:0.4,1.0"}
//! {"kind":"batch","requests":[...]}   {"kind":"stats"}   {"kind":"shutdown"}
//! ```
//!
//! Unknown fields are rejected (a typo'd field silently falling back to
//! its default would poison the cache key contract), and every omitted
//! field is filled with the same default the CLI uses.
//!
//! Every request may carry an optional `"v"` schema-version field
//! (default 1). This build speaks exactly v=1 and rejects anything else,
//! so clients can pin the version today and get a clean `bad_request`
//! (instead of a silent reinterpretation) if the wire schema ever moves.
//! Version 1 never enters the canonical form: `{"kind":"nash","v":1}`
//! and `{"kind":"nash"}` share one cache key, byte-identical to builds
//! that predate the field.
//!
//! ## Response records
//!
//! The service answers each request with a stream of records:
//! `accepted` (echoes the id and canonical cache key), zero or more
//! `progress` records, then exactly one `result` (with the payload under
//! `data` and a `cached` flag) or one `error`.

use crate::canon::{canonical_key, key_hex};
use crate::error::ServeError;
use crate::json::{parse, write_f64, Json};
use crate::ops::{
    canonical_alloc_name, canonical_kind_name, canonical_largen_name, canonical_service_json,
    ExpSpec, LargenSpec, NashSpec, ProtectSpec, SimulateSpec, TableSpec, UtilityParam,
};
use greednet_numerics::conv::{f64_to_u64, f64_to_usize};

/// Default utility profile, identical to `greednet nash`'s `--users`
/// default.
pub const DEFAULT_USERS: &str = "log:0.5,1.0;log:1.0,1.0;linear:1.0,0.3";

/// Default large-N class profile, identical to experiment E17's.
pub const DEFAULT_CLASSES: &str = "log:0.6,1.0;log:0.5,1.0;log:0.4,1.0";

/// Largest integer exactly representable in an f64 (2^53); JSON numbers
/// above this cannot round-trip, so integer fields reject them.
const MAX_SAFE_INT: f64 = 9_007_199_254_740_992.0;

/// One parsed service request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id echoed on every response record (not hashed).
    pub id: Option<String>,
    /// What to do.
    pub kind: RequestKind,
}

/// The request kinds the service understands.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Solve a Nash equilibrium.
    Nash(NashSpec),
    /// Run a packet-level simulation.
    Simulate(SimulateSpec),
    /// Compute the Table 1 priority decomposition.
    Table(TableSpec),
    /// Run a protection sweep.
    Protect(ProtectSpec),
    /// Run a registry experiment.
    Exp(ExpSpec),
    /// Solve a large-N (mean-field) equilibrium.
    Largen(LargenSpec),
    /// Run several sub-requests on the deterministic pool.
    Batch(Vec<Request>),
    /// Report cache counters.
    Stats,
    /// Stop the service cleanly.
    Shutdown,
}

impl Request {
    /// Parses one JSONL request line.
    ///
    /// # Errors
    /// [`ServeError::Parse`] for malformed JSON or request shapes,
    /// [`ServeError::BadRequest`] for out-of-range field values.
    pub fn parse_line(line: &str) -> Result<Request, ServeError> {
        let value = parse(line)?;
        Request::from_json(&value, true)
    }

    /// Builds a request from a parsed JSON value. `allow_batch` is false
    /// one level down: batches do not nest.
    fn from_json(value: &Json, allow_batch: bool) -> Result<Request, ServeError> {
        let Json::Obj(pairs) = value else {
            return Err(ServeError::Parse("request must be a JSON object".into()));
        };
        let mut fields = Fields::new(pairs);
        let kind_name = fields.take_str("kind")?.ok_or_else(|| {
            ServeError::Parse("request needs a \"kind\" field (nash/simulate/table/protect/exp/largen/batch/stats/shutdown)".into())
        })?;
        let id = fields.take_str("id")?;
        // Schema version: only v=1 exists. A v>1 canonical form would
        // include the version; v=1 stays out so the keys of today's
        // requests match every build since the cache key contract began.
        let v = fields.take_u64("v")?.unwrap_or(1);
        if v != 1 {
            return Err(ServeError::BadRequest(format!(
                "unsupported schema version {v} (this build speaks v=1)"
            )));
        }
        let kind = match kind_name.as_str() {
            "nash" => RequestKind::Nash(NashSpec {
                discipline: fields.take_str("discipline")?.unwrap_or_else(|| "fs".into()),
                users: match fields.take("users") {
                    None => parse_users(DEFAULT_USERS)?,
                    Some(Json::Str(s)) => parse_users(&s)?,
                    Some(Json::Arr(items)) => parse_users_array(&items)?,
                    Some(_) => {
                        return Err(ServeError::Parse(
                            "\"users\" must be a \"family:a,b;...\" string or an array of {family,a,b} objects".into(),
                        ))
                    }
                },
            }),
            "simulate" => {
                let rates = fields.take_rates("rates")?;
                RequestKind::Simulate(SimulateSpec {
                    rates,
                    discipline: fields.take_str("discipline")?.unwrap_or_else(|| "fs".into()),
                    horizon: fields.take_f64("horizon")?.unwrap_or(100_000.0),
                    warmup: fields.take_f64("warmup")?,
                    windows: fields.take_usize("windows")?,
                    seed: fields.take_u64("seed")?.unwrap_or(1),
                    service: fields.take_str("service")?.unwrap_or_else(|| "M".into()),
                })
            }
            "table" => RequestKind::Table(TableSpec {
                rates: fields.take_rates("rates")?,
            }),
            "protect" => RequestKind::Protect(ProtectSpec {
                n: fields.take_usize("n")?.unwrap_or(4),
                victim: fields.take_f64("victim")?.unwrap_or(0.1),
                discipline: fields.take_str("discipline")?.unwrap_or_else(|| "fs".into()),
            }),
            "exp" => RequestKind::Exp(ExpSpec {
                exp: fields.take_str("exp")?.ok_or_else(|| {
                    ServeError::Parse("exp requests need an \"exp\" id (e.g. \"t1\")".into())
                })?,
                seed: fields.take_u64("seed")?.unwrap_or(0),
                threads: fields.take_usize("threads")?.unwrap_or(1),
                smoke: fields.take_bool("smoke")?.unwrap_or(false),
            }),
            "largen" => RequestKind::Largen(LargenSpec {
                discipline: fields.take_str("discipline")?.unwrap_or_else(|| "fs".into()),
                n: fields.take_u64("n")?.unwrap_or(10_000),
                classes: match fields.take("classes") {
                    None => parse_users(DEFAULT_CLASSES)?,
                    Some(Json::Str(s)) => parse_users(&s)?,
                    Some(Json::Arr(items)) => parse_users_array(&items)?,
                    Some(_) => {
                        return Err(ServeError::Parse(
                            "\"classes\" must be a \"family:a,b;...\" string or an array of {family,a,b} objects".into(),
                        ))
                    }
                },
                weights: match fields.take("weights") {
                    None => Vec::new(),
                    Some(Json::Arr(items)) => {
                        let mut weights = Vec::with_capacity(items.len());
                        for item in &items {
                            match item {
                                Json::Num(x) if x.is_finite() && *x > 0.0 => weights.push(*x),
                                _ => {
                                    return Err(ServeError::BadRequest(
                                        "\"weights\" entries must be finite numbers > 0".into(),
                                    ))
                                }
                            }
                        }
                        weights
                    }
                    Some(_) => {
                        return Err(ServeError::Parse(
                            "\"weights\" must be an array of numbers".into(),
                        ))
                    }
                },
                seed: fields.take_u64("seed")?.unwrap_or(1),
                threads: fields.take_usize("threads")?.unwrap_or(1),
            }),
            "batch" => {
                if !allow_batch {
                    return Err(ServeError::Parse("batch requests do not nest".into()));
                }
                let Some(Json::Arr(items)) = fields.take("requests") else {
                    return Err(ServeError::Parse(
                        "batch requests need a \"requests\" array".into(),
                    ));
                };
                let subs: Result<Vec<Request>, ServeError> = items
                    .iter()
                    .map(|item| Request::from_json(item, false))
                    .collect();
                RequestKind::Batch(subs?)
            }
            "stats" => RequestKind::Stats,
            "shutdown" => RequestKind::Shutdown,
            other => {
                return Err(ServeError::Parse(format!(
                    "unknown request kind {other:?} (use nash/simulate/table/protect/exp/largen/batch/stats/shutdown)"
                )))
            }
        };
        fields.finish()?;
        Ok(Request { id, kind })
    }
}

impl RequestKind {
    /// The canonical form of a cacheable request: kind tag plus every
    /// field, defaults filled, aliases resolved, client id excluded.
    /// Non-cacheable kinds (`batch`, `stats`, `shutdown`) return `None`
    /// — a batch's *sub-requests* are each cached individually.
    #[must_use]
    pub fn canonical_json(&self) -> Option<Json> {
        let obj = |kind: &str, mut rest: Vec<(String, Json)>| {
            let mut pairs = vec![("kind".to_string(), Json::Str(kind.into()))];
            pairs.append(&mut rest);
            Json::Obj(pairs)
        };
        match self {
            RequestKind::Nash(s) => Some(obj(
                "nash",
                vec![
                    (
                        "discipline".into(),
                        Json::Str(canonical_alloc_name(&s.discipline).into()),
                    ),
                    (
                        "users".into(),
                        Json::Arr(
                            s.users
                                .iter()
                                .map(|u| {
                                    Json::Obj(vec![
                                        ("family".into(), Json::Str(u.family.clone())),
                                        ("a".into(), Json::Num(u.a)),
                                        ("b".into(), Json::Num(u.b)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ],
            )),
            RequestKind::Simulate(s) => Some(obj(
                "simulate",
                vec![
                    (
                        "rates".into(),
                        Json::Arr(s.rates.iter().map(|&r| Json::Num(r)).collect()),
                    ),
                    (
                        "discipline".into(),
                        Json::Str(canonical_kind_name(&s.discipline).into()),
                    ),
                    ("horizon".into(), Json::Num(s.horizon)),
                    // The builder derives warmup = horizon/10 when unset,
                    // so an explicit horizon/10 is the same simulation.
                    (
                        "warmup".into(),
                        Json::Num(s.warmup.unwrap_or(s.horizon * 0.1)),
                    ),
                    (
                        "windows".into(),
                        Json::Num(usize_to_num(s.windows.unwrap_or(32))),
                    ),
                    ("seed".into(), Json::Num(u64_to_num(s.seed))),
                    ("service".into(), canonical_service_json(&s.service)),
                ],
            )),
            RequestKind::Table(s) => Some(obj(
                "table",
                vec![(
                    "rates".into(),
                    Json::Arr(s.rates.iter().map(|&r| Json::Num(r)).collect()),
                )],
            )),
            RequestKind::Protect(s) => Some(obj(
                "protect",
                vec![
                    ("n".into(), Json::Num(usize_to_num(s.n))),
                    ("victim".into(), Json::Num(s.victim)),
                    (
                        "discipline".into(),
                        Json::Str(canonical_alloc_name(&s.discipline).into()),
                    ),
                ],
            )),
            RequestKind::Exp(s) => Some(obj(
                "exp",
                vec![
                    ("exp".into(), Json::Str(s.exp.clone())),
                    ("seed".into(), Json::Num(u64_to_num(s.seed))),
                    ("threads".into(), Json::Num(usize_to_num(s.threads))),
                    ("smoke".into(), Json::Bool(s.smoke)),
                ],
            )),
            RequestKind::Largen(s) => {
                // Weights are canonicalized to an explicit normalized
                // vector: `[1,1]`, `[2,2]`, and omitted all describe the
                // same game over two classes. Invalid weight shapes pass
                // through raw — they fail at execution, uncached.
                let k = s.classes.len();
                let raw: Vec<f64> = if s.weights.is_empty() {
                    vec![1.0; k]
                } else {
                    s.weights.clone()
                };
                let sum: f64 = raw.iter().sum();
                let weights: Vec<f64> = if raw.len() == k && sum > 0.0 && sum.is_finite() {
                    raw.iter().map(|w| w / sum).collect()
                } else {
                    raw
                };
                Some(obj(
                    "largen",
                    vec![
                        (
                            "discipline".into(),
                            Json::Str(canonical_largen_name(&s.discipline).into()),
                        ),
                        ("n".into(), Json::Num(u64_to_num(s.n))),
                        (
                            "classes".into(),
                            Json::Arr(
                                s.classes
                                    .iter()
                                    .map(|u| {
                                        Json::Obj(vec![
                                            ("family".into(), Json::Str(u.family.clone())),
                                            ("a".into(), Json::Num(u.a)),
                                            ("b".into(), Json::Num(u.b)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "weights".into(),
                            Json::Arr(weights.into_iter().map(Json::Num).collect()),
                        ),
                        ("seed".into(), Json::Num(u64_to_num(s.seed))),
                        // gn:canon-exempt(LargenSpec.threads: large-N solvers are bitwise identical at any thread count (pinned by the largen determinism tests), so pool width must not split the cache)
                    ],
                ))
            }
            RequestKind::Batch(_) | RequestKind::Stats | RequestKind::Shutdown => None,
        }
    }

    /// The 128-bit cache key of a cacheable request.
    #[must_use]
    pub fn cache_key(&self) -> Option<u128> {
        self.canonical_json().map(|v| canonical_key(&v))
    }
}

fn u64_to_num(x: u64) -> f64 {
    x as f64
}

fn usize_to_num(x: usize) -> f64 {
    x as f64
}

/// Tracks which fields of a request object have been consumed so
/// leftovers (typos, unknown options) are rejected instead of silently
/// defaulting.
struct Fields {
    pairs: Vec<(String, Json)>,
    taken: Vec<bool>,
}

impl Fields {
    fn new(pairs: &[(String, Json)]) -> Fields {
        Fields {
            pairs: pairs.to_vec(),
            taken: vec![false; pairs.len()],
        }
    }

    fn take(&mut self, key: &str) -> Option<Json> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == key && !self.taken[i] {
                self.taken[i] = true;
                return Some(v.clone());
            }
        }
        None
    }

    fn take_str(&mut self, key: &str) -> Result<Option<String>, ServeError> {
        match self.take(key) {
            None => Ok(None),
            Some(Json::Str(s)) => Ok(Some(s)),
            Some(_) => Err(ServeError::Parse(format!("\"{key}\" must be a string"))),
        }
    }

    fn take_bool(&mut self, key: &str) -> Result<Option<bool>, ServeError> {
        match self.take(key) {
            None => Ok(None),
            Some(Json::Bool(b)) => Ok(Some(b)),
            Some(_) => Err(ServeError::Parse(format!("\"{key}\" must be a boolean"))),
        }
    }

    fn take_f64(&mut self, key: &str) -> Result<Option<f64>, ServeError> {
        match self.take(key) {
            None => Ok(None),
            Some(Json::Num(x)) => Ok(Some(x)),
            Some(_) => Err(ServeError::Parse(format!("\"{key}\" must be a number"))),
        }
    }

    fn take_u64(&mut self, key: &str) -> Result<Option<u64>, ServeError> {
        match self.take_f64(key)? {
            None => Ok(None),
            Some(x) => {
                if x >= 0.0 && x.fract() == 0.0 && x < MAX_SAFE_INT {
                    Ok(Some(f64_to_u64(x)))
                } else {
                    Err(ServeError::BadRequest(format!(
                        "\"{key}\" must be a non-negative integer below 2^53"
                    )))
                }
            }
        }
    }

    fn take_usize(&mut self, key: &str) -> Result<Option<usize>, ServeError> {
        match self.take_f64(key)? {
            None => Ok(None),
            Some(x) => {
                if x >= 0.0 && x.fract() == 0.0 && x < MAX_SAFE_INT {
                    Ok(Some(f64_to_usize(x)))
                } else {
                    Err(ServeError::BadRequest(format!(
                        "\"{key}\" must be a non-negative integer below 2^53"
                    )))
                }
            }
        }
    }

    /// A required rate list: non-empty array of finite, non-negative
    /// numbers (the same constraint the CLI's `--rates` parser applies).
    fn take_rates(&mut self, key: &str) -> Result<Vec<f64>, ServeError> {
        let Some(value) = self.take(key) else {
            return Err(ServeError::Parse(format!(
                "this request kind requires a \"{key}\" array"
            )));
        };
        let Json::Arr(items) = value else {
            return Err(ServeError::Parse(format!(
                "\"{key}\" must be an array of numbers"
            )));
        };
        let mut rates = Vec::with_capacity(items.len());
        for item in &items {
            match item {
                Json::Num(x) if x.is_finite() && *x >= 0.0 => rates.push(*x),
                _ => {
                    return Err(ServeError::BadRequest(format!(
                        "\"{key}\" entries must be finite numbers >= 0"
                    )))
                }
            }
        }
        if rates.is_empty() {
            return Err(ServeError::BadRequest(format!(
                "\"{key}\" must not be empty"
            )));
        }
        Ok(rates)
    }

    fn finish(self) -> Result<(), ServeError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.taken[i] {
                return Err(ServeError::Parse(format!("unknown field \"{k}\"")));
            }
        }
        Ok(())
    }
}

/// Parses the CLI's `family:a,b;family:a,b` utility syntax.
fn parse_users(s: &str) -> Result<Vec<UtilityParam>, ServeError> {
    let mut out = Vec::new();
    for part in s.split(';') {
        let part = part.trim();
        let Some((family, params)) = part.split_once(':') else {
            return Err(ServeError::Parse(format!(
                "bad utility '{part}' (expected family:a,b)"
            )));
        };
        let Some((a, b)) = params.split_once(',') else {
            return Err(ServeError::Parse(format!(
                "bad parameters in '{part}' (expected a,b)"
            )));
        };
        let (Ok(a), Ok(b)) = (a.trim().parse::<f64>(), b.trim().parse::<f64>()) else {
            return Err(ServeError::Parse(format!("bad numbers in '{part}'")));
        };
        out.push(UtilityParam {
            family: family.trim().to_lowercase(),
            a,
            b,
        });
    }
    if out.is_empty() {
        return Err(ServeError::Parse("at least one utility is required".into()));
    }
    Ok(out)
}

/// Parses the array form: `[{"family":"log","a":0.5,"b":1.0}, ...]`.
fn parse_users_array(items: &[Json]) -> Result<Vec<UtilityParam>, ServeError> {
    if items.is_empty() {
        return Err(ServeError::Parse("at least one utility is required".into()));
    }
    items
        .iter()
        .map(|item| {
            let Json::Obj(pairs) = item else {
                return Err(ServeError::Parse(
                    "each user must be a {family,a,b} object".into(),
                ));
            };
            let mut fields = Fields::new(pairs);
            let family = fields
                .take_str("family")?
                .ok_or_else(|| ServeError::Parse("user objects need a \"family\"".into()))?;
            let a = fields
                .take_f64("a")?
                .ok_or_else(|| ServeError::Parse("user objects need \"a\"".into()))?;
            let b = fields
                .take_f64("b")?
                .ok_or_else(|| ServeError::Parse("user objects need \"b\"".into()))?;
            fields.finish()?;
            Ok(UtilityParam { family, a, b })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Response records

fn id_json(id: Option<&str>) -> Json {
    match id {
        Some(s) => Json::Str(s.to_string()),
        None => Json::Null,
    }
}

/// `accepted` record: the request parsed; `key` is its canonical cache
/// key (null for non-cacheable kinds).
#[must_use]
pub fn accepted_record(id: Option<&str>, key: Option<u128>) -> String {
    Json::Obj(vec![
        ("type".into(), Json::Str("accepted".into())),
        ("id".into(), id_json(id)),
        (
            "key".into(),
            match key {
                Some(k) => Json::Str(key_hex(k)),
                None => Json::Null,
            },
        ),
    ])
    .to_compact()
}

/// `progress` record: a named stage of the request began.
#[must_use]
pub fn progress_record(id: Option<&str>, stage: &str) -> String {
    Json::Obj(vec![
        ("type".into(), Json::Str("progress".into())),
        ("id".into(), id_json(id)),
        ("stage".into(), Json::Str(stage.into())),
    ])
    .to_compact()
}

/// `result` record: the payload under `data`, with a `cached` flag. The
/// `data` bytes are identical whether the answer was computed or served
/// from cache — only the flag differs.
#[must_use]
pub fn result_record(id: Option<&str>, cached: bool, payload: &str) -> String {
    Json::Obj(vec![
        ("type".into(), Json::Str("result".into())),
        ("id".into(), id_json(id)),
        ("cached".into(), Json::Bool(cached)),
        ("data".into(), Json::Raw(payload.to_string())),
    ])
    .to_compact()
}

/// `error` record: the request failed; `error` is the failure class
/// (`parse`, `bad_request`, or `io`).
#[must_use]
pub fn error_record(id: Option<&str>, err: &ServeError) -> String {
    let class = match err {
        ServeError::Parse(_) => "parse",
        ServeError::BadRequest(_) => "bad_request",
        ServeError::Io(_) => "io",
    };
    Json::Obj(vec![
        ("type".into(), Json::Str("error".into())),
        ("id".into(), id_json(id)),
        ("error".into(), Json::Str(class.into())),
        ("message".into(), Json::Str(err.to_string())),
    ])
    .to_compact()
}

/// `stats` record: cache counters and occupancy.
#[must_use]
pub fn stats_record(id: Option<&str>, stats: &crate::cache::CacheStats) -> String {
    Json::Obj(vec![
        ("type".into(), Json::Str("stats".into())),
        ("id".into(), id_json(id)),
        ("hits".into(), Json::Num(u64_to_num(stats.hits))),
        ("misses".into(), Json::Num(u64_to_num(stats.misses))),
        ("evictions".into(), Json::Num(u64_to_num(stats.evictions))),
        ("entries".into(), Json::Num(usize_to_num(stats.entries))),
        ("capacity".into(), Json::Num(usize_to_num(stats.capacity))),
        ("hit_rate".into(), Json::Raw(write_f64(stats.hit_rate()))),
    ])
    .to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(line: &str) -> u128 {
        Request::parse_line(line).unwrap().kind.cache_key().unwrap()
    }

    #[test]
    fn defaults_and_explicit_values_hash_identically() {
        // nash: all defaults vs all defaults spelled out.
        let a = key_of(r#"{"kind":"nash"}"#);
        let b = key_of(
            r#"{"kind":"nash","discipline":"fs","users":"log:0.5,1.0;log:1.0,1.0;linear:1.0,0.3"}"#,
        );
        assert_eq!(a, b);
        // simulate: defaults vs explicit, plus alias + warmup=horizon/10.
        let c = key_of(r#"{"kind":"simulate","rates":[0.2,0.1]}"#);
        let d = key_of(
            r#"{"kind":"simulate","rates":[0.2,0.1],"discipline":"fairshare","horizon":100000,"warmup":10000,"windows":32,"seed":1,"service":"m"}"#,
        );
        assert_eq!(c, d);
    }

    #[test]
    fn id_and_key_order_do_not_enter_the_key() {
        let a = key_of(r#"{"kind":"table","rates":[0.1,0.2],"id":"client-7"}"#);
        let b = key_of(r#"{"rates":[0.1,0.2],"kind":"table"}"#);
        assert_eq!(a, b);
    }

    #[test]
    fn changed_scalars_change_the_key() {
        let base = key_of(r#"{"kind":"protect","n":4,"victim":0.1,"discipline":"fs"}"#);
        assert_ne!(
            base,
            key_of(r#"{"kind":"protect","n":5,"victim":0.1,"discipline":"fs"}"#)
        );
        assert_ne!(
            base,
            key_of(r#"{"kind":"protect","n":4,"victim":0.2,"discipline":"fs"}"#)
        );
        assert_ne!(
            base,
            key_of(r#"{"kind":"protect","n":4,"victim":0.1,"discipline":"fifo"}"#)
        );
    }

    #[test]
    fn users_string_and_array_forms_hash_identically() {
        let a = key_of(r#"{"kind":"nash","users":"log:0.5,1.0;linear:1.0,0.4"}"#);
        let b = key_of(
            r#"{"kind":"nash","users":[{"family":"log","a":0.5,"b":1.0},{"family":"linear","a":1.0,"b":0.4}]}"#,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn largen_defaults_weights_and_threads_normalize_in_the_key() {
        let a = key_of(r#"{"kind":"largen"}"#);
        let b = key_of(
            r#"{"kind":"largen","discipline":"fs","n":10000,"classes":"log:0.6,1.0;log:0.5,1.0;log:0.4,1.0","weights":[1,1,1],"seed":1}"#,
        );
        assert_eq!(a, b);
        // Weights are normalized: [2,2,2] describes the same game as the
        // implicit equal split.
        assert_eq!(a, key_of(r#"{"kind":"largen","weights":[2,2,2]}"#));
        // The solvers are bitwise thread-invariant, so pool width must
        // not split the cache.
        assert_eq!(a, key_of(r#"{"kind":"largen","threads":8}"#));
        // Game-defining fields do move the key.
        assert_ne!(a, key_of(r#"{"kind":"largen","n":20000}"#));
        assert_ne!(a, key_of(r#"{"kind":"largen","n":0}"#));
        assert_ne!(a, key_of(r#"{"kind":"largen","discipline":"fifo"}"#));
        assert_ne!(a, key_of(r#"{"kind":"largen","seed":2}"#));
    }

    #[test]
    fn largen_cache_key_is_pinned() {
        // Byte-for-byte golden: a canonicalization change that would
        // split the cache across releases must show up as a diff here.
        let line = r#"{"kind":"largen","discipline":"sfq","n":50000,"classes":"log:0.6,1.0;log:0.4,1.0","weights":[3,1],"seed":7}"#;
        assert_eq!(key_hex(key_of(line)), "3fcc42ba5a90e038e9129d14df4e562b");
        // The canonical form resolves aliases and normalizes weights, so
        // the equivalent spelling lands on the same pinned key.
        let alias = r#"{"kind":"largen","discipline":"fq","n":50000,"classes":[{"family":"log","a":0.6,"b":1.0},{"family":"log","a":0.4,"b":1.0}],"weights":[0.75,0.25],"seed":7,"threads":4}"#;
        assert_eq!(key_hex(key_of(alias)), "3fcc42ba5a90e038e9129d14df4e562b");
    }

    #[test]
    fn schema_version_one_is_invisible_to_the_cache_key() {
        // Pinned pre-versioning cache keys: the `v` field must not move
        // them, with the version omitted or spelled out as 1. These hex
        // strings were produced by a build that predates the field.
        for (line, golden) in [
            (r#"{"kind":"nash"}"#, "00df36bb180264cdcd7c242e11e228f9"),
            (
                r#"{"kind":"simulate","rates":[0.2,0.1]}"#,
                "5adf255ce8c306ecad76b2e0c1ded28a",
            ),
            (
                r#"{"kind":"simulate","rates":[0.08,0.22,0.35],"discipline":"sfq","horizon":20000,"seed":3,"service":"D"}"#,
                "9ad0116091517f2a3d3aba26f8754775",
            ),
            (
                r#"{"kind":"table","rates":[0.05,0.1,0.2]}"#,
                "0e97fe9a43558c8fea161c21575cac15",
            ),
            (
                r#"{"kind":"protect","n":4,"victim":0.1,"discipline":"fs"}"#,
                "c6f897b006e3b841ae604a4330707715",
            ),
            (
                r#"{"kind":"exp","exp":"t1","smoke":true}"#,
                "f412015ca46963af1c5f4bb4c1ce8867",
            ),
        ] {
            assert_eq!(key_hex(key_of(line)), golden, "{line}");
            let versioned = format!("{},\"v\":1}}", &line[..line.len() - 1]);
            assert_eq!(key_hex(key_of(&versioned)), golden, "{versioned}");
        }
    }

    #[test]
    fn unsupported_schema_versions_are_rejected() {
        for line in [
            r#"{"kind":"nash","v":2}"#,
            r#"{"kind":"table","rates":[0.1],"v":0}"#,
            r#"{"kind":"batch","requests":[{"kind":"stats","v":7}]}"#,
        ] {
            let err = Request::parse_line(line);
            assert!(
                matches!(err, Err(ServeError::BadRequest(ref m)) if m.contains("schema version")),
                "{line}: {err:?}"
            );
        }
        // Sub-requests of a batch may pin the version individually.
        assert!(Request::parse_line(
            r#"{"kind":"batch","requests":[{"kind":"table","rates":[0.1],"v":1}],"v":1}"#
        )
        .is_ok());
        // The version must still be an integer.
        assert!(Request::parse_line(r#"{"kind":"nash","v":1.5}"#).is_err());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = Request::parse_line(r#"{"kind":"table","rates":[0.1],"ratez":[0.1]}"#);
        assert!(matches!(err, Err(ServeError::Parse(m)) if m.contains("ratez")));
        let err = Request::parse_line(r#"{"kind":"zap"}"#);
        assert!(matches!(err, Err(ServeError::Parse(m)) if m.contains("zap")));
    }

    #[test]
    fn integer_fields_validate() {
        assert!(Request::parse_line(r#"{"kind":"exp","exp":"t1","seed":1.5}"#).is_err());
        assert!(Request::parse_line(r#"{"kind":"exp","exp":"t1","seed":-1}"#).is_err());
        assert!(Request::parse_line(r#"{"kind":"exp","exp":"t1","seed":7}"#).is_ok());
    }

    #[test]
    fn batch_parses_and_does_not_nest() {
        let r = Request::parse_line(
            r#"{"kind":"batch","requests":[{"kind":"table","rates":[0.1]},{"kind":"protect"}]}"#,
        )
        .unwrap();
        let RequestKind::Batch(subs) = r.kind else {
            panic!("expected batch")
        };
        assert_eq!(subs.len(), 2);
        assert!(Request::parse_line(
            r#"{"kind":"batch","requests":[{"kind":"batch","requests":[]}]}"#
        )
        .is_err());
    }

    #[test]
    fn non_cacheable_kinds_have_no_key() {
        for line in [r#"{"kind":"stats"}"#, r#"{"kind":"shutdown"}"#] {
            assert!(Request::parse_line(line)
                .unwrap()
                .kind
                .cache_key()
                .is_none());
        }
    }

    #[test]
    fn records_are_single_line_json() {
        let e = ServeError::BadRequest("nope".into());
        for rec in [
            accepted_record(Some("a"), Some(7)),
            progress_record(None, "solve"),
            result_record(Some("a"), true, r#"{"x":1.0}"#),
            error_record(None, &e),
        ] {
            assert!(!rec.contains('\n'));
            assert!(parse(&rec).is_ok(), "{rec}");
        }
        assert!(result_record(Some("a"), false, r#"{"x":1.0}"#).contains(r#""data":{"x":1.0}"#));
    }
}
