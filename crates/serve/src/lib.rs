//! greednet-serve: the long-running scenario service.
//!
//! Turns the workspace's one-shot CLI scenarios into a service: clients
//! send newline-delimited JSON requests (`nash`, `simulate`, `table`,
//! `protect`, `exp`, plus `batch`/`stats`/`shutdown`) over stdin/stdout
//! or TCP, and receive a stream of `accepted` → `progress` → `result`
//! records per request. Everything is hand-rolled on `std` — the JSON
//! parser, the FNV hash, the TCP framing — keeping the workspace
//! dependency-free.
//!
//! The centerpiece is the canonical result cache ([`canon`], [`cache`]):
//! because every engine in this workspace is deterministic (same inputs
//! → same bytes, at any thread count), a request's canonical hash fully
//! determines its result bytes, so the service can answer repeats from a
//! bounded LRU with *bitwise-identical* payloads and spend its cycles
//! only on scenarios it has never seen.
//!
//! The module split mirrors the request's life cycle:
//!
//! * [`json`] — strict, dependency-free JSON parsing and writing;
//! * [`request`] — the wire protocol: typed requests and response
//!   records;
//! * [`canon`] — canonicalization and the FNV-1a cache key;
//! * [`cache`] — the bounded LRU of result payloads;
//! * [`ops`] — the scenario data path shared with the CLI commands;
//! * [`error`] — [`ServeError`] and the exit-code contract;
//! * [`service`] — the serve loop over stdio or TCP.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod canon;
pub mod error;
pub mod json;
pub mod ops;
pub mod request;
pub mod service;

pub use cache::{CacheStats, ResultCache};
pub use canon::{canonical_key, canonical_string, fnv1a_128, fnv1a_64, key_hex};
pub use error::ServeError;
pub use json::Json;
pub use request::{Request, RequestKind};
pub use service::{ServeOptions, Service};
