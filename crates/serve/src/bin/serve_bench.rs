//! serve-bench: closed-loop throughput/latency benchmark for
//! `greednet serve` over TCP.
//!
//! Starts an in-process service, then drives it with K concurrent
//! clients, each issuing a deterministic mix of requests: with
//! probability `--hit-ratio` a request is drawn from a small shared hot
//! set (cache hits after warm-up), otherwise it is a fresh scenario
//! (cache miss). Reports requests/sec, p50/p99 latency, and the service's
//! own cache counters as JSON — the repo's serving-performance baseline,
//! checked in as `BENCH_serve.json`.
//!
//! Wall-clock timing lives here, in a binary: the GN02 no-wall-clock rule
//! covers library code, and nothing measured here feeds back into any
//! deterministic result.
//!
//! Usage: serve-bench [--clients K] [--requests N] [--hit-ratio R]
//!                    [--threads T] [--cache CAP] [--seed S] [--out PATH]

use greednet_runtime::{child_seed, BenchJson};
use greednet_serve::{ServeOptions, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

struct Args {
    clients: usize,
    requests: usize,
    hit_ratio: f64,
    threads: usize,
    cache: usize,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 4,
        requests: 200,
        hit_ratio: 0.5,
        threads: 4,
        cache: 1024,
        seed: 0,
        out: Some("BENCH_serve.json".into()),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--clients" => args.clients = val("--clients")?.parse().map_err(|e| format!("{e}"))?,
            "--requests" => {
                args.requests = val("--requests")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--hit-ratio" => {
                args.hit_ratio = val("--hit-ratio")?.parse().map_err(|e| format!("{e}"))?;
                if !(0.0..=1.0).contains(&args.hit_ratio) {
                    return Err("--hit-ratio must lie in [0, 1]".into());
                }
            }
            "--threads" => args.threads = val("--threads")?.parse().map_err(|e| format!("{e}"))?,
            "--cache" => args.cache = val("--cache")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = Some(val("--out")?.to_string()),
            "--no-out" => args.out = None,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be >= 1".into());
    }
    Ok(args)
}

/// SplitMix64 step: the same generator the runtime uses for seed
/// splitting, good enough to drive the request mix deterministically.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The hot set: a handful of scenarios every client keeps re-asking.
fn hot_request(slot: u64, id: &str) -> String {
    match slot % 4 {
        0 => format!(r#"{{"kind":"table","id":"{id}","rates":[0.05,0.1,0.2]}}"#),
        1 => format!(r#"{{"kind":"protect","id":"{id}","n":4,"victim":0.1,"discipline":"fs"}}"#),
        2 => format!(r#"{{"kind":"protect","id":"{id}","n":6,"victim":0.05,"discipline":"fifo"}}"#),
        _ => format!(r#"{{"kind":"table","id":"{id}","rates":[0.1,0.2,0.3,0.4]}}"#),
    }
}

/// A fresh scenario: rates derived from the draw, never repeated.
fn cold_request(draw: u64, id: &str) -> String {
    let a = 0.01 + (draw % 911) as f64 / 2000.0;
    let b = 0.01 + (draw % 577) as f64 / 3000.0;
    format!(r#"{{"kind":"table","id":"{id}","rates":[{a},{b}]}}"#)
}

/// One closed-loop client: sends `requests` requests, waits for each
/// result before the next, records per-request latency in nanoseconds.
fn run_client(
    addr: std::net::SocketAddr,
    client: usize,
    requests: usize,
    hit_ratio: f64,
    seed: u64,
) -> Result<Vec<u128>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut rng = child_seed(seed, 1 + client as u64);
    let mut latencies = Vec::with_capacity(requests);
    for r in 0..requests {
        let id = format!("c{client}-{r}");
        let draw = splitmix64(&mut rng);
        let line = if uniform(&mut rng) < hit_ratio {
            hot_request(draw, &id)
        } else {
            cold_request(draw, &id)
        };
        let started = Instant::now();
        writer
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        // Drain records until this request's result (or error) arrives.
        loop {
            let mut record = String::new();
            let n = reader
                .read_line(&mut record)
                .map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Err("server closed the connection mid-request".into());
            }
            if (record.contains("\"type\":\"result\"") || record.contains("\"type\":\"error\""))
                && record.contains(&format!("\"id\":\"{id}\""))
            {
                if record.contains("\"type\":\"error\"") {
                    return Err(format!("request failed: {}", record.trim()));
                }
                break;
            }
        }
        latencies.push(started.elapsed().as_nanos());
    }
    Ok(latencies)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let service = Service::new(ServeOptions {
        threads: args.threads,
        cache_capacity: args.cache,
    });
    let report = std::thread::scope(|scope| -> Result<BenchJson, String> {
        let (tx, rx) = std::sync::mpsc::channel();
        let server = &service;
        scope.spawn(move || {
            server
                .serve_tcp("127.0.0.1:0", move |addr| {
                    let _ = tx.send(addr);
                })
                .map_err(|e| eprintln!("server: {e}"))
                .ok();
        });
        let addr = rx.recv().map_err(|_| "server failed to bind".to_string())?;
        let started = Instant::now();
        let mut handles = Vec::new();
        for client in 0..args.clients {
            let (requests, hit_ratio, seed) = (args.requests, args.hit_ratio, args.seed);
            handles.push(scope.spawn(move || run_client(addr, client, requests, hit_ratio, seed)));
        }
        let mut latencies_ms: Vec<f64> = Vec::new();
        for handle in handles {
            let client_latencies = handle
                .join()
                .map_err(|_| "client thread panicked".to_string())??;
            latencies_ms.extend(client_latencies.iter().map(|&ns| ns as f64 / 1e6));
        }
        let elapsed = started.elapsed().as_secs_f64();
        // Stop the server before reading final counters.
        let mut stop = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stop.write_all(b"{\"kind\":\"shutdown\"}\n")
            .map_err(|e| format!("shutdown: {e}"))?;
        latencies_ms.sort_by(f64::total_cmp);
        let total = args.clients * args.requests;
        let stats = service.stats();
        let mut latency = BenchJson::new();
        latency
            .fixed("p50", percentile(&latencies_ms, 0.50), 3)
            .fixed("p99", percentile(&latencies_ms, 0.99), 3)
            .fixed("max", latencies_ms.last().copied().unwrap_or(0.0), 3);
        let mut cache = BenchJson::new();
        cache
            .uint("hits", stats.hits)
            .uint("misses", stats.misses)
            .uint("evictions", stats.evictions)
            .uint("entries", stats.entries as u64)
            .fixed("hit_rate", stats.hit_rate(), 4);
        let mut report = BenchJson::new();
        report
            .uint("clients", args.clients as u64)
            .uint("requests_per_client", args.requests as u64)
            .uint("total_requests", total as u64)
            .num("hit_ratio_target", args.hit_ratio)
            .uint("service_threads", args.threads as u64)
            .uint("cache_capacity", args.cache as u64)
            .fixed("elapsed_s", elapsed, 3)
            .fixed("requests_per_sec", total as f64 / elapsed, 1)
            .obj("latency_ms", latency)
            .obj("cache", cache);
        Ok(report)
    })?;
    report.emit(args.out.as_deref())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(
            if e.contains("unknown argument") || e.contains("needs a value") {
                2
            } else {
                1
            },
        );
    }
}
