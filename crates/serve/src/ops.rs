//! The scenario data path: typed specs that *compute* results as data,
//! separate from any rendering.
//!
//! The CLI commands (`greednet nash` / `simulate` / `table` / `protect`)
//! and the service requests are two front-ends over these same specs:
//! the CLI renders an outcome with `render_text` (byte-identical to the
//! output the commands printed before this refactor — pinned by golden
//! tests), the service renders the same outcome with `to_json`. Keeping
//! one compute path is what makes the cache sound: a cached service
//! payload answers exactly the computation the CLI would have done.

use crate::error::ServeError;
use crate::json::Json;
use greednet_core::game::{Game, NashOptions};
use greednet_core::protection::{adversarial_congestion, protection_bound};
use greednet_core::utility::{
    BoxedUtility, LinearUtility, LogUtility, PowerUtility, QuadraticCongestionUtility, UtilityExt,
};
use greednet_des::scenarios::DisciplineKind;
use greednet_des::{ServiceDist, SimConfig, Simulator};
use greednet_largen::{solve_finite, solve_mean_field, ClassSpec, LargenDiscipline, SolveOptions};
use greednet_queueing::alloc::AllocationFunction;
use greednet_queueing::fair_share::priority_table;
use greednet_queueing::{FairShare, Proportional, SerialPriority};
use greednet_telemetry::Probe;
use std::fmt::Write as _;

/// The adversary levels the protection sweep probes, in printed order.
pub const PROTECT_LEVELS: [f64; 8] = [0.05, 0.1, 0.2, 0.4, 0.8, 0.95, 2.0, 10.0];

/// One user's utility specification (family + two parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityParam {
    /// Family name: `linear`, `log`, `power`, or `quad`.
    pub family: String,
    /// First parameter (`a` / `w`).
    pub a: f64,
    /// Second parameter (`gamma`).
    pub b: f64,
}

/// Builds an allocation function from a CLI/service discipline name.
///
/// # Errors
/// [`ServeError::BadRequest`] naming the unknown discipline.
pub fn build_alloc(name: &str) -> Result<Box<dyn AllocationFunction>, ServeError> {
    match name {
        "fifo" => Ok(Box::new(Proportional::new())),
        "fs" | "fairshare" | "fair-share" => Ok(Box::new(FairShare::new())),
        "sp" | "serial" => Ok(Box::new(SerialPriority::new())),
        other => Err(ServeError::BadRequest(format!(
            "unknown discipline '{other}' (use fifo/fs/sp)"
        ))),
    }
}

/// Builds a simulator discipline kind from a CLI/service name.
///
/// # Errors
/// [`ServeError::BadRequest`] naming the unknown discipline.
pub fn build_kind(name: &str) -> Result<DisciplineKind, ServeError> {
    Ok(match name {
        "fifo" => DisciplineKind::Fifo,
        "lifo" => DisciplineKind::LifoPreemptive,
        "ps" => DisciplineKind::ProcessorSharing,
        "sp" | "serial" => DisciplineKind::SerialPriority,
        "fs" | "fairshare" | "fair-share" => DisciplineKind::FsTable,
        "sfq" | "fq" => DisciplineKind::Sfq,
        other => {
            return Err(ServeError::BadRequest(format!(
                "unknown discipline '{other}' (use fifo/lifo/ps/sp/fs/sfq)"
            )))
        }
    })
}

/// Resolves allocation-discipline aliases to the canonical short name
/// used by the cache key (`fairshare` and `fs` must hash alike).
/// Unknown names pass through unchanged — they fail later, uncached.
#[must_use]
pub fn canonical_alloc_name(name: &str) -> &str {
    match name {
        "fairshare" | "fair-share" => "fs",
        "serial" => "sp",
        other => other,
    }
}

/// Resolves simulator-discipline aliases to the canonical short name.
#[must_use]
pub fn canonical_kind_name(name: &str) -> &str {
    match name {
        "fairshare" | "fair-share" => "fs",
        "serial" => "sp",
        "fq" => "sfq",
        other => other,
    }
}

/// Builds boxed utilities from parameter specs.
///
/// # Errors
/// [`ServeError::BadRequest`] describing the invalid spec.
pub fn build_users(specs: &[UtilityParam]) -> Result<Vec<BoxedUtility>, ServeError> {
    specs
        .iter()
        .map(|s| -> Result<BoxedUtility, ServeError> {
            let bad =
                |msg: &str| ServeError::BadRequest(format!("{}:{},{}: {msg}", s.family, s.a, s.b));
            match s.family.as_str() {
                "linear" => {
                    if s.a <= 0.0 || s.b <= 0.0 {
                        return Err(bad("needs a, gamma > 0"));
                    }
                    Ok(LinearUtility::new(s.a, s.b).boxed())
                }
                "log" => {
                    if s.a <= 0.0 || s.b <= 0.0 {
                        return Err(bad("needs w, gamma > 0"));
                    }
                    Ok(LogUtility::new(s.a, s.b).boxed())
                }
                "power" => {
                    if !(0.0 < s.a && s.a < 1.0) || s.b <= 0.0 {
                        return Err(bad("needs 0 < a < 1, gamma > 0"));
                    }
                    Ok(PowerUtility::new(s.a, s.b).boxed())
                }
                "quad" => {
                    if s.a <= 0.0 || s.b <= 0.0 {
                        return Err(bad("needs a, gamma > 0"));
                    }
                    Ok(QuadraticCongestionUtility::new(s.a, s.b).boxed())
                }
                other => Err(ServeError::BadRequest(format!("unknown family '{other}'"))),
            }
        })
        .collect()
}

/// Parses a service-time spec (`M`, `D`, `E<k>`, `H2:<cs2>`).
///
/// # Errors
/// [`ServeError::BadRequest`] describing the invalid spec.
pub fn build_service(spec: &str) -> Result<ServiceDist, ServeError> {
    match spec {
        "M" | "m" => Ok(ServiceDist::Exponential),
        "D" | "d" => Ok(ServiceDist::Deterministic),
        s if s.starts_with('E') || s.starts_with('e') => s[1..]
            .parse::<u32>()
            .ok()
            .filter(|&k| k >= 1)
            .map(ServiceDist::Erlang)
            .ok_or_else(|| ServeError::BadRequest(format!("bad Erlang spec '{s}' (use e.g. E4)"))),
        s if s.to_uppercase().starts_with("H2:") => s[3..]
            .parse::<f64>()
            .ok()
            .filter(|&c| c > 1.0)
            .map(|cs2| ServiceDist::Hyperexponential { cs2 })
            .ok_or_else(|| ServeError::BadRequest(format!("bad H2 spec '{s}' (use e.g. H2:4.0)"))),
        other => Err(ServeError::BadRequest(format!(
            "unknown service '{other}' (use M, D, E<k> or H2:<cs2>)"
        ))),
    }
}

/// Canonical encoding of a service spec for the cache key: `M`/`m` must
/// hash alike, and `H2:4` must match `H2:4.0`.
#[must_use]
pub fn canonical_service_json(spec: &str) -> Json {
    match build_service(spec) {
        Ok(ServiceDist::Exponential) => Json::Str("M".into()),
        Ok(ServiceDist::Deterministic) => Json::Str("D".into()),
        Ok(ServiceDist::Erlang(k)) => Json::Obj(vec![("E".into(), Json::Num(f64::from(k)))]),
        Ok(ServiceDist::Hyperexponential { cs2 }) => Json::Obj(vec![("H2".into(), Json::Num(cs2))]),
        // Unknown specs fail at execution; keep them distinct as-is.
        _ => Json::Str(spec.to_string()),
    }
}

// ---------------------------------------------------------------------
// nash

/// Specification of a Nash-equilibrium solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NashSpec {
    /// Allocation discipline name (`fifo`/`fs`/`sp`, aliases accepted).
    pub discipline: String,
    /// The utility profile.
    pub users: Vec<UtilityParam>,
}

/// Computed Nash equilibrium, ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct NashOutcome {
    /// Human-readable discipline name (e.g. `fair share`).
    pub discipline: String,
    /// Whether the sweep converged.
    pub converged: bool,
    /// Sweeps performed.
    pub iterations: usize,
    /// Final residual.
    pub residual: f64,
    /// Equilibrium rates.
    pub rates: Vec<f64>,
    /// Congestion per user.
    pub congestions: Vec<f64>,
    /// Utility per user.
    pub utilities: Vec<f64>,
    /// Largest pairwise envy (`<= 0` means envy-free).
    pub max_envy: f64,
}

impl NashSpec {
    fn game(&self) -> Result<Game, ServeError> {
        let alloc = build_alloc(&self.discipline)?;
        let users = build_users(&self.users)?;
        Game::from_boxed(alloc, users).map_err(|e| ServeError::BadRequest(e.to_string()))
    }

    /// Solves the equilibrium.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] on invalid specs or solver failure.
    pub fn solve(&self) -> Result<NashOutcome, ServeError> {
        let game = self.game()?;
        let sol = game
            .solve_nash(&NashOptions::default())
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        self.outcome(&game, sol)
    }

    /// Solves the equilibrium with a solver probe observing the sweep
    /// (the probe never changes the numbers).
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] on invalid specs or solver failure.
    pub fn solve_probed<P: Probe>(&self, probe: &mut P) -> Result<NashOutcome, ServeError> {
        let game = self.game()?;
        let sol = game
            .solve_nash_probed(&vec![None; game.n()], &NashOptions::default(), probe)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        self.outcome(&game, sol)
    }

    fn outcome(
        &self,
        game: &Game,
        sol: greednet_core::game::NashSolution,
    ) -> Result<NashOutcome, ServeError> {
        let max_envy = game
            .max_envy(&sol.rates)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        Ok(NashOutcome {
            discipline: game.allocation().name().to_string(),
            converged: sol.converged,
            iterations: sol.iterations,
            residual: sol.residual,
            rates: sol.rates,
            congestions: sol.congestions,
            utilities: sol.utilities,
            max_envy,
        })
    }
}

impl NashOutcome {
    /// Renders the outcome exactly as `greednet nash` prints it.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Nash equilibrium under {}:", self.discipline);
        let _ = writeln!(
            out,
            "  converged: {} in {} sweeps (residual {:.1e})",
            self.converged, self.iterations, self.residual
        );
        let _ = writeln!(
            out,
            "  {:<6}{:>12}{:>12}{:>12}",
            "user", "rate", "congestion", "utility"
        );
        for i in 0..self.rates.len() {
            let _ = writeln!(
                out,
                "  {i:<6}{:>12.5}{:>12.5}{:>12.5}",
                self.rates[i], self.congestions[i], self.utilities[i]
            );
        }
        let _ = writeln!(
            out,
            "  max envy: {:+.6} (<= 0 means envy-free)",
            self.max_envy
        );
        out
    }

    /// Structured payload for the service's `result` record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let users: Vec<Json> = (0..self.rates.len())
            .map(|i| {
                Json::Obj(vec![
                    ("rate".into(), Json::Num(self.rates[i])),
                    ("congestion".into(), Json::Num(self.congestions[i])),
                    ("utility".into(), Json::Num(self.utilities[i])),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("discipline".into(), Json::Str(self.discipline.clone())),
            ("converged".into(), Json::Bool(self.converged)),
            ("sweeps".into(), Json::Num(self.iterations as f64)),
            ("residual".into(), Json::Num(self.residual)),
            ("users".into(), Json::Arr(users)),
            ("max_envy".into(), Json::Num(self.max_envy)),
        ])
    }
}

// ---------------------------------------------------------------------
// simulate

/// Specification of a packet-level simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateSpec {
    /// Poisson arrival rates.
    pub rates: Vec<f64>,
    /// Discipline name (`fifo`/`lifo`/`ps`/`sp`/`fs`/`sfq`, aliases ok).
    pub discipline: String,
    /// Simulated horizon.
    pub horizon: f64,
    /// Warm-up interval (`None` keeps the builder default, horizon/10).
    pub warmup: Option<f64>,
    /// Batch-means window count (`None` keeps the builder default).
    pub windows: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Service-time spec (`M`/`D`/`E<k>`/`H2:<cs2>`).
    pub service: String,
}

/// Per-user row of a simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SimUserRow {
    /// Offered rate.
    pub rate: f64,
    /// Time-averaged queue.
    pub mean_queue: f64,
    /// 95% CI half-width on the queue.
    pub ci_half_width: f64,
    /// Mean sojourn time.
    pub mean_delay: f64,
    /// Completed-packet throughput.
    pub throughput: f64,
}

/// Computed simulation results, ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateOutcome {
    /// Discipline label (e.g. `FairShare`).
    pub label: String,
    /// The service spec as given (rendered verbatim, like the CLI).
    pub service: String,
    /// Simulated horizon.
    pub horizon: f64,
    /// Events processed.
    pub events: u64,
    /// Per-user rows.
    pub rows: Vec<SimUserRow>,
    /// Total time-averaged queue.
    pub total_mean_queue: f64,
}

impl SimulateSpec {
    /// Runs the simulation.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] on invalid specs or simulator failure.
    pub fn outcome(&self) -> Result<SimulateOutcome, ServeError> {
        self.run(None::<&mut greednet_telemetry::NoopProbe>)
    }

    /// Runs the simulation with a packet probe observing events (the
    /// probe never changes the numbers).
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] on invalid specs or simulator failure.
    pub fn outcome_probed<P: Probe>(&self, probe: &mut P) -> Result<SimulateOutcome, ServeError> {
        self.run(Some(probe))
    }

    fn run<P: Probe>(&self, probe: Option<&mut P>) -> Result<SimulateOutcome, ServeError> {
        let bad = |e: greednet_des::DesError| ServeError::BadRequest(e.to_string());
        let kind = build_kind(&self.discipline)?;
        let service = build_service(&self.service)?;
        let mut builder = SimConfig::builder(self.rates.clone())
            .horizon(self.horizon)
            .seed(self.seed)
            .service(service)
            .allow_overload(true);
        if let Some(w) = self.warmup {
            builder = builder.warmup(w);
        }
        if let Some(k) = self.windows {
            builder = builder.windows(k);
        }
        let cfg = builder.build().map_err(bad)?;
        let sim = Simulator::new(cfg).map_err(bad)?;
        let mut d = kind.build(&self.rates, self.seed ^ 0xC11).map_err(bad)?;
        let r = match probe {
            Some(p) => sim.run_probed(d.as_mut(), p),
            None => sim.run(d.as_mut()),
        }
        .map_err(bad)?;
        let rows = self
            .rates
            .iter()
            .enumerate()
            .map(|(i, &rate)| SimUserRow {
                rate,
                mean_queue: r.mean_queue[i],
                ci_half_width: r.queue_ci[i].half_width,
                mean_delay: r.mean_delay[i],
                throughput: r.throughput[i],
            })
            .collect();
        Ok(SimulateOutcome {
            label: kind.label().to_string(),
            service: self.service.clone(),
            horizon: self.horizon,
            events: r.events,
            rows,
            total_mean_queue: r.total_mean_queue,
        })
    }
}

impl SimulateOutcome {
    /// Renders the outcome exactly as `greednet simulate` prints it.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Simulated {} under {} service for {} time units ({} events):",
            self.label, self.service, self.horizon, self.events
        );
        let _ = writeln!(
            out,
            "  {:<6}{:>10}{:>12}{:>12}{:>12}{:>14}",
            "user", "rate", "queue", "ci(95%)", "delay", "throughput"
        );
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {i:<6}{:>10.4}{:>12.4}{:>12.4}{:>12.4}{:>14.4}",
                row.rate, row.mean_queue, row.ci_half_width, row.mean_delay, row.throughput
            );
        }
        let _ = writeln!(out, "  total mean queue: {:.4}", self.total_mean_queue);
        out
    }

    /// Structured payload for the service's `result` record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let users: Vec<Json> = self
            .rows
            .iter()
            .map(|row| {
                Json::Obj(vec![
                    ("rate".into(), Json::Num(row.rate)),
                    ("mean_queue".into(), Json::Num(row.mean_queue)),
                    ("ci95".into(), Json::Num(row.ci_half_width)),
                    ("mean_delay".into(), Json::Num(row.mean_delay)),
                    ("throughput".into(), Json::Num(row.throughput)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("discipline".into(), Json::Str(self.label.clone())),
            ("service".into(), Json::Str(self.service.clone())),
            ("horizon".into(), Json::Num(self.horizon)),
            ("events".into(), Json::Num(self.events as f64)),
            ("users".into(), Json::Arr(users)),
            ("total_mean_queue".into(), Json::Num(self.total_mean_queue)),
        ])
    }
}

// ---------------------------------------------------------------------
// table

/// Specification of a Table 1 priority decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Rates to decompose.
    pub rates: Vec<f64>,
}

/// Computed priority table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableOutcome {
    /// The input rates.
    pub rates: Vec<f64>,
    /// Per-user rows of per-level allocations.
    pub rows: Vec<Vec<f64>>,
}

impl TableSpec {
    /// Computes the decomposition.
    #[must_use]
    pub fn outcome(&self) -> TableOutcome {
        TableOutcome {
            rates: self.rates.clone(),
            rows: priority_table(&self.rates),
        }
    }
}

impl TableOutcome {
    /// Renders the outcome exactly as `greednet table` prints it.
    #[must_use]
    pub fn render_text(&self) -> String {
        let n = self.rates.len();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Fair Share priority table (paper Table 1) for rates {:?}:",
            self.rates
        );
        let _ = write!(out, "  {:<6}", "user");
        for k in 0..n {
            let _ = write!(out, "{:>9}", format!("L{k}"));
        }
        let _ = writeln!(out, "{:>10}", "total");
        for (u, row) in self.rows.iter().enumerate() {
            let _ = write!(out, "  {u:<6}");
            for &v in row {
                if v > 0.0 {
                    let _ = write!(out, "{v:>9.4}");
                } else {
                    let _ = write!(out, "{:>9}", "-");
                }
            }
            let _ = writeln!(out, "{:>10.4}", row.iter().sum::<f64>());
        }
        out
    }

    /// Structured payload for the service's `result` record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|row| Json::Arr(row.iter().map(|&v| Json::Num(v)).collect()))
            .collect();
        let totals: Vec<Json> = self
            .rows
            .iter()
            .map(|row| Json::Num(row.iter().sum::<f64>()))
            .collect();
        Json::Obj(vec![
            (
                "rates".into(),
                Json::Arr(self.rates.iter().map(|&r| Json::Num(r)).collect()),
            ),
            ("levels".into(), Json::Arr(rows)),
            ("totals".into(), Json::Arr(totals)),
        ])
    }
}

// ---------------------------------------------------------------------
// protect

/// Specification of a protection sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectSpec {
    /// Total number of users.
    pub n: usize,
    /// Victim rate.
    pub victim: f64,
    /// Allocation discipline name.
    pub discipline: String,
}

/// Computed protection sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectOutcome {
    /// Human-readable discipline name.
    pub discipline: String,
    /// Total users.
    pub n: usize,
    /// Victim rate.
    pub victim: f64,
    /// The Theorem 8 bound `r/(1-Nr)`.
    pub bound: f64,
    /// `(adversary level, victim queue)` pairs, in [`PROTECT_LEVELS`]
    /// order.
    pub levels: Vec<(f64, f64)>,
    /// Worst observed victim queue over all levels at once.
    pub worst: f64,
    /// Whether the worst case respects the bound.
    pub protected: bool,
}

impl ProtectSpec {
    /// Runs the sweep.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] on invalid parameters.
    pub fn outcome(&self) -> Result<ProtectOutcome, ServeError> {
        if self.n < 1 {
            return Err(ServeError::BadRequest("--n must be >= 1".into()));
        }
        if !(self.victim > 0.0 && self.victim < 1.0) {
            return Err(ServeError::BadRequest("--victim must lie in (0, 1)".into()));
        }
        let alloc = build_alloc(&self.discipline)?;
        let bound = protection_bound(self.n, self.victim);
        let levels: Vec<(f64, f64)> = PROTECT_LEVELS
            .iter()
            .map(|&level| {
                (
                    level,
                    adversarial_congestion(alloc.as_ref(), self.n, self.victim, &[level]),
                )
            })
            .collect();
        let worst = adversarial_congestion(alloc.as_ref(), self.n, self.victim, &PROTECT_LEVELS);
        Ok(ProtectOutcome {
            discipline: alloc.name().to_string(),
            n: self.n,
            victim: self.victim,
            bound,
            levels,
            worst,
            protected: worst <= bound * (1.0 + 1e-9),
        })
    }
}

impl ProtectOutcome {
    /// Renders the outcome exactly as `greednet protect` prints it.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Protection of a victim at rate {} among {} users under {}:",
            self.victim, self.n, self.discipline
        );
        let _ = writeln!(out, "  Theorem 8 bound r/(1-Nr): {:.5}", self.bound);
        let _ = writeln!(out, "  {:<18}{:>14}", "adversary level", "victim queue");
        for &(level, c) in &self.levels {
            let _ = writeln!(out, "  {level:<18}{c:>14.5}");
        }
        let _ = writeln!(
            out,
            "  worst observed: {:.5} -> {}",
            self.worst,
            if self.protected {
                "PROTECTED"
            } else {
                "BOUND VIOLATED"
            }
        );
        out
    }

    /// Structured payload for the service's `result` record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let levels: Vec<Json> = self
            .levels
            .iter()
            .map(|&(level, c)| {
                Json::Obj(vec![
                    ("level".into(), Json::Num(level)),
                    ("victim_queue".into(), Json::Num(c)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("discipline".into(), Json::Str(self.discipline.clone())),
            ("n".into(), Json::Num(self.n as f64)),
            ("victim".into(), Json::Num(self.victim)),
            ("bound".into(), Json::Num(self.bound)),
            ("levels".into(), Json::Arr(levels)),
            ("worst".into(), Json::Num(self.worst)),
            ("protected".into(), Json::Bool(self.protected)),
        ])
    }
}

// ---------------------------------------------------------------------
// largen

/// Resolves large-N discipline aliases to the canonical short name used
/// by the cache key. Unknown names pass through — they fail later,
/// uncached.
#[must_use]
pub fn canonical_largen_name(name: &str) -> &str {
    match LargenDiscipline::parse(name) {
        Some(d) => d.name(),
        None => name,
    }
}

/// Specification of a large-N (mean-field) equilibrium solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LargenSpec {
    /// Discipline name (`fifo`/`fs`/`sfq`, aliases accepted).
    pub discipline: String,
    /// Population size; `0` solves the mean-field continuum (`N = ∞`).
    pub n: u64,
    /// Per-class utility specs (rates and congestions are share-scaled:
    /// `x = N·r`, `Φ = N·C`).
    pub classes: Vec<UtilityParam>,
    /// Per-class population weights (empty = equal); only ratios matter.
    pub weights: Vec<f64>,
    /// Seed for the finite engine's jittered start (ignored at `n = 0`;
    /// the converged fixed point is seed-independent, but the sweep
    /// count is part of the payload, so the seed stays in the key).
    pub seed: u64,
    /// Worker threads for the finite engine's best-response sharding.
    /// Unlike [`ExpSpec`], this is *not* part of the cache key: the
    /// solver is bitwise identical at any thread count, so clients at
    /// different widths share one cache entry.
    pub threads: usize,
}

/// One class row of a computed large-N equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct LargenClassRow {
    /// Normalized population weight.
    pub weight: f64,
    /// Users apportioned to the class (`None` in the continuum).
    pub users: Option<u64>,
    /// Mean scaled rate `x = N·r`.
    pub x: f64,
    /// Mean scaled congestion `Φ = N·C`.
    pub phi: f64,
}

/// Computed large-N equilibrium, ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct LargenOutcome {
    /// Canonical discipline name (`fifo`/`fs`/`sfq`).
    pub discipline: String,
    /// Population size (`0` = continuum).
    pub n: u64,
    /// Per-class results.
    pub classes: Vec<LargenClassRow>,
    /// Aggregate offered load at the final iterate.
    pub load: f64,
    /// Sweeps (finite) or fixed-point steps (continuum) performed.
    pub sweeps: u32,
    /// Final max best-response deviation.
    pub residual: f64,
    /// Whether the solve converged within its budget.
    pub converged: bool,
}

impl LargenSpec {
    fn normalized_weights(&self) -> Result<Vec<f64>, ServeError> {
        let k = self.classes.len();
        let raw: Vec<f64> = if self.weights.is_empty() {
            vec![1.0; k]
        } else {
            self.weights.clone()
        };
        if raw.len() != k {
            return Err(ServeError::BadRequest(format!(
                "{} weights for {k} classes",
                raw.len()
            )));
        }
        if !raw.iter().all(|w| w.is_finite() && *w > 0.0) {
            return Err(ServeError::BadRequest(
                "weights must be finite and > 0".into(),
            ));
        }
        let sum: f64 = raw.iter().sum();
        Ok(raw.iter().map(|w| w / sum).collect())
    }

    /// Solves the equilibrium (finite engine for `n >= 1`, mean-field
    /// continuum for `n = 0`).
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] on invalid specs or solver failure
    /// (including an unbounded continuum best response).
    pub fn solve(&self) -> Result<LargenOutcome, ServeError> {
        let disc = LargenDiscipline::parse(&self.discipline).ok_or_else(|| {
            ServeError::BadRequest(format!(
                "unknown large-N discipline '{}' (use fifo/fs/sfq)",
                self.discipline
            ))
        })?;
        let utilities = build_users(&self.classes)?;
        let weights = self.normalized_weights()?;
        let specs: Vec<ClassSpec> = utilities
            .into_iter()
            .zip(weights.iter())
            .map(|(u, &w)| ClassSpec::new(u, w))
            .collect();
        let opts = SolveOptions::default();
        let bad = |e: greednet_largen::LargenError| ServeError::BadRequest(e.to_string());
        if self.n == 0 {
            let sol = solve_mean_field(disc, &specs, &opts).map_err(bad)?;
            let classes = weights
                .iter()
                .zip(sol.x.iter().zip(sol.phi.iter()))
                .map(|(&w, (&x, &phi))| LargenClassRow {
                    weight: w,
                    users: None,
                    x,
                    phi,
                })
                .collect();
            Ok(LargenOutcome {
                discipline: disc.name().to_string(),
                n: 0,
                classes,
                load: sol.load,
                sweeps: sol.steps,
                residual: sol.residual,
                converged: sol.converged,
            })
        } else {
            let n = usize::try_from(self.n)
                .map_err(|_| ServeError::BadRequest("\"n\" is too large".into()))?;
            let sol = solve_finite(disc, &specs, n, self.seed, self.threads.max(1), &opts)
                .map_err(bad)?;
            let classes = weights
                .iter()
                .zip(sol.class_counts.iter())
                .zip(sol.class_x.iter().zip(sol.class_phi.iter()))
                .map(|((&w, &count), (&x, &phi))| LargenClassRow {
                    weight: w,
                    users: Some(count),
                    x,
                    phi,
                })
                .collect();
            Ok(LargenOutcome {
                discipline: disc.name().to_string(),
                n: self.n,
                classes,
                load: sol.load,
                sweeps: sol.sweeps,
                residual: sol.residual,
                converged: sol.converged,
            })
        }
    }
}

impl LargenOutcome {
    /// Renders the outcome exactly as `greednet largen` prints it.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let scale = if self.n == 0 {
            "mean-field continuum".to_string()
        } else {
            format!("N = {}", self.n)
        };
        let _ = writeln!(
            out,
            "Large-N equilibrium under {} ({scale}):",
            self.discipline
        );
        let _ = writeln!(
            out,
            "  converged: {} in {} sweeps (residual {:.1e})",
            self.converged, self.sweeps, self.residual
        );
        let _ = writeln!(
            out,
            "  {:<7}{:>10}{:>12}{:>14}{:>14}",
            "class", "weight", "users", "x = N*r", "phi = N*C"
        );
        for (c, row) in self.classes.iter().enumerate() {
            let users = match row.users {
                Some(u) => u.to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  {c:<7}{:>10.6}{users:>12}{:>14.6}{:>14.6}",
                row.weight, row.x, row.phi
            );
        }
        let _ = writeln!(
            out,
            "  load: {:.6} (slack {:.3e})",
            self.load,
            1.0 - self.load
        );
        out
    }

    /// Structured payload for the service's `result` record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let classes: Vec<Json> = self
            .classes
            .iter()
            .map(|row| {
                Json::Obj(vec![
                    ("weight".into(), Json::Num(row.weight)),
                    (
                        "users".into(),
                        match row.users {
                            Some(u) => Json::Num(u as f64),
                            None => Json::Null,
                        },
                    ),
                    ("x".into(), Json::Num(row.x)),
                    ("phi".into(), Json::Num(row.phi)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("discipline".into(), Json::Str(self.discipline.clone())),
            ("n".into(), Json::Num(self.n as f64)),
            ("converged".into(), Json::Bool(self.converged)),
            ("sweeps".into(), Json::Num(f64::from(self.sweeps))),
            ("residual".into(), Json::Num(self.residual)),
            ("load".into(), Json::Num(self.load)),
            ("classes".into(), Json::Arr(classes)),
        ])
    }
}

// ---------------------------------------------------------------------
// exp

/// Specification of a registry-experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpSpec {
    /// Experiment id (`t1`, `e1`..).
    pub exp: String,
    /// Root seed.
    pub seed: u64,
    /// Worker threads for the experiment's own replication pool. Part of
    /// the request (and its cache key) so the payload is independent of
    /// the *service's* pool width; experiment output is bitwise
    /// invariant to this value except for the `threads=` header.
    pub threads: usize,
    /// Run with the smoke budget instead of paper fidelity.
    pub smoke: bool,
}

impl ExpSpec {
    /// Runs the experiment and renders its report as a JSON payload.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for unknown experiment ids.
    pub fn run_json(&self) -> Result<Json, ServeError> {
        use greednet_runtime::{Budget, ExpCtx, Format};
        let budget = if self.smoke {
            Budget::smoke()
        } else {
            Budget::full()
        };
        let ctx = ExpCtx::new(self.seed, self.threads.max(1)).with_budget(budget);
        let report = greednet_bench::exp_cli::run_experiment(&self.exp, &ctx)
            .map_err(ServeError::BadRequest)?;
        // The report renderer emits a complete JSON object; splice it
        // verbatim rather than re-parsing.
        Ok(Json::Raw(report.render(Format::Json)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accept_known_names() {
        assert!(build_alloc("fifo").is_ok());
        assert!(build_alloc("fairshare").is_ok());
        assert!(build_alloc("nope").is_err());
        assert!(build_kind("sfq").is_ok());
        assert!(build_kind("nope").is_err());
        assert_eq!(canonical_alloc_name("fairshare"), "fs");
        assert_eq!(canonical_kind_name("fq"), "sfq");
        assert_eq!(canonical_kind_name("lifo"), "lifo");
    }

    #[test]
    fn service_specs_parse() {
        assert_eq!(build_service("M").unwrap(), ServiceDist::Exponential);
        assert_eq!(build_service("E4").unwrap(), ServiceDist::Erlang(4));
        assert!(build_service("E0").is_err());
        assert!(build_service("H2:0.5").is_err());
        assert_eq!(
            canonical_service_json("m").to_compact(),
            canonical_service_json("M").to_compact()
        );
        assert_eq!(
            canonical_service_json("H2:4").to_compact(),
            canonical_service_json("H2:4.0").to_compact()
        );
    }

    #[test]
    fn nash_solve_produces_envy_free_fs_equilibrium() {
        let spec = NashSpec {
            discipline: "fs".into(),
            users: vec![
                UtilityParam {
                    family: "log".into(),
                    a: 0.5,
                    b: 1.0,
                },
                UtilityParam {
                    family: "linear".into(),
                    a: 1.0,
                    b: 0.4,
                },
            ],
        };
        let out = spec.solve().unwrap();
        assert!(out.converged);
        assert!(out.max_envy <= 1e-6);
        let text = out.render_text();
        assert!(text.starts_with("Nash equilibrium under fair share:"));
        assert!(text.ends_with("(<= 0 means envy-free)\n"));
        let json = out.to_json().to_compact();
        assert!(json.contains("\"converged\":true"), "{json}");
    }

    #[test]
    fn simulate_outcome_matches_probe_invariance() {
        let spec = SimulateSpec {
            rates: vec![0.2, 0.1],
            discipline: "fs".into(),
            horizon: 2000.0,
            warmup: None,
            windows: None,
            seed: 5,
            service: "M".into(),
        };
        let plain = spec.outcome().unwrap();
        let mut probe = greednet_telemetry::NoopProbe;
        let probed = spec.outcome_probed(&mut probe).unwrap();
        assert_eq!(plain, probed);
        assert_eq!(plain.render_text(), probed.render_text());
    }

    #[test]
    fn table_and_protect_render() {
        let t = TableSpec {
            rates: vec![0.05, 0.1, 0.2],
        }
        .outcome();
        assert!(t.render_text().contains("L2"));
        let p = ProtectSpec {
            n: 4,
            victim: 0.1,
            discipline: "fs".into(),
        }
        .outcome()
        .unwrap();
        assert!(p.protected);
        assert!(p.render_text().contains("PROTECTED"));
        assert!(ProtectSpec {
            n: 0,
            victim: 0.1,
            discipline: "fs".into()
        }
        .outcome()
        .is_err());
        assert!(ProtectSpec {
            n: 4,
            victim: 2.0,
            discipline: "fs".into()
        }
        .outcome()
        .is_err());
    }

    #[test]
    fn exp_spec_runs_smoke_experiment() {
        let spec = ExpSpec {
            exp: "t1".into(),
            seed: 0,
            threads: 1,
            smoke: true,
        };
        let json = spec.run_json().unwrap().to_compact();
        assert!(json.contains("\"id\":\"t1\""), "{json}");
        assert!(ExpSpec {
            exp: "zzz".into(),
            seed: 0,
            threads: 1,
            smoke: true
        }
        .run_json()
        .is_err());
    }
}
