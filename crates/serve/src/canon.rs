//! Request canonicalization and the dependency-free hash behind the
//! result cache.
//!
//! Two requests that mean the same scenario must map to the same cache
//! key, and any semantic difference must change it. The contract:
//!
//! 1. **Typed canonical form.** The service canonicalizes the *typed*
//!    request (see `Request::canonical_json`), not the raw text: every
//!    optional field is filled with its explicit default and alias names
//!    (`fairshare` vs `fs`) are resolved before hashing, so
//!    explicit-vs-default and alias spellings collide as intended.
//!    Whitespace and key order in the wire text are already erased by
//!    parsing.
//! 2. **Sorted keys.** [`canonical_string`] emits object keys in sorted
//!    byte order regardless of their stored order.
//! 3. **Normalized floats.** Numbers are encoded by their IEEE-754 bit
//!    pattern after collapsing `-0.0` to `0.0` (and any NaN to the one
//!    canonical quiet NaN), the same `total_cmp`-safe treatment the
//!    workspace applies to float ordering. Two floats hash alike iff
//!    they are the same real value; `0.1 + 0.2` and `0.3` differ, by
//!    design — the cache must never conflate bitwise-distinct inputs.
//! 4. **Length-prefixed strings.** String content is length-prefixed so
//!    concatenation ambiguities (`"ab"+"c"` vs `"a"+"bc"`) cannot
//!    collide.
//!
//! The key is the 128-bit FNV-1a hash of the canonical encoding —
//! implemented locally (like `SplitMix64` in `greednet-runtime`) to keep
//! the crate dependency-free. 128 bits makes accidental collisions
//! negligible at any realistic cache population; a 64-bit variant is
//! exposed for cheap fingerprints.

use crate::json::Json;

/// FNV-1a offset basis, 64-bit.
const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime, 64-bit.
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
/// FNV-1a offset basis, 128-bit.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a prime, 128-bit (2^88 + 2^8 + 0x3b).
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// 64-bit FNV-1a over `bytes`.
// gn:hot
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// 128-bit FNV-1a over `bytes`.
// gn:hot
#[must_use]
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// Collapses the float cases the cache must not distinguish: `-0.0`
/// becomes `0.0` and every NaN becomes the canonical quiet NaN. All
/// other values (including subnormals and infinities) keep their exact
/// bit pattern.
#[must_use]
pub fn normalize_f64_bits(x: f64) -> u64 {
    if x == 0.0 {
        0 // +0.0 and -0.0 compare equal; both map to the +0.0 pattern.
    } else if x.is_nan() {
        0x7ff8_0000_0000_0000
    } else {
        x.to_bits()
    }
}

/// Canonical, self-delimiting encoding of a JSON value (see module docs).
#[must_use]
pub fn canonical_string(value: &Json) -> String {
    let mut out = String::new();
    encode(value, &mut out);
    out
}

fn encode(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push('n'),
        Json::Bool(true) => out.push('t'),
        Json::Bool(false) => out.push('f'),
        Json::Num(x) => {
            out.push('d');
            out.push_str(&format!("{:016x}", normalize_f64_bits(*x)));
        }
        Json::Str(s) => encode_str(s, out),
        Json::Arr(items) => {
            out.push('[');
            for item in items {
                encode(item, out);
                out.push(',');
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            let mut keys: Vec<usize> = (0..pairs.len()).collect();
            keys.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0));
            out.push('{');
            for i in keys {
                let (k, v) = &pairs[i];
                encode_str(k, out);
                out.push('=');
                encode(v, out);
                out.push(';');
            }
            out.push('}');
        }
        // Raw is a writer-side splice for responses; it never appears in
        // a request, but encode it defensively by content.
        Json::Raw(body) => {
            out.push('r');
            encode_str(body, out);
        }
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('s');
    out.push_str(&format!("{}:", s.len()));
    out.push_str(s);
}

/// The cache key of a canonical-form value: 128-bit FNV-1a of
/// [`canonical_string`].
#[must_use]
pub fn canonical_key(value: &Json) -> u128 {
    fnv1a_128(canonical_string(value).as_bytes())
}

/// Fixed-width lowercase hex rendering of a cache key.
#[must_use]
pub fn key_hex(key: u128) -> String {
    format!("{key:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv1a_128(b""), FNV128_OFFSET);
        assert_ne!(fnv1a_128(b"a"), fnv1a_128(b"b"));
    }

    #[test]
    fn key_order_and_whitespace_do_not_matter() {
        let a = parse(r#"{"x":1,"y":[2,3]}"#).unwrap();
        let b = parse(" { \"y\" : [ 2 , 3 ] , \"x\" : 1 } ").unwrap();
        assert_eq!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn negative_zero_collapses_and_values_distinguish() {
        let a = parse(r#"{"v":0.0}"#).unwrap();
        let b = parse(r#"{"v":-0.0}"#).unwrap();
        let c = parse(r#"{"v":1e-300}"#).unwrap();
        assert_eq!(canonical_key(&a), canonical_key(&b));
        assert_ne!(canonical_key(&a), canonical_key(&c));
    }

    #[test]
    fn string_length_prefix_prevents_concatenation_collisions() {
        let a = parse(r#"["ab","c"]"#).unwrap();
        let b = parse(r#"["a","bc"]"#).unwrap();
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn type_tags_prevent_cross_type_collisions() {
        for (a, b) in [
            ("null", "\"n\""),
            ("true", "\"t\""),
            ("[]", "{}"),
            ("0", "false"),
        ] {
            assert_ne!(
                canonical_key(&parse(a).unwrap()),
                canonical_key(&parse(b).unwrap()),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn key_hex_is_fixed_width() {
        assert_eq!(key_hex(0).len(), 32);
        assert_eq!(key_hex(u128::MAX).len(), 32);
    }
}
