//! The service loop: requests in, records out, over stdio or TCP.
//!
//! One [`Service`] owns the result cache and is shared by every
//! connection. Single requests execute on the caller's thread; `batch`
//! requests fan their cache misses onto the deterministic scoped pool
//! (`parallel_map_indexed`), which merges results in task order — so
//! response bytes are independent of the pool width and of how clients
//! interleave, and any repeated scenario is answered from the cache with
//! the exact bytes of the first computation.
//!
//! Transport is line-delimited JSON over either stdin/stdout or a
//! hand-rolled TCP loop (one thread per connection, no external crates):
//! requests are newline-terminated JSON objects, responses are
//! newline-terminated records, flushed after every record so clients can
//! stream.

use crate::cache::{CacheStats, ResultCache};
use crate::error::ServeError;
use crate::request::{
    accepted_record, error_record, progress_record, result_record, stats_record, Request,
    RequestKind,
};
use greednet_runtime::parallel_map_indexed;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// Service configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads for `batch` fan-out (response bytes are identical
    /// at any width; this only changes wall-clock time).
    pub threads: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 1,
            cache_capacity: 1024,
        }
    }
}

/// The shared scenario service.
pub struct Service {
    threads: usize,
    cache: Mutex<ResultCache>,
    shutdown: AtomicBool,
}

impl Service {
    /// Builds a service with the given options.
    #[must_use]
    pub fn new(opts: ServeOptions) -> Service {
        Service {
            threads: opts.threads.max(1),
            cache: Mutex::new(ResultCache::new(opts.cache_capacity)),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Current cache counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    /// Whether a `shutdown` request has been handled.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, ResultCache> {
        // A poisoned lock means another connection thread panicked
        // mid-operation; the cache's state is still a consistent map
        // (both indexes are updated before any compute), so recover it.
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Executes one cacheable request kind, going through the cache.
    /// Returns the payload bytes and whether they came from the cache.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] from the underlying computation, or for
    /// kinds that have no payload (`batch`/`stats`/`shutdown`).
    pub fn execute(&self, kind: &RequestKind) -> Result<(String, bool), ServeError> {
        let Some(key) = kind.cache_key() else {
            return Err(ServeError::BadRequest(
                "this request kind has no single result payload".into(),
            ));
        };
        if let Some(payload) = self.lock_cache().get(key) {
            return Ok((payload, true));
        }
        let payload = compute_payload(kind)?;
        self.lock_cache().insert(key, payload.clone());
        Ok((payload, false))
    }

    /// Serves one request stream: reads JSONL requests from `reader`,
    /// writes JSONL records to `writer`, flushing after each record.
    /// Returns `true` if the stream ended because of a `shutdown`
    /// request (the flag is also set on the service).
    ///
    /// # Errors
    /// [`ServeError::Io`] when the transport fails. Request-level
    /// failures are answered with `error` records and never propagate.
    pub fn serve_stream<R: BufRead, W: Write>(
        &self,
        reader: R,
        mut writer: W,
    ) -> Result<bool, ServeError> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let req = match Request::parse_line(&line) {
                Ok(req) => req,
                Err(e) => {
                    emit(&mut writer, &error_record(None, &e))?;
                    continue;
                }
            };
            let id = req.id.as_deref();
            // Latch the flag before any write: a client may send
            // `shutdown` and close immediately, making every subsequent
            // emit fail — the shutdown must still be observed.
            if matches!(req.kind, RequestKind::Shutdown) {
                self.shutdown.store(true, Ordering::SeqCst);
            }
            emit(&mut writer, &accepted_record(id, req.kind.cache_key()))?;
            match &req.kind {
                RequestKind::Stats => {
                    emit(&mut writer, &stats_record(id, &self.stats()))?;
                }
                RequestKind::Shutdown => {
                    emit(
                        &mut writer,
                        &result_record(id, false, r#"{"stopping":true}"#),
                    )?;
                    return Ok(true);
                }
                RequestKind::Batch(subs) => {
                    self.serve_batch(&mut writer, id, subs)?;
                }
                _ => {
                    if self.peek_cached(&req.kind) {
                        // Answered from cache: no compute stage.
                    } else {
                        emit(&mut writer, &progress_record(id, "compute"))?;
                    }
                    match self.execute(&req.kind) {
                        Ok((payload, cached)) => {
                            emit(&mut writer, &result_record(id, cached, &payload))?;
                        }
                        Err(e) => emit(&mut writer, &error_record(id, &e))?,
                    }
                }
            }
        }
        Ok(false)
    }

    /// Whether the request is already cached (without counting a lookup).
    fn peek_cached(&self, kind: &RequestKind) -> bool {
        kind.cache_key()
            .is_some_and(|key| self.lock_cache().contains(key))
    }

    /// Runs a batch: probes the cache for every sub-request, computes the
    /// distinct misses on the deterministic pool, and emits one
    /// result/error record per sub-request in submission order.
    fn serve_batch<W: Write>(
        &self,
        writer: &mut W,
        batch_id: Option<&str>,
        subs: &[Request],
    ) -> Result<(), ServeError> {
        // Probe phase: collect hits and deduplicate misses by key.
        let mut probed: Vec<Result<(u128, Option<String>), ServeError>> =
            Vec::with_capacity(subs.len());
        let mut miss_keys: BTreeMap<u128, usize> = BTreeMap::new();
        let mut tasks: Vec<&RequestKind> = Vec::new();
        {
            let mut cache = self.lock_cache();
            for sub in subs {
                match sub.kind.cache_key() {
                    Some(key) => {
                        let hit = cache.get(key);
                        if hit.is_none() && !miss_keys.contains_key(&key) {
                            miss_keys.insert(key, tasks.len());
                            tasks.push(&sub.kind);
                        }
                        probed.push(Ok((key, hit)));
                    }
                    None => probed.push(Err(ServeError::BadRequest(
                        "only nash/simulate/table/protect/exp/largen requests may appear in a batch"
                            .into(),
                    ))),
                }
            }
        }
        if !tasks.is_empty() {
            emit(
                writer,
                &progress_record(
                    batch_id,
                    &format!("compute {} of {}", tasks.len(), subs.len()),
                ),
            )?;
        }
        // Compute phase: distinct misses fan out on the deterministic
        // pool; results merge in task-index order.
        let computed =
            parallel_map_indexed(self.threads, tasks.len(), |i| compute_payload(tasks[i]));
        {
            let mut cache = self.lock_cache();
            for (key, &task) in miss_keys.iter().map(|(k, v)| (*k, v)) {
                if let Ok(payload) = &computed[task] {
                    cache.insert(key, payload.clone());
                }
            }
        }
        // Emit phase: one record per sub-request, in submission order.
        for (sub, probe) in subs.iter().zip(&probed) {
            let sub_id = sub.id.as_deref().or(batch_id);
            match probe {
                Err(e) => emit(writer, &error_record(sub_id, e))?,
                Ok((_, Some(payload))) => emit(writer, &result_record(sub_id, true, payload))?,
                Ok((key, None)) => match miss_keys.get(key).map(|&i| &computed[i]) {
                    Some(Ok(payload)) => {
                        emit(writer, &result_record(sub_id, false, payload))?;
                    }
                    Some(Err(e)) => emit(writer, &error_record(sub_id, e))?,
                    None => emit(
                        writer,
                        &error_record(
                            sub_id,
                            &ServeError::BadRequest("batch bookkeeping lost a task".into()),
                        ),
                    )?,
                },
            }
        }
        Ok(())
    }

    /// Serves stdin/stdout until EOF or a `shutdown` request.
    ///
    /// # Errors
    /// [`ServeError::Io`] when stdio fails.
    pub fn serve_stdio(&self) -> Result<(), ServeError> {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        self.serve_stream(stdin.lock(), BufWriter::new(stdout.lock()))?;
        Ok(())
    }

    /// Binds `addr` and serves TCP connections (one thread each) until a
    /// `shutdown` request arrives on any connection. Returns the bound
    /// local address via `on_bound` before accepting (use it to learn
    /// the port when binding `127.0.0.1:0`).
    ///
    /// # Errors
    /// [`ServeError::Io`] if the bind fails; per-connection failures are
    /// contained to their connection.
    pub fn serve_tcp<F: FnOnce(std::net::SocketAddr)>(
        &self,
        addr: &str,
        on_bound: F,
    ) -> Result<(), ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        on_bound(local);
        std::thread::scope(|scope| {
            for stream in listener.incoming() {
                if self.shutdown_requested() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                scope.spawn(move || self.serve_connection(stream, local));
            }
        });
        Ok(())
    }

    /// Handles one TCP connection; when the stream ends with the
    /// shutdown flag latched, pokes the listener with a no-op connection
    /// so its blocking `accept` wakes up and observes the flag. The poke
    /// is keyed off the flag, not the stream result: a client that sends
    /// `shutdown` and disconnects makes the response writes fail with a
    /// broken pipe, and the shutdown must still take effect.
    fn serve_connection(&self, stream: TcpStream, local: std::net::SocketAddr) {
        let reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => return,
        };
        let stopped = self.serve_stream(reader, BufWriter::new(stream));
        if matches!(stopped, Ok(true)) || self.shutdown_requested() {
            drop(TcpStream::connect(local));
        }
    }
}

/// Computes the payload bytes for one cacheable request kind.
fn compute_payload(kind: &RequestKind) -> Result<String, ServeError> {
    match kind {
        RequestKind::Nash(s) => Ok(s.solve()?.to_json().to_compact()),
        RequestKind::Simulate(s) => Ok(s.outcome()?.to_json().to_compact()),
        RequestKind::Table(s) => Ok(s.outcome().to_json().to_compact()),
        RequestKind::Protect(s) => Ok(s.outcome()?.to_json().to_compact()),
        RequestKind::Exp(s) => Ok(s.run_json()?.to_compact()),
        RequestKind::Largen(s) => Ok(s.solve()?.to_json().to_compact()),
        RequestKind::Batch(_) | RequestKind::Stats | RequestKind::Shutdown => Err(
            ServeError::BadRequest("this request kind has no single result payload".into()),
        ),
    }
}

fn emit<W: Write>(writer: &mut W, record: &str) -> Result<(), ServeError> {
    writer.write_all(record.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_lines(service: &Service, lines: &str) -> Vec<String> {
        let mut out = Vec::new();
        service
            .serve_stream(lines.as_bytes(), &mut out)
            .expect("stream");
        String::from_utf8(out)
            .expect("utf8")
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn single_request_misses_then_hits_with_identical_payload() {
        let service = Service::new(ServeOptions::default());
        let line = r#"{"kind":"table","id":"t","rates":[0.05,0.1,0.2]}"#;
        let first = run_lines(&service, line);
        let second = run_lines(&service, line);
        // miss: accepted, progress, result; hit: accepted, result.
        assert_eq!(first.len(), 3);
        assert_eq!(second.len(), 2);
        assert!(first[2].contains(r#""cached":false"#));
        assert!(second[1].contains(r#""cached":true"#));
        let data = |rec: &str| rec.split(r#""data":"#).nth(1).map(String::from);
        assert_eq!(data(&first[2]), data(&second[1]));
        let stats = service.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn parse_and_request_errors_do_not_kill_the_stream() {
        let service = Service::new(ServeOptions::default());
        let out = run_lines(
            &service,
            "not json\n{\"kind\":\"protect\",\"n\":0}\n{\"kind\":\"stats\"}\n",
        );
        assert!(out[0].contains(r#""error":"parse""#));
        // protect with n=0: accepted, progress, then a bad_request error.
        assert!(out[1].contains(r#""type":"accepted""#));
        assert!(out[3].contains(r#""error":"bad_request""#));
        assert!(out[3].contains("--n must be >= 1"));
        // The stream is still alive and answers stats.
        assert!(out.last().expect("records").contains(r#""type":"stats""#));
    }

    #[test]
    fn batch_deduplicates_and_preserves_order() {
        let service = Service::new(ServeOptions {
            threads: 4,
            cache_capacity: 64,
        });
        let out = run_lines(
            &service,
            r#"{"kind":"batch","id":"b","requests":[
                {"kind":"table","id":"s1","rates":[0.1,0.2]},
                {"kind":"protect","id":"s2","n":4,"victim":0.1},
                {"kind":"table","id":"s3","rates":[0.1,0.2]},
                {"kind":"stats","id":"s4"}]}"#
                .replace('\n', " ")
                .as_str(),
        );
        let results: Vec<&String> = out
            .iter()
            .filter(|l| l.contains(r#""type":"result""#) || l.contains(r#""type":"error""#))
            .collect();
        assert_eq!(results.len(), 4);
        assert!(results[0].contains(r#""id":"s1""#));
        assert!(results[1].contains(r#""id":"s2""#));
        assert!(results[2].contains(r#""id":"s3""#));
        assert!(results[3].contains(r#""error":"bad_request""#));
        // s1 and s3 share one computation: only two misses were computed.
        let stats = service.stats();
        assert_eq!(stats.entries, 2);
        // duplicate probe for s3 counted as a miss but produced no task.
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn batch_payloads_are_thread_count_invariant() {
        let batch = r#"{"kind":"batch","requests":[{"kind":"nash","id":"a"},{"kind":"table","id":"b","rates":[0.05,0.1,0.2]},{"kind":"protect","id":"c"}]}"#;
        let mut outputs = Vec::new();
        for threads in [1usize, 4, 8] {
            let service = Service::new(ServeOptions {
                threads,
                cache_capacity: 0,
            });
            outputs.push(run_lines(&service, batch).join("\n"));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn shutdown_stops_the_stream_and_sets_the_flag() {
        let service = Service::new(ServeOptions::default());
        let out = run_lines(
            &service,
            "{\"kind\":\"shutdown\",\"id\":\"z\"}\n{\"kind\":\"stats\"}\n",
        );
        assert!(service.shutdown_requested());
        // The trailing stats request is never served.
        assert!(out.last().expect("records").contains("stopping"));
    }

    #[test]
    fn tcp_round_trip_serves_and_shuts_down() {
        let service = Service::new(ServeOptions::default());
        std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::channel();
            scope.spawn(|| {
                service
                    .serve_tcp("127.0.0.1:0", move |addr| {
                        tx.send(addr).expect("send addr");
                    })
                    .expect("serve_tcp");
            });
            let addr = rx.recv().expect("bound addr");
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"{\"kind\":\"table\",\"id\":\"x\",\"rates\":[0.1]}\n")
                .expect("send");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("accepted");
            assert!(line.contains("accepted"), "{line}");
            stream
                .write_all(b"{\"kind\":\"shutdown\"}\n")
                .expect("send");
            // Drain until the connection closes.
            let mut rest = String::new();
            while reader.read_line(&mut rest).is_ok_and(|n| n > 0) {}
            assert!(rest.contains("stopping") || line.contains("stopping"));
        });
        assert!(service.shutdown_requested());
    }
}
