//! The service's error type and its exit-code contract.

use std::fmt;

/// Any error the scenario service can produce.
///
/// The three variants partition failures by who must act:
///
/// * [`Parse`](ServeError::Parse) — the request line is not valid JSON or
///   not a valid request shape; the client must fix the request syntax.
/// * [`BadRequest`](ServeError::BadRequest) — the request parsed but its
///   semantics are invalid (unknown discipline, out-of-range parameter,
///   unknown experiment id); the message is the same text the CLI
///   commands print for the equivalent flag error.
/// * [`Io`](ServeError::Io) — the transport failed (socket, stdin); the
///   operator must act.
///
/// Exit-code contract of `greednet serve` (mirrors `greednet-lint`'s
/// documented contract): exit 0 on a clean shutdown (EOF on stdin or a
/// `shutdown` request), exit 1 on a transport/runtime failure
/// (`ServeError` escaping the serve loop), exit 2 on bad command-line
/// usage. Per-request `Parse`/`BadRequest` failures never kill the
/// service: they are answered with an `error` record on the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Malformed request: invalid JSON or an invalid request shape.
    Parse(String),
    /// Semantically invalid request. Displays as the bare message so the
    /// CLI commands that share the data path keep their historical error
    /// strings byte-for-byte.
    BadRequest(String),
    /// Transport failure (socket or stdio).
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(msg) => write!(f, "parse error: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "{msg}"),
            ServeError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_request_displays_bare_message() {
        let e = ServeError::BadRequest("unknown discipline 'x' (use fifo/fs/sp)".into());
        assert_eq!(e.to_string(), "unknown discipline 'x' (use fifo/fs/sp)");
    }

    #[test]
    fn parse_and_io_are_prefixed() {
        assert!(ServeError::Parse("x".into())
            .to_string()
            .starts_with("parse error:"));
        assert!(ServeError::Io("x".into())
            .to_string()
            .starts_with("io error:"));
    }
}
