//! A minimal JSON value model, parser, and writer.
//!
//! The workspace is dependency-free by policy (the build container has no
//! crates.io access), so the service hand-rolls the little JSON it needs,
//! the same way the experiment reports hand-roll their emitters. The
//! dialect is deliberately strict:
//!
//! * numbers must be finite (`1e999` is rejected, not folded to `inf`);
//! * object keys must be unique — duplicate keys would make the
//!   canonical-hash contract ambiguous (see [`crate::canon`]);
//! * nesting depth is bounded, so a hostile request cannot blow the
//!   parser's stack.
//!
//! Objects preserve insertion order as a `Vec` of pairs rather than a
//! hash map: iteration order stays deterministic (the workspace bans
//! randomized-order containers in deterministic crates, GN01) and the
//! canonicalizer re-sorts keys itself.

use crate::error::ServeError;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: u32 = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs (keys unique).
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON spliced verbatim by the writer (used to embed
    /// an already-rendered experiment report without re-parsing it).
    /// Never produced by the parser.
    Raw(String),
}

impl Json {
    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// The value as object pairs, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs.as_slice()),
            _ => None,
        }
    }

    /// Compact single-line rendering (no spaces, keys in stored order).
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&write_f64(*x)),
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            Json::Raw(body) => out.push_str(body),
        }
    }
}

/// Renders an `f64` as JSON: shortest-roundtrip `Display`, with a `.0`
/// marker appended to integral values so the token stays a float, and
/// `null` for non-finite values (mirrors the experiment-report emitter).
#[must_use]
pub fn write_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Escapes `s` into `out` as a JSON string literal (with quotes).
fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing content other than whitespace is an
/// error.
///
/// # Errors
/// [`ServeError::Parse`] with a byte offset and description.
pub fn parse(input: &str) -> Result<Json, ServeError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ServeError {
        ServeError::Parse(format!("at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ServeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", char::from(b))))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, ServeError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, ServeError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, ServeError> {
        self.eat(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!(
                    "duplicate object key {key:?} (ambiguous under the canonical hash)"
                )));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ServeError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; input is a &str so the bytes
                    // are valid UTF-8 by construction.
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    if let Some(chunk) = self
                        .bytes
                        .get(start..self.pos)
                        .and_then(|raw| std::str::from_utf8(raw).ok())
                    {
                        out.push_str(chunk);
                    } else {
                        return Err(self.err("invalid UTF-8 sequence"));
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ServeError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = char::from(d)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, ServeError> {
        let first = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // an escaped low surrogate.
        let code = if (0xD800..0xDC00).contains(&first) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u')
                    .map_err(|_| self.err("high surrogate not followed by \\u"))?;
                let second = self.hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(self.err("invalid low surrogate"));
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            } else {
                return Err(self.err("lone high surrogate"));
            }
        } else if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("lone low surrogate"));
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode scalar"))
    }

    fn number(&mut self) -> Result<Json, ServeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|raw| std::str::from_utf8(raw).ok())
            .ok_or_else(|| self.err("bad number"))?;
        let value: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number {text:?}")))?;
        if !value.is_finite() {
            return Err(self.err(&format!("non-finite number {text:?}")));
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"b":[1,2],"a":{"x":null}}"#).unwrap();
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(v.get("a").and_then(|a| a.get("x")).is_some());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "{",
            "[1,",
            "{\"a\":}",
            "1 2",
            "\"\\q\"",
            "1e999",
            "{\"a\":1,\"a\":2}",
            "nan",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("😀".into()));
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn compact_rendering_round_trips() {
        let src = r#"{"name":"x","vals":[1.5,2.0,-0.25],"flag":false,"none":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_compact(), src);
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn float_writer_keeps_decimal_marker() {
        assert_eq!(write_f64(2.0), "2.0");
        assert_eq!(write_f64(0.5), "0.5");
        assert_eq!(write_f64(f64::NAN), "null");
    }

    #[test]
    fn raw_splices_verbatim() {
        let v = Json::Obj(vec![("r".into(), Json::Raw("{\"x\":1}".into()))]);
        assert_eq!(v.to_compact(), "{\"r\":{\"x\":1}}");
    }
}
