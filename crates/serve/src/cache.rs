//! Bounded LRU cache from canonical request keys to rendered result
//! payloads.
//!
//! The cache stores the exact bytes of the `data` payload that answered
//! the original miss, so a hit is bitwise-identical to the computation it
//! replaces — that is the whole point: the deterministic engine
//! guarantees recomputation would produce the same bytes, so serving the
//! stored bytes is indistinguishable from solving again, only O(1).
//!
//! Recency is tracked with a logical tick counter (never wall-clock time:
//! the service is subject to the workspace's GN02 no-wall-clock rule and
//! its behavior must not depend on timing). Both indexes are `BTreeMap`s
//! — deterministic iteration order, GN01-clean — giving O(log n) hits,
//! inserts, and evictions.

use greednet_telemetry::Counter;
use std::collections::BTreeMap;

/// Snapshot of the cache's counters and occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required computation.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Maximum entries (0 disables storage entirely).
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    payload: String,
    stamp: u64,
}

/// A bounded least-recently-used map `canonical key -> payload bytes`.
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    by_key: BTreeMap<u128, Entry>,
    by_stamp: BTreeMap<u64, u128>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl ResultCache {
    /// Cache holding at most `capacity` entries (`0` disables storage:
    /// every lookup misses and nothing is retained).
    #[must_use]
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            tick: 0,
            by_key: BTreeMap::new(),
            by_stamp: BTreeMap::new(),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `key`, refreshing its recency on a hit. Counts the
    /// lookup as a hit or miss.
    pub fn get(&mut self, key: u128) -> Option<String> {
        let stamp = self.next_tick();
        match self.by_key.get_mut(&key) {
            Some(entry) => {
                self.by_stamp.remove(&entry.stamp);
                entry.stamp = stamp;
                let payload = entry.payload.clone();
                self.by_stamp.insert(stamp, key);
                self.hits.inc();
                Some(payload)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Stores `payload` under `key`, evicting the least-recently-used
    /// entry if the cache is full. Re-inserting an existing key refreshes
    /// its recency and keeps the first payload (the engine is
    /// deterministic, so a recomputed payload is bitwise the same).
    pub fn insert(&mut self, key: u128, payload: String) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.next_tick();
        if let Some(entry) = self.by_key.get_mut(&key) {
            self.by_stamp.remove(&entry.stamp);
            entry.stamp = stamp;
            self.by_stamp.insert(stamp, key);
            return;
        }
        if self.by_key.len() >= self.capacity {
            // The smallest stamp is the least recently used entry.
            if let Some((&oldest, &victim)) = self.by_stamp.iter().next() {
                self.by_stamp.remove(&oldest);
                self.by_key.remove(&victim);
                self.evictions.inc();
            }
        }
        self.by_key.insert(key, Entry { payload, stamp });
        self.by_stamp.insert(stamp, key);
    }

    /// Whether `key` is present, without touching recency or counters
    /// (used to decide whether a `progress` record is worth emitting).
    #[must_use]
    pub fn contains(&self, key: u128) -> bool {
        self.by_key.contains_key(&key)
    }

    /// Counter and occupancy snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            entries: self.by_key.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_returns_identical_bytes() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get(1), None);
        c.insert(1, "{\"x\":1.0}".into());
        assert_eq!(c.get(1).as_deref(), Some("{\"x\":1.0}"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        assert!(c.get(1).is_some()); // 2 is now LRU
        c.insert(3, "c".into());
        assert_eq!(c.get(2), None, "LRU entry evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = ResultCache::new(0);
        c.insert(1, "a".into());
        assert_eq!(c.get(1), None);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn reinsert_refreshes_recency_without_duplicating() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        c.insert(1, "a".into()); // refresh: 2 becomes LRU
        c.insert(3, "c".into());
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1).as_deref(), Some("a"));
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn hit_rate_is_a_fraction() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(1, "a".into());
        let _ = c.get(1);
        let _ = c.get(9);
        let r = c.stats().hit_rate();
        assert!((r - 0.5).abs() < 1e-12, "{r}");
    }
}
