//! Property tests of the canonical-hash contract (the cache's
//! correctness boundary): requests that mean the same scenario must hash
//! alike, and any semantic difference must change the key.

use greednet_serve::{Request, ResultCache};
use proptest::prelude::*;

fn key_of(line: &str) -> u128 {
    Request::parse_line(line)
        .expect("valid request line")
        .kind
        .cache_key()
        .expect("cacheable kind")
}

/// Strategy: a protect request's scalar fields.
fn protect_fields() -> impl Strategy<Value = (usize, f64)> {
    ((1usize..50), 0.001..0.999f64)
}

/// Strategy: a simulate request's rates plus seed.
fn sim_fields() -> impl Strategy<Value = (Vec<f64>, u64)> {
    (
        proptest::collection::vec(0.01..0.45f64, 1..4),
        0u64..1_000_000,
    )
}

fn rates_json(rates: &[f64]) -> String {
    let items: Vec<String> = rates.iter().map(|r| format!("{r}")).collect();
    format!("[{}]", items.join(","))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn key_order_and_whitespace_never_change_the_key((n, victim) in protect_fields()) {
        let a = format!(r#"{{"kind":"protect","n":{n},"victim":{victim},"discipline":"fs"}}"#);
        let b = format!(
            "  {{ \"discipline\" : \"fs\" ,\n  \"victim\": {victim}, \"n\": {n}, \"kind\": \"protect\" }}  "
        );
        prop_assert_eq!(key_of(&a), key_of(&b));
    }

    #[test]
    fn omitted_fields_hash_like_explicit_defaults((rates, seed) in sim_fields()) {
        let r = rates_json(&rates);
        let sparse = format!(r#"{{"kind":"simulate","rates":{r},"seed":{seed}}}"#);
        let full = format!(
            r#"{{"kind":"simulate","rates":{r},"seed":{seed},"discipline":"fairshare","horizon":100000,"warmup":10000,"windows":32,"service":"m"}}"#
        );
        prop_assert_eq!(key_of(&sparse), key_of(&full));
    }

    #[test]
    fn client_id_never_enters_the_key((n, victim) in protect_fields()) {
        let bare = format!(r#"{{"kind":"protect","n":{n},"victim":{victim}}}"#);
        let tagged = format!(r#"{{"kind":"protect","id":"client-{n}","n":{n},"victim":{victim}}}"#);
        prop_assert_eq!(key_of(&bare), key_of(&tagged));
    }

    #[test]
    fn negative_zero_rates_hash_like_positive_zero(seed in 0u64..1000) {
        let a = format!(r#"{{"kind":"simulate","rates":[0.0,0.3],"seed":{seed}}}"#);
        let b = format!(r#"{{"kind":"simulate","rates":[-0.0,0.3],"seed":{seed}}}"#);
        prop_assert_eq!(key_of(&a), key_of(&b));
    }

    #[test]
    fn any_changed_scalar_changes_the_key((n, victim) in protect_fields(), (rates, seed) in sim_fields()) {
        // protect: perturb each scalar in turn.
        let base = format!(r#"{{"kind":"protect","n":{n},"victim":{victim},"discipline":"fs"}}"#);
        let bumped_n = format!(r#"{{"kind":"protect","n":{},"victim":{victim},"discipline":"fs"}}"#, n + 1);
        let bumped_victim = format!(
            r#"{{"kind":"protect","n":{n},"victim":{},"discipline":"fs"}}"#,
            victim * 0.5 + 1e-4
        );
        let other_disc = format!(r#"{{"kind":"protect","n":{n},"victim":{victim},"discipline":"fifo"}}"#);
        prop_assert_ne!(key_of(&base), key_of(&bumped_n));
        prop_assert_ne!(key_of(&base), key_of(&other_disc));
        if (victim * 0.5 + 1e-4 - victim).abs() > 0.0 {
            prop_assert_ne!(key_of(&base), key_of(&bumped_victim));
        }
        // simulate: seed and rates are part of the scenario.
        let r = rates_json(&rates);
        let sim = format!(r#"{{"kind":"simulate","rates":{r},"seed":{seed}}}"#);
        let sim_seed = format!(r#"{{"kind":"simulate","rates":{r},"seed":{}}}"#, seed + 1);
        prop_assert_ne!(key_of(&sim), key_of(&sim_seed));
        let mut bumped = rates.clone();
        bumped[0] += 1e-3;
        let sim_rates = format!(r#"{{"kind":"simulate","rates":{},"seed":{seed}}}"#, rates_json(&bumped));
        prop_assert_ne!(key_of(&sim), key_of(&sim_rates));
    }

    #[test]
    fn kinds_with_identical_fields_do_not_collide((rates, _seed) in sim_fields()) {
        let r = rates_json(&rates);
        let table = format!(r#"{{"kind":"table","rates":{r}}}"#);
        let sim = format!(r#"{{"kind":"simulate","rates":{r}}}"#);
        prop_assert_ne!(key_of(&table), key_of(&sim));
    }

    #[test]
    fn cache_hits_return_bitwise_identical_bytes(payload_bits in proptest::collection::vec(0u64..u64::MAX, 1..8)) {
        // Payload with awkward float bytes rendered in: the cache must
        // return them untouched.
        let payload: String = payload_bits
            .iter()
            .map(|b| format!("{:.17e},", f64::from_bits(*b | 1)))
            .collect();
        let mut cache = ResultCache::new(8);
        let key = u128::from(payload_bits[0]);
        cache.insert(key, payload.clone());
        let hit = cache.get(key).expect("hit");
        prop_assert_eq!(hit.as_bytes(), payload.as_bytes());
    }
}
