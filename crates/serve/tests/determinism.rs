//! End-to-end determinism: the service must return bitwise-identical
//! payload bytes for every request id regardless of the pool thread
//! count (1/4/8), of how clients interleave over TCP, and of whether an
//! answer came from the cache or was recomputed.

use greednet_serve::json::{parse, Json};
use greednet_serve::{ServeOptions, Service};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// The scenario mix: all five request kinds, with some repeats so both
/// cache paths are exercised. `exp` pins its own `threads` (part of the
/// request), so its payload is independent of the service pool.
fn scenario_mix() -> Vec<String> {
    vec![
        r#"{"kind":"nash","id":"m-nash","users":"log:0.5,1.0;linear:1.0,0.4"}"#.into(),
        r#"{"kind":"simulate","id":"m-sim","rates":[0.2,0.1],"discipline":"fs","horizon":500,"seed":5}"#.into(),
        r#"{"kind":"table","id":"m-table","rates":[0.05,0.1,0.2]}"#.into(),
        r#"{"kind":"protect","id":"m-protect","n":4,"victim":0.1}"#.into(),
        r#"{"kind":"exp","id":"m-exp","exp":"t1","smoke":true,"threads":1}"#.into(),
        r#"{"kind":"table","id":"m-table-again","rates":[0.05,0.1,0.2]}"#.into(),
        r#"{"kind":"batch","id":"m-batch","requests":[{"kind":"table","id":"b-1","rates":[0.1,0.2]},{"kind":"protect","id":"b-2","n":6,"victim":0.05},{"kind":"table","id":"b-3","rates":[0.1,0.2]}]}"#.into(),
    ]
}

/// Extracts `"id" -> compact(data)` from the result records of a JSONL
/// response transcript.
fn payloads(records: &[String]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for record in records {
        let value = parse(record).expect("valid record json");
        if value.get("type").and_then(Json::as_str) != Some("result") {
            continue;
        }
        let id = value
            .get("id")
            .and_then(Json::as_str)
            .expect("result id")
            .to_string();
        let data = value.get("data").expect("result data").to_compact();
        out.insert(id, data);
    }
    out
}

/// Runs one client over TCP, returning every record line it received.
fn run_client(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut records = Vec::new();
    for line in lines {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        // Closed loop: read until this request's terminal record so
        // interleaving with the other client happens at request
        // granularity (ids in a batch line terminate with the last
        // sub-result, which carries the batch's final sub-id).
        let terminal_ids: Vec<String> = {
            let parsed = parse(line).expect("valid request json");
            match parsed.get("requests") {
                Some(Json::Arr(subs)) => subs
                    .last()
                    .and_then(|s| s.get("id"))
                    .and_then(Json::as_str)
                    .map(|s| vec![s.to_string()])
                    .unwrap_or_default(),
                _ => parsed
                    .get("id")
                    .and_then(Json::as_str)
                    .map(|s| vec![s.to_string()])
                    .unwrap_or_default(),
            }
        };
        loop {
            let mut record = String::new();
            let n = reader.read_line(&mut record).expect("recv");
            assert!(n > 0, "server closed mid-request");
            let record = record.trim().to_string();
            let value = parse(&record).expect("valid record");
            let kind = value.get("type").and_then(Json::as_str);
            let id = value.get("id").and_then(Json::as_str);
            records.push(record);
            if matches!(kind, Some("result" | "error"))
                && id.is_some_and(|i| terminal_ids.iter().any(|t| t == i))
            {
                break;
            }
        }
    }
    records
}

/// Serves `client_lines` (one Vec per concurrent client) on a fresh
/// service with the given pool width; returns the union of id->payload.
fn serve_mix(threads: usize, client_lines: &[Vec<String>]) -> BTreeMap<String, String> {
    let service = Service::new(ServeOptions {
        threads,
        cache_capacity: 256,
    });
    let mut merged = BTreeMap::new();
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel();
        let server = &service;
        scope.spawn(move || {
            server
                .serve_tcp("127.0.0.1:0", move |addr| {
                    tx.send(addr).expect("send addr");
                })
                .expect("serve_tcp");
        });
        let addr = rx.recv().expect("bound");
        let mut handles = Vec::new();
        for lines in client_lines {
            handles.push(scope.spawn(move || run_client(addr, lines)));
        }
        for handle in handles {
            let records = handle.join().expect("client");
            for (id, data) in payloads(&records) {
                // The same id must never map to different bytes, even
                // when two clients race on the same scenario.
                let prev = merged.insert(id.clone(), data.clone());
                assert!(
                    prev.is_none() || prev.as_deref() == Some(data.as_str()),
                    "id {id} diverged"
                );
            }
        }
        // Stop the accept loop.
        let mut stop = TcpStream::connect(addr).expect("connect");
        stop.write_all(b"{\"kind\":\"shutdown\"}\n").expect("send");
    });
    merged
}

#[test]
fn payloads_are_invariant_across_pool_widths_and_client_interleavings() {
    let mix = scenario_mix();
    // Client split A: one client runs the whole mix in order.
    let split_a = vec![mix.clone()];
    // Client split B: two clients interleave — one takes the even lines,
    // the other the odds, in reverse order, so arrival order at the
    // service differs run to run.
    let evens: Vec<String> = mix.iter().step_by(2).cloned().collect();
    let mut odds: Vec<String> = mix.iter().skip(1).step_by(2).cloned().collect();
    odds.reverse();
    let split_b = vec![evens, odds];

    let mut reference: Option<BTreeMap<String, String>> = None;
    for threads in [1usize, 4, 8] {
        for split in [&split_a, &split_b] {
            let got = serve_mix(threads, split);
            assert_eq!(
                got.len(),
                9,
                "expected one payload per distinct id at {threads} threads"
            );
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(want, &got, "payload bytes changed at {threads} threads"),
            }
        }
    }
    // Identical scenarios got identical bytes across distinct ids too.
    let map = reference.expect("reference run");
    assert_eq!(map["m-table"], map["m-table-again"]);
    assert_eq!(map["b-1"], map["b-3"]);
}
