//! Game-theoretic analysis of switch service disciplines — the primary
//! contribution of *"Making Greed Work in Networks"* (Shenker, SIGCOMM
//! 1994), as a library.
//!
//! Selfish users share an M/M/1 switch (modeled by `greednet-queueing`);
//! each picks its Poisson rate to maximize a private utility. This crate
//! supplies:
//!
//! * [`utility`] — the acceptable utility class `AU` (§3.2): linear,
//!   exponential (Lemma 5), power, log and quadratic-congestion families,
//!   plus monotone-transformation wrappers (utilities are ordinal);
//! * [`game`] — the game itself: best responses, Nash solving, global
//!   equilibrium verification, subsystem (fixed-user) games, envy, and
//!   multi-start uniqueness probes (Definition 1, Theorems 3 & 4);
//! * [`pareto`] — Pareto first-derivative conditions, symmetric Pareto
//!   points, and the uniform-scaling dominance test (Theorems 1 & 2);
//! * [`stackelberg`] — leader/follower equilibria (Definition 5,
//!   Theorem 5);
//! * [`coalition`] — joint-manipulation searches (footnote 14: Fair Share
//!   equilibria are coalition-proof);
//! * [`protection`] — out-of-equilibrium protection bounds (Definition 7,
//!   Theorem 8);
//! * [`relaxation`] — the Newton self-optimization relaxation matrix and
//!   its spectrum (§4.2.3, Theorem 7).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod coalition;
pub mod error;
pub mod game;
pub mod pareto;
pub mod protection;
pub mod relaxation;
pub mod stackelberg;
pub mod utility;

pub use error::CoreError;
pub use game::{Game, NashOptions, NashSolution};
pub use utility::{BoxedUtility, Utility};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
