//! Coalitional manipulation — footnote 14 of the paper.
//!
//! The paper notes (citing Moulin–Shenker) that all Fair Share Nash
//! equilibria are *resilient against coalitional manipulation*: no group
//! of users can jointly change their rates so that **every** member ends
//! up strictly better off. Under FIFO, by contrast, any pair of users at
//! the Nash equilibrium can profit by jointly backing off — each member's
//! own first-order loss is zero while the partner's reduction is a
//! first-order gain.
//!
//! The search below is a derivative-free pattern search over the
//! coalition members' rates (non-members stay put; the coalition cannot
//! touch the switch), maximizing the minimum member gain.

use crate::game::Game;

/// A profitable joint deviation found for a coalition.
#[derive(Debug, Clone)]
pub struct CoalitionImprovement {
    /// The colluding users.
    pub coalition: Vec<usize>,
    /// The full rate vector after the deviation.
    pub rates: Vec<f64>,
    /// Utility gain of each coalition member (all positive).
    pub gains: Vec<f64>,
}

/// Searches for a joint deviation of `coalition` from `rates` that makes
/// every member strictly better off. Returns `None` if the pattern search
/// finds no such deviation (evidence of resilience).
pub fn coalition_deviation(
    game: &Game,
    rates: &[f64],
    coalition: &[usize],
    iterations: usize,
) -> Option<CoalitionImprovement> {
    if coalition.is_empty() {
        return None;
    }
    let base = game.utilities_at(rates);
    let objective = |r: &[f64]| -> f64 {
        let u = game.utilities_at(r);
        coalition
            .iter()
            .map(|&i| u[i] - base[i])
            .fold(f64::INFINITY, f64::min)
    };
    let mut r = rates.to_vec();
    let mut best = objective(&r);
    let mut step = 0.05;
    for _ in 0..iterations {
        let mut improved = false;
        // Joint scaling of the coalition's rates (the collusive backoff).
        for s in [1.0 - step, 1.0 + step] {
            let mut cand = r.to_vec();
            for &i in coalition {
                cand[i] = (cand[i] * s).max(1e-9);
            }
            let v = objective(&cand);
            if v > best {
                best = v;
                r = cand;
                improved = true;
            }
        }
        // Individual member moves.
        for &i in coalition {
            for dir in [-1.0, 1.0] {
                let mut cand = r.to_vec();
                cand[i] = (cand[i] + dir * step).max(1e-9);
                let v = objective(&cand);
                if v > best {
                    best = v;
                    r = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-5 {
                break;
            }
        }
    }
    if best > 1e-9 {
        let u = game.utilities_at(&r);
        let gains = coalition.iter().map(|&i| u[i] - base[i]).collect();
        Some(CoalitionImprovement {
            coalition: coalition.to_vec(),
            rates: r,
            gains,
        })
    } else {
        None
    }
}

/// Sweeps every coalition of size `2..=max_size` and returns the first
/// profitable joint deviation found, or `None` if the point appears
/// coalition-proof.
pub fn find_manipulating_coalition(
    game: &Game,
    rates: &[f64],
    max_size: usize,
    iterations: usize,
) -> Option<CoalitionImprovement> {
    let n = game.n();
    let max_size = max_size.min(n);
    // Enumerate subsets by bitmask (n is small in this model).
    assert!(
        n <= 20,
        "coalition enumeration is exponential; n = {n} too large"
    );
    for mask in 1u32..(1u32 << n) {
        let size = greednet_numerics::conv::u32_to_usize(mask.count_ones());
        if size < 2 || size > max_size {
            continue;
        }
        let coalition: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        if let Some(dev) = coalition_deviation(game, rates, &coalition, iterations) {
            return Some(dev);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::NashOptions;
    use crate::utility::{LinearUtility, LogUtility, UtilityExt};
    use greednet_queueing::{FairShare, Proportional};

    #[test]
    fn fifo_pairs_can_collude() {
        let users: Vec<_> = (0..3)
            .map(|_| LinearUtility::new(1.0, 0.2).boxed())
            .collect();
        let game = Game::new(Proportional::new(), users).unwrap();
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        let dev = coalition_deviation(&game, &nash.rates, &[0, 1], 120)
            .expect("a FIFO pair must be able to collude");
        assert!(dev.gains.iter().all(|&g| g > 0.0));
        // The collusion is a joint backoff.
        assert!(dev.rates[0] < nash.rates[0]);
        assert!(dev.rates[1] < nash.rates[1]);
    }

    #[test]
    fn fair_share_nash_is_coalition_proof() {
        // Footnote 14: no coalition (here all sizes up to N) profits.
        let users = vec![
            LogUtility::new(0.4, 1.0).boxed(),
            LogUtility::new(0.8, 1.2).boxed(),
            LinearUtility::new(1.0, 0.35).boxed(),
        ];
        let game = Game::new(FairShare::new(), users).unwrap();
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(nash.converged);
        let dev = find_manipulating_coalition(&game, &nash.rates, 3, 120);
        assert!(dev.is_none(), "Fair Share Nash manipulated: {dev:?}");
    }

    #[test]
    fn fair_share_identical_users_also_coalition_proof() {
        let users: Vec<_> = (0..4)
            .map(|_| LinearUtility::new(1.0, 0.3).boxed())
            .collect();
        let game = Game::new(FairShare::new(), users).unwrap();
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        let dev = find_manipulating_coalition(&game, &nash.rates, 4, 100);
        assert!(dev.is_none(), "manipulated: {dev:?}");
    }

    #[test]
    fn grand_coalition_under_fifo_is_the_cartel() {
        // All users jointly backing off is exactly the Pareto improvement
        // of E1 — the grand coalition always profits under FIFO.
        let users: Vec<_> = (0..4)
            .map(|_| LinearUtility::new(1.0, 0.25).boxed())
            .collect();
        let game = Game::new(Proportional::new(), users).unwrap();
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        let dev = coalition_deviation(&game, &nash.rates, &[0, 1, 2, 3], 120)
            .expect("grand coalition must profit under FIFO");
        assert_eq!(dev.coalition.len(), 4);
    }

    #[test]
    fn empty_and_singleton_coalitions() {
        let users: Vec<_> = (0..2)
            .map(|_| LinearUtility::new(1.0, 0.3).boxed())
            .collect();
        let game = Game::new(Proportional::new(), users).unwrap();
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(coalition_deviation(&game, &nash.rates, &[], 50).is_none());
        // A singleton cannot improve on its own best response.
        assert!(coalition_deviation(&game, &nash.rates, &[0], 80).is_none());
    }
}
