//! User utility functions — the paper's acceptable class `AU` (§3.2).
//!
//! A utility `U(r, c)` expresses a user's satisfaction with throughput `r`
//! and congestion `c`. Acceptable utilities are `C^2`, strictly increasing
//! in `r`, strictly decreasing in `c`, and represent *convex preferences*;
//! as used by Lemma 4 this amounts to joint concavity of `U`, which every
//! family below satisfies. Utilities are **ordinal**: all of the paper's
//! results are invariant under monotone transformations `U ↦ G(U)`; the
//! [`MonotoneTransform`] wrapper exists to test exactly that invariance.
//!
//! The quantity the equilibrium machinery actually consumes is the
//! marginal-rate ratio `M(r, c) = U_r / U_c` (negative, since `U_c < 0`):
//! the Nash first-derivative condition reads `M_i = −∂C_i/∂r_i` and the
//! Pareto condition `M_i = Z_i = −(1 − Σ r)^{-2}`.

use greednet_numerics::diff;
use std::fmt::Debug;

/// A user's utility function over (throughput, congestion).
///
/// Implementations must be strictly increasing in `r`, strictly decreasing
/// in `c`, jointly concave and `C^2` on `r > 0, c ≥ 0`. The value at
/// `c = +inf` must be `−inf` (an unboundedly congested allocation is worst
/// possible), which every provided family satisfies.
pub trait Utility: Send + Sync + Debug {
    /// Short family name for reporting.
    fn name(&self) -> &'static str;

    /// The utility value `U(r, c)`.
    fn value(&self, r: f64, c: f64) -> f64;

    /// `∂U/∂r > 0`.
    fn du_dr(&self, r: f64, c: f64) -> f64 {
        diff::derivative(|x| self.value(x, c), r).unwrap_or(f64::NAN)
    }

    /// `∂U/∂c < 0`.
    fn du_dc(&self, r: f64, c: f64) -> f64 {
        diff::derivative(|x| self.value(r, x), c).unwrap_or(f64::NAN)
    }

    /// `∂²U/∂r²`.
    fn d2u_drr(&self, r: f64, c: f64) -> f64 {
        diff::second_derivative(|x| self.value(x, c), r).unwrap_or(f64::NAN)
    }

    /// `∂²U/∂c²`.
    fn d2u_dcc(&self, r: f64, c: f64) -> f64 {
        diff::second_derivative(|x| self.value(r, x), c).unwrap_or(f64::NAN)
    }

    /// `∂²U/∂r∂c`.
    fn d2u_drc(&self, r: f64, c: f64) -> f64 {
        diff::mixed_second(|x| self.value(x[0], x[1]), &[r, c], 0, 1).unwrap_or(f64::NAN)
    }

    /// The marginal ratio `M(r, c) = U_r / U_c` (< 0). The ordinal object
    /// the equilibrium conditions are written in: invariant under
    /// monotone transformations of `U`.
    fn marginal_ratio(&self, r: f64, c: f64) -> f64 {
        self.du_dr(r, c) / self.du_dc(r, c)
    }

    /// `∂M/∂r = (U_rr U_c − U_r U_rc) / U_c²`.
    fn dm_dr(&self, r: f64, c: f64) -> f64 {
        let uc = self.du_dc(r, c);
        (self.d2u_drr(r, c) * uc - self.du_dr(r, c) * self.d2u_drc(r, c)) / (uc * uc)
    }

    /// `∂M/∂c = (U_rc U_c − U_r U_cc) / U_c²`.
    fn dm_dc(&self, r: f64, c: f64) -> f64 {
        let uc = self.du_dc(r, c);
        (self.d2u_drc(r, c) * uc - self.du_dr(r, c) * self.d2u_dcc(r, c)) / (uc * uc)
    }

    /// Clones into a boxed trait object.
    fn clone_box(&self) -> BoxedUtility;
}

/// Owned, type-erased utility.
pub type BoxedUtility = Box<dyn Utility>;

impl Clone for BoxedUtility {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Extension providing `.boxed()` on sized utilities.
pub trait UtilityExt: Utility + Sized + 'static {
    /// Boxes the utility.
    fn boxed(self) -> BoxedUtility {
        Box::new(self)
    }
}
impl<T: Utility + Sized + 'static> UtilityExt for T {}

// ---------------------------------------------------------------------------
// Families
// ---------------------------------------------------------------------------

/// Linear utility `U = a·r − γ·c` — the family used in the paper's FIFO
/// instability example (§4.2.3), with constant marginal ratio `M = −a/γ`.
#[derive(Debug, Clone, Copy)]
pub struct LinearUtility {
    /// Throughput weight `a > 0`.
    pub a: f64,
    /// Congestion aversion `γ > 0`.
    pub gamma: f64,
}

impl LinearUtility {
    /// Creates `U = a·r − γ·c`; both parameters must be positive.
    pub fn new(a: f64, gamma: f64) -> Self {
        assert!(a > 0.0 && gamma > 0.0, "LinearUtility needs a, gamma > 0");
        LinearUtility { a, gamma }
    }
}

impl Utility for LinearUtility {
    fn name(&self) -> &'static str {
        "linear"
    }
    fn value(&self, r: f64, c: f64) -> f64 {
        self.a * r - self.gamma * c
    }
    fn du_dr(&self, _r: f64, _c: f64) -> f64 {
        self.a
    }
    fn du_dc(&self, _r: f64, _c: f64) -> f64 {
        -self.gamma
    }
    fn d2u_drr(&self, _r: f64, _c: f64) -> f64 {
        0.0
    }
    fn d2u_dcc(&self, _r: f64, _c: f64) -> f64 {
        0.0
    }
    fn d2u_drc(&self, _r: f64, _c: f64) -> f64 {
        0.0
    }
    fn clone_box(&self) -> BoxedUtility {
        Box::new(*self)
    }
}

/// The exponential family from the paper's Lemma 5:
/// `U = −(α²/β)·e^{−(β/α)(r−r̄)} − (γ²/ν)·e^{(ν/γ)(c−c̄)}`.
///
/// Strictly increasing in `r`, decreasing in `c`, jointly concave, and
/// rich enough that *any* interior point can be made a Nash equilibrium by
/// a choice of parameters — the property the paper's impossibility proofs
/// lean on. [`ExpExpUtility::pinning`] constructs exactly the instance
/// used in Lemma 5 to pin an equilibrium at a target `(r̄, c̄)`.
#[derive(Debug, Clone, Copy)]
pub struct ExpExpUtility {
    /// Throughput scale `α > 0`.
    pub alpha: f64,
    /// Throughput decay `β > 0` (larger = sharper preference near `r̄`).
    pub beta: f64,
    /// Congestion scale `γ > 0`.
    pub gamma: f64,
    /// Congestion growth `ν > 0`.
    pub nu: f64,
    /// Throughput reference point.
    pub r_ref: f64,
    /// Congestion reference point.
    pub c_ref: f64,
}

impl ExpExpUtility {
    /// Creates the Lemma 5 exponential utility. All of `alpha`, `beta`,
    /// `gamma`, `nu` must be positive.
    pub fn new(alpha: f64, beta: f64, gamma: f64, nu: f64, r_ref: f64, c_ref: f64) -> Self {
        assert!(
            alpha > 0.0 && beta > 0.0 && gamma > 0.0 && nu > 0.0,
            "ExpExpUtility needs positive alpha, beta, gamma, nu"
        );
        ExpExpUtility {
            alpha,
            beta,
            gamma,
            nu,
            r_ref,
            c_ref,
        }
    }

    /// Lemma 5 construction: a utility whose first-derivative condition is
    /// satisfied at `(r̄, c̄)` against own-congestion slope `dc_dr` (i.e.
    /// `M(r̄, c̄) = −dc_dr`), with sharpness `beta = nu` controlling how
    /// strongly the optimum is pinned there.
    pub fn pinning(r_ref: f64, c_ref: f64, dc_dr: f64, sharpness: f64) -> Self {
        assert!(dc_dr > 0.0, "own-congestion slope must be positive");
        // Choose gamma = 1, alpha = dc_dr so that M = -alpha/gamma = -dc_dr
        // at the reference point.
        ExpExpUtility::new(dc_dr, sharpness, 1.0, sharpness, r_ref, c_ref)
    }
}

impl Utility for ExpExpUtility {
    fn name(&self) -> &'static str {
        "exp-exp (Lemma 5)"
    }
    fn value(&self, r: f64, c: f64) -> f64 {
        let tr = -(self.alpha * self.alpha / self.beta)
            * (-(self.beta / self.alpha) * (r - self.r_ref)).exp();
        let tc = -(self.gamma * self.gamma / self.nu)
            * ((self.nu / self.gamma) * (c - self.c_ref)).exp();
        tr + tc
    }
    fn du_dr(&self, r: f64, _c: f64) -> f64 {
        self.alpha * (-(self.beta / self.alpha) * (r - self.r_ref)).exp()
    }
    fn du_dc(&self, _r: f64, c: f64) -> f64 {
        -self.gamma * ((self.nu / self.gamma) * (c - self.c_ref)).exp()
    }
    fn d2u_drr(&self, r: f64, _c: f64) -> f64 {
        -self.beta * (-(self.beta / self.alpha) * (r - self.r_ref)).exp()
    }
    fn d2u_dcc(&self, _r: f64, c: f64) -> f64 {
        -self.nu * ((self.nu / self.gamma) * (c - self.c_ref)).exp()
    }
    fn d2u_drc(&self, _r: f64, _c: f64) -> f64 {
        0.0
    }
    fn clone_box(&self) -> BoxedUtility {
        Box::new(*self)
    }
}

/// Power (CRRA-style) utility `U = r^a − γ·c` with `0 < a < 1`:
/// diminishing returns to throughput, linear congestion cost. A natural
/// model for bulk-transfer ("FTP") users.
#[derive(Debug, Clone, Copy)]
pub struct PowerUtility {
    /// Curvature exponent `a ∈ (0, 1)`.
    pub a: f64,
    /// Congestion aversion `γ > 0`.
    pub gamma: f64,
}

impl PowerUtility {
    /// Creates `U = r^a − γ·c` with `0 < a < 1`, `γ > 0`.
    pub fn new(a: f64, gamma: f64) -> Self {
        assert!(
            a > 0.0 && a < 1.0 && gamma > 0.0,
            "PowerUtility needs 0<a<1, gamma>0"
        );
        PowerUtility { a, gamma }
    }
}

impl Utility for PowerUtility {
    fn name(&self) -> &'static str {
        "power"
    }
    fn value(&self, r: f64, c: f64) -> f64 {
        r.max(0.0).powf(self.a) - self.gamma * c
    }
    fn du_dr(&self, r: f64, _c: f64) -> f64 {
        self.a * r.max(1e-300).powf(self.a - 1.0)
    }
    fn du_dc(&self, _r: f64, _c: f64) -> f64 {
        -self.gamma
    }
    fn d2u_drr(&self, r: f64, _c: f64) -> f64 {
        self.a * (self.a - 1.0) * r.max(1e-300).powf(self.a - 2.0)
    }
    fn d2u_dcc(&self, _r: f64, _c: f64) -> f64 {
        0.0
    }
    fn d2u_drc(&self, _r: f64, _c: f64) -> f64 {
        0.0
    }
    fn clone_box(&self) -> BoxedUtility {
        Box::new(*self)
    }
}

/// Logarithmic utility `U = w·ln(r) − γ·c`: infinitely steep at zero rate,
/// so best responses are always interior. The workhorse of the sampled
/// heterogeneous-profile experiments.
#[derive(Debug, Clone, Copy)]
pub struct LogUtility {
    /// Throughput weight `w > 0`.
    pub w: f64,
    /// Congestion aversion `γ > 0`.
    pub gamma: f64,
}

impl LogUtility {
    /// Creates `U = w·ln(r) − γ·c`; both parameters must be positive.
    pub fn new(w: f64, gamma: f64) -> Self {
        assert!(w > 0.0 && gamma > 0.0, "LogUtility needs w, gamma > 0");
        LogUtility { w, gamma }
    }
}

impl Utility for LogUtility {
    fn name(&self) -> &'static str {
        "log"
    }
    fn value(&self, r: f64, c: f64) -> f64 {
        if r <= 0.0 {
            f64::NEG_INFINITY
        } else {
            self.w * r.ln() - self.gamma * c
        }
    }
    fn du_dr(&self, r: f64, _c: f64) -> f64 {
        self.w / r.max(1e-300)
    }
    fn du_dc(&self, _r: f64, _c: f64) -> f64 {
        -self.gamma
    }
    fn d2u_drr(&self, r: f64, _c: f64) -> f64 {
        -self.w / (r.max(1e-300) * r.max(1e-300))
    }
    fn d2u_dcc(&self, _r: f64, _c: f64) -> f64 {
        0.0
    }
    fn d2u_drc(&self, _r: f64, _c: f64) -> f64 {
        0.0
    }
    fn clone_box(&self) -> BoxedUtility {
        Box::new(*self)
    }
}

/// Quadratic-congestion utility `U = a·r − γ·c²`: mildly congestion
/// tolerant at low load, sharply averse at high load. A natural model for
/// interactive ("Telnet") users whose experience collapses under queueing.
#[derive(Debug, Clone, Copy)]
pub struct QuadraticCongestionUtility {
    /// Throughput weight `a > 0`.
    pub a: f64,
    /// Congestion aversion `γ > 0`.
    pub gamma: f64,
}

impl QuadraticCongestionUtility {
    /// Creates `U = a·r − γ·c²`; both parameters must be positive.
    pub fn new(a: f64, gamma: f64) -> Self {
        assert!(
            a > 0.0 && gamma > 0.0,
            "QuadraticCongestionUtility needs a, gamma > 0"
        );
        QuadraticCongestionUtility { a, gamma }
    }
}

impl Utility for QuadraticCongestionUtility {
    fn name(&self) -> &'static str {
        "quadratic-congestion"
    }
    fn value(&self, r: f64, c: f64) -> f64 {
        self.a * r - self.gamma * c * c
    }
    fn du_dr(&self, _r: f64, _c: f64) -> f64 {
        self.a
    }
    fn du_dc(&self, _r: f64, c: f64) -> f64 {
        -2.0 * self.gamma * c
    }
    fn d2u_drr(&self, _r: f64, _c: f64) -> f64 {
        0.0
    }
    fn d2u_dcc(&self, _r: f64, _c: f64) -> f64 {
        -2.0 * self.gamma
    }
    fn d2u_drc(&self, _r: f64, _c: f64) -> f64 {
        0.0
    }
    fn clone_box(&self) -> BoxedUtility {
        Box::new(*self)
    }
}

/// A strictly increasing transformation `G ∘ U` of another utility.
///
/// Utilities are ordinal, so every equilibrium notion in the paper must be
/// invariant under this wrapper; the test suites use it to check exactly
/// that. Note `M(r,c)` is identical for `U` and `G∘U` by the chain rule.
#[derive(Debug, Clone)]
pub struct MonotoneTransform {
    inner: BoxedUtility,
    kind: TransformKind,
}

/// The available monotone transformations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransformKind {
    /// `G(u) = a·u + b` with `a > 0`.
    Affine {
        /// Slope (> 0).
        a: f64,
        /// Intercept.
        b: f64,
    },
    /// `G(u) = −e^{−k·u}` with `k > 0` (bounded above).
    NegExp {
        /// Decay constant (> 0).
        k: f64,
    },
    /// `G(u) = u³ + u` (strictly increasing, unbounded, non-affine).
    CubicPlus,
}

impl MonotoneTransform {
    /// Wraps `inner` with transformation `kind`.
    pub fn new(inner: BoxedUtility, kind: TransformKind) -> Self {
        if let TransformKind::Affine { a, .. } = kind {
            assert!(a > 0.0, "affine transform must be increasing");
        }
        if let TransformKind::NegExp { k } = kind {
            assert!(k > 0.0, "neg-exp transform needs k > 0");
        }
        MonotoneTransform { inner, kind }
    }

    fn g(&self, u: f64) -> f64 {
        match self.kind {
            TransformKind::Affine { a, b } => a * u + b,
            TransformKind::NegExp { k } => {
                if u == f64::NEG_INFINITY {
                    f64::NEG_INFINITY
                } else {
                    -(-k * u).exp()
                }
            }
            TransformKind::CubicPlus => u * u * u + u,
        }
    }

    fn g_prime(&self, u: f64) -> f64 {
        match self.kind {
            TransformKind::Affine { a, .. } => a,
            TransformKind::NegExp { k } => k * (-k * u).exp(),
            TransformKind::CubicPlus => 3.0 * u * u + 1.0,
        }
    }

    fn g_double_prime(&self, u: f64) -> f64 {
        match self.kind {
            TransformKind::Affine { .. } => 0.0,
            TransformKind::NegExp { k } => -k * k * (-k * u).exp(),
            TransformKind::CubicPlus => 6.0 * u,
        }
    }
}

impl Utility for MonotoneTransform {
    fn name(&self) -> &'static str {
        "monotone-transform"
    }
    fn value(&self, r: f64, c: f64) -> f64 {
        self.g(self.inner.value(r, c))
    }
    fn du_dr(&self, r: f64, c: f64) -> f64 {
        self.g_prime(self.inner.value(r, c)) * self.inner.du_dr(r, c)
    }
    fn du_dc(&self, r: f64, c: f64) -> f64 {
        self.g_prime(self.inner.value(r, c)) * self.inner.du_dc(r, c)
    }
    fn d2u_drr(&self, r: f64, c: f64) -> f64 {
        let u = self.inner.value(r, c);
        let ur = self.inner.du_dr(r, c);
        self.g_double_prime(u) * ur * ur + self.g_prime(u) * self.inner.d2u_drr(r, c)
    }
    fn d2u_dcc(&self, r: f64, c: f64) -> f64 {
        let u = self.inner.value(r, c);
        let uc = self.inner.du_dc(r, c);
        self.g_double_prime(u) * uc * uc + self.g_prime(u) * self.inner.d2u_dcc(r, c)
    }
    fn d2u_drc(&self, r: f64, c: f64) -> f64 {
        let u = self.inner.value(r, c);
        self.g_double_prime(u) * self.inner.du_dr(r, c) * self.inner.du_dc(r, c)
            + self.g_prime(u) * self.inner.d2u_drc(r, c)
    }
    fn clone_box(&self) -> BoxedUtility {
        Box::new(self.clone())
    }
}

/// The population-scaled utility `V(r, c) = U(s·r, s·c)`.
///
/// The large-N mean-field formulation (`greednet-largen`, DESIGN.md §10)
/// works in *share-scale* variables `x = N·r`, `Φ = N·C`: a user in a
/// population of `N` cares about its rate and congestion relative to the
/// equal share `1/N`, so its preferences over raw `(r, C)` are
/// `U(N·r, N·C)`. Wrapping a utility with `scale = N` expresses exactly
/// that finite-`N` game in the ordinary `greednet-core` machinery, which
/// is how the mean-field engine is cross-validated against
/// [`crate::game::Game::solve_nash`] at small `N`.
///
/// By the chain rule `V_r = s·U_r(sr, sc)` and `V_c = s·U_c(sr, sc)`, so
/// the marginal ratio transforms as `M_V(r, c) = M_U(s·r, s·c)` — the
/// factor `s` cancels.
#[derive(Debug, Clone)]
pub struct ScaledUtility {
    inner: BoxedUtility,
    scale: f64,
}

impl ScaledUtility {
    /// Wraps `inner` at population scale `s > 0` (finite and positive).
    pub fn new(inner: BoxedUtility, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "ScaledUtility needs a positive finite scale"
        );
        ScaledUtility { inner, scale }
    }
}

impl Utility for ScaledUtility {
    fn name(&self) -> &'static str {
        "scaled"
    }
    fn value(&self, r: f64, c: f64) -> f64 {
        self.inner.value(self.scale * r, self.scale * c)
    }
    fn du_dr(&self, r: f64, c: f64) -> f64 {
        self.scale * self.inner.du_dr(self.scale * r, self.scale * c)
    }
    fn du_dc(&self, r: f64, c: f64) -> f64 {
        self.scale * self.inner.du_dc(self.scale * r, self.scale * c)
    }
    fn d2u_drr(&self, r: f64, c: f64) -> f64 {
        self.scale * self.scale * self.inner.d2u_drr(self.scale * r, self.scale * c)
    }
    fn d2u_dcc(&self, r: f64, c: f64) -> f64 {
        self.scale * self.scale * self.inner.d2u_dcc(self.scale * r, self.scale * c)
    }
    fn d2u_drc(&self, r: f64, c: f64) -> f64 {
        self.scale * self.scale * self.inner.d2u_drc(self.scale * r, self.scale * c)
    }
    fn clone_box(&self) -> BoxedUtility {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn families() -> Vec<BoxedUtility> {
        vec![
            LinearUtility::new(1.0, 0.5).boxed(),
            ExpExpUtility::new(1.0, 2.0, 1.0, 3.0, 0.2, 0.5).boxed(),
            PowerUtility::new(0.5, 1.0).boxed(),
            LogUtility::new(1.0, 2.0).boxed(),
            QuadraticCongestionUtility::new(1.0, 0.7).boxed(),
        ]
    }

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn monotone_in_r_decreasing_in_c() {
        for u in families() {
            for &(r, c) in &[(0.1, 0.2), (0.3, 1.0), (0.05, 3.0)] {
                assert!(u.du_dr(r, c) > 0.0, "{} U_r <= 0", u.name());
                assert!(u.du_dc(r, c) < 0.0, "{} U_c >= 0", u.name());
                assert!(u.value(r + 0.01, c) > u.value(r, c));
                assert!(u.value(r, c + 0.01) < u.value(r, c));
            }
        }
    }

    #[test]
    fn analytic_derivatives_match_numeric() {
        for u in families() {
            let (r, c) = (0.25, 0.8);
            let ur = diff::derivative(|x| u.value(x, c), r).unwrap();
            let uc = diff::derivative(|x| u.value(r, x), c).unwrap();
            assert_close(u.du_dr(r, c), ur, 1e-4 * (1.0 + ur.abs()));
            assert_close(u.du_dc(r, c), uc, 1e-4 * (1.0 + uc.abs()));
            let urr = diff::second_derivative(|x| u.value(x, c), r).unwrap();
            let ucc = diff::second_derivative(|x| u.value(r, x), c).unwrap();
            assert_close(u.d2u_drr(r, c), urr, 1e-2 * (1.0 + urr.abs()));
            assert_close(u.d2u_dcc(r, c), ucc, 1e-2 * (1.0 + ucc.abs()));
        }
    }

    #[test]
    fn joint_concavity_hessian() {
        // Hessian must be negative semidefinite: check trace <= 0 and det >= 0
        // (2x2 NSD criterion) at several points.
        for u in families() {
            for &(r, c) in &[(0.1, 0.2), (0.4, 1.5)] {
                let a = u.d2u_drr(r, c);
                let b = u.d2u_drc(r, c);
                let d = u.d2u_dcc(r, c);
                assert!(a <= 1e-12, "{} U_rr > 0", u.name());
                assert!(d <= 1e-12, "{} U_cc > 0", u.name());
                assert!(a * d - b * b >= -1e-10, "{} indefinite Hessian", u.name());
            }
        }
    }

    #[test]
    fn infinite_congestion_is_worst() {
        for u in families() {
            assert_eq!(
                u.value(0.3, f64::INFINITY),
                f64::NEG_INFINITY,
                "{}",
                u.name()
            );
        }
    }

    #[test]
    fn marginal_ratio_is_negative() {
        for u in families() {
            let m = u.marginal_ratio(0.2, 0.5);
            assert!(m < 0.0, "{} M >= 0", u.name());
        }
    }

    #[test]
    fn linear_marginal_ratio_constant() {
        let u = LinearUtility::new(2.0, 4.0);
        assert_close(u.marginal_ratio(0.1, 0.1), -0.5, 1e-14);
        assert_close(u.marginal_ratio(0.7, 9.0), -0.5, 1e-14);
        assert_eq!(u.dm_dr(0.2, 0.3), 0.0);
        assert_eq!(u.dm_dc(0.2, 0.3), 0.0);
    }

    #[test]
    fn expexp_pinning_hits_target_fdc() {
        // The pinned utility must satisfy M(r_ref, c_ref) = -dc_dr.
        let u = ExpExpUtility::pinning(0.2, 0.6, 3.5, 10.0);
        assert_close(u.marginal_ratio(0.2, 0.6), -3.5, 1e-12);
    }

    #[test]
    fn dm_derivatives_match_numeric() {
        let u = ExpExpUtility::new(1.0, 2.0, 1.5, 3.0, 0.2, 0.5);
        let (r, c) = (0.3, 0.9);
        let dm_r = diff::derivative(|x| u.marginal_ratio(x, c), r).unwrap();
        let dm_c = diff::derivative(|x| u.marginal_ratio(r, x), c).unwrap();
        assert_close(u.dm_dr(r, c), dm_r, 1e-4 * (1.0 + dm_r.abs()));
        assert_close(u.dm_dc(r, c), dm_c, 1e-4 * (1.0 + dm_c.abs()));
    }

    #[test]
    fn log_utility_forces_interior() {
        let u = LogUtility::new(1.0, 1.0);
        assert_eq!(u.value(0.0, 1.0), f64::NEG_INFINITY);
        assert_eq!(u.value(-0.1, 1.0), f64::NEG_INFINITY);
        assert!(u.du_dr(1e-6, 0.0) > 1e5);
    }

    #[test]
    fn monotone_transform_preserves_marginal_ratio() {
        let base = PowerUtility::new(0.6, 1.2).boxed();
        for kind in [
            TransformKind::Affine { a: 3.0, b: -1.0 },
            TransformKind::NegExp { k: 0.8 },
            TransformKind::CubicPlus,
        ] {
            let t = MonotoneTransform::new(base.clone(), kind);
            for &(r, c) in &[(0.1, 0.3), (0.4, 1.1)] {
                assert_close(
                    t.marginal_ratio(r, c),
                    base.marginal_ratio(r, c),
                    1e-10 * (1.0 + base.marginal_ratio(r, c).abs()),
                );
            }
        }
    }

    #[test]
    fn monotone_transform_preserves_ordering() {
        let base = LinearUtility::new(1.0, 1.0).boxed();
        let t = MonotoneTransform::new(base.clone(), TransformKind::NegExp { k: 2.0 });
        let pairs = [((0.3, 0.1), (0.2, 0.1)), ((0.3, 0.1), (0.3, 0.5))];
        for ((r1, c1), (r2, c2)) in pairs {
            let base_order = base.value(r1, c1) > base.value(r2, c2);
            let t_order = t.value(r1, c1) > t.value(r2, c2);
            assert_eq!(base_order, t_order);
        }
    }

    #[test]
    fn transform_derivative_consistency() {
        let base = LogUtility::new(0.8, 1.5).boxed();
        let t = MonotoneTransform::new(base, TransformKind::CubicPlus);
        let (r, c) = (0.3, 0.4);
        let ur = diff::derivative(|x| t.value(x, c), r).unwrap();
        assert_close(t.du_dr(r, c), ur, 1e-3 * (1.0 + ur.abs()));
        let ucc = diff::second_derivative(|x| t.value(r, x), c).unwrap();
        assert_close(t.d2u_dcc(r, c), ucc, 1e-2 * (1.0 + ucc.abs()));
    }

    #[test]
    fn scaled_utility_is_the_inner_at_scaled_arguments() {
        for base in families() {
            let s = 250.0;
            let v = ScaledUtility::new(base.clone(), s);
            for &(r, c) in &[(0.4 / s, 0.3 / s), (1.2 / s, 2.0 / s)] {
                assert_close(v.value(r, c), base.value(s * r, s * c), 1e-12);
                // Marginal ratio at (r, c) equals the inner's at (sr, sc):
                // the scale factor cancels between U_r and U_c.
                let m = base.marginal_ratio(s * r, s * c);
                assert_close(v.marginal_ratio(r, c), m, 1e-10 * (1.0 + m.abs()));
                // Derivatives pick up one factor of s each.
                let ur = diff::derivative(|x| v.value(x, c), r).unwrap();
                assert_close(v.du_dr(r, c), ur, 1e-3 * (1.0 + ur.abs()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "ScaledUtility")]
    fn scaled_utility_rejects_bad_scale() {
        let _ = ScaledUtility::new(LinearUtility::new(1.0, 1.0).boxed(), 0.0);
    }

    #[test]
    #[should_panic(expected = "LinearUtility")]
    fn invalid_parameters_panic() {
        let _ = LinearUtility::new(0.0, 1.0);
    }

    #[test]
    fn boxed_clone() {
        let u = LinearUtility::new(1.0, 2.0).boxed();
        let v = u.clone();
        assert_eq!(v.value(0.5, 0.0), 0.5);
    }
}
