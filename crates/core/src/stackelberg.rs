//! Stackelberg (leader/follower) equilibria — Definition 5 and Theorem 5.
//!
//! A *leader* samples its rate on a slow timescale while the remaining
//! users ("followers") equilibrate quickly to the Nash equilibrium of the
//! induced subsystem. The leader then picks the rate whose induced
//! subsystem equilibrium maximizes its own utility. Under FIFO this
//! sophistication pays; under Fair Share, Theorem 5 says it cannot — every
//! Nash equilibrium is already a Stackelberg equilibrium, so naive
//! hill-climbers are safe from strategic manipulation.

use crate::game::{Game, NashOptions, NashSolution};
use crate::Result;

/// A solved leader/follower equilibrium.
#[derive(Debug, Clone)]
pub struct StackelbergOutcome {
    /// Index of the leading user.
    pub leader: usize,
    /// The leader's optimal committed rate.
    pub leader_rate: f64,
    /// Full rate vector (leader + equilibrated followers).
    pub rates: Vec<f64>,
    /// The leader's utility at the Stackelberg point.
    pub leader_utility: f64,
    /// Whether all follower sub-solves converged.
    pub followers_converged: bool,
    /// Number of (leader-rate, follower-equilibrium) evaluations.
    pub evaluations: usize,
}

/// Options for the Stackelberg solver.
#[derive(Debug, Clone)]
pub struct StackelbergOptions {
    /// Leader-rate grid resolution for the outer search.
    pub leader_grid: usize,
    /// Refinement sweeps (each halves the bracket around the best point).
    pub refinements: usize,
    /// Options passed to the follower Nash solves.
    pub nash: NashOptions,
}

impl Default for StackelbergOptions {
    fn default() -> Self {
        StackelbergOptions {
            leader_grid: 48,
            refinements: 24,
            nash: NashOptions {
                max_iter: 300,
                tol: 1e-10,
                ..Default::default()
            },
        }
    }
}

/// Evaluates the leader's utility when committing to `x`, with followers
/// at the Nash equilibrium of the induced subsystem.
fn leader_value(
    game: &Game,
    leader: usize,
    x: f64,
    opts: &StackelbergOptions,
    warm: &mut Option<Vec<f64>>,
) -> Result<(f64, NashSolution)> {
    let n = game.n();
    let mut fixed = vec![None; n];
    fixed[leader] = Some(x);
    let mut nash_opts = opts.nash.clone();
    if let Some(w) = warm {
        let mut s = w.clone();
        s[leader] = x;
        nash_opts.start = Some(s);
    }
    let sol = game.solve_nash_fixed(&fixed, &nash_opts)?;
    *warm = Some(sol.rates.clone());
    let u = game.utilities_at(&sol.rates)[leader];
    Ok((u, sol))
}

/// Solves the Stackelberg problem with user `leader` leading: outer grid
/// search over the leader's committed rate (each point requiring a full
/// follower equilibration), followed by golden-section refinement around
/// the best grid point.
///
/// # Errors
/// Propagates follower-equilibrium solver failures.
pub fn solve(game: &Game, leader: usize, opts: &StackelbergOptions) -> Result<StackelbergOutcome> {
    let lo = 1e-6;
    let hi = 0.98;
    let mut warm: Option<Vec<f64>> = None;
    let mut evals = 0usize;
    let mut best_x = lo;
    let mut best_u = f64::NEG_INFINITY;
    let mut best_sol: Option<NashSolution> = None;
    let grid = opts.leader_grid.max(4);
    for k in 0..grid {
        let x = lo + (hi - lo) * k as f64 / (grid - 1) as f64;
        let (u, sol) = leader_value(game, leader, x, opts, &mut warm)?;
        evals += 1;
        if u > best_u {
            best_u = u;
            best_x = x;
            best_sol = Some(sol);
        }
    }
    // Golden-section refinement around the best grid point.
    let step = (hi - lo) / (grid - 1) as f64;
    let mut a = (best_x - step).max(lo);
    let mut b = (best_x + step).min(hi);
    const INV_GOLD: f64 = 0.618_033_988_749_894_9;
    let mut x1 = b - INV_GOLD * (b - a);
    let mut x2 = a + INV_GOLD * (b - a);
    let (mut f1, _) = leader_value(game, leader, x1, opts, &mut warm)?;
    let (mut f2, _) = leader_value(game, leader, x2, opts, &mut warm)?;
    evals += 2;
    for _ in 0..opts.refinements {
        if f1 < f2 {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + INV_GOLD * (b - a);
            let (v, _) = leader_value(game, leader, x2, opts, &mut warm)?;
            f2 = v;
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - INV_GOLD * (b - a);
            let (v, _) = leader_value(game, leader, x1, opts, &mut warm)?;
            f1 = v;
        }
        evals += 1;
    }
    let x_star = if f1 >= f2 { x1 } else { x2 };
    let u_star = f1.max(f2);
    // Re-solve at the refined point when it beat the grid — or, in the
    // (impossible by construction, but panic-free) case where the grid
    // pass retained no solution, fall back to re-solving as well.
    let (final_u, final_sol) = match best_sol {
        Some(sol) if u_star <= best_u => (best_u, sol),
        _ => {
            let (u, sol) = leader_value(game, leader, x_star, opts, &mut warm)?;
            evals += 1;
            (u, sol)
        }
    };
    Ok(StackelbergOutcome {
        leader,
        leader_rate: final_sol.rates[leader],
        rates: final_sol.rates.clone(),
        leader_utility: final_u,
        followers_converged: final_sol.converged,
        evaluations: evals,
    })
}

/// The leader's *advantage*: `(U_leader^Stackelberg, U_leader^Nash)`.
/// A gap (`stackelberg > nash`) means sophistication is profitable —
/// exactly what Theorem 5 rules out under Fair Share.
///
/// # Errors
/// Propagates solver failures.
pub fn leader_advantage(
    game: &Game,
    leader: usize,
    opts: &StackelbergOptions,
) -> Result<(StackelbergOutcome, NashSolution)> {
    let stack = solve(game, leader, opts)?;
    let nash = game.solve_nash(&opts.nash)?;
    Ok((stack, nash))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::{LinearUtility, LogUtility, UtilityExt};
    use greednet_queueing::{FairShare, Proportional};

    #[test]
    fn fifo_leader_gains_over_nash() {
        // Two identical linear users under FIFO: the leader can commit to a
        // higher rate, knowing the follower will back off.
        let users = vec![
            LinearUtility::new(1.0, 0.2).boxed(),
            LinearUtility::new(1.0, 0.2).boxed(),
        ];
        let game = Game::new(Proportional::new(), users).unwrap();
        let (stack, nash) = leader_advantage(&game, 0, &StackelbergOptions::default()).unwrap();
        let nash_u = nash.utilities[0];
        assert!(
            stack.leader_utility > nash_u + 1e-6,
            "no leader advantage under FIFO? stack {} vs nash {}",
            stack.leader_utility,
            nash_u
        );
        // The leader over-grabs relative to its Nash rate.
        assert!(stack.leader_rate > nash.rates[0]);
    }

    #[test]
    fn fair_share_leader_gains_nothing() {
        // Theorem 5: under Fair Share the Stackelberg point coincides with
        // Nash — leadership is worthless.
        let users = vec![
            LinearUtility::new(1.0, 0.2).boxed(),
            LinearUtility::new(1.0, 0.2).boxed(),
        ];
        let game = Game::new(FairShare::new(), users).unwrap();
        let (stack, nash) = leader_advantage(&game, 0, &StackelbergOptions::default()).unwrap();
        let nash_u = nash.utilities[0];
        assert!(
            (stack.leader_utility - nash_u).abs() < 1e-5,
            "leader advantage under Fair Share: stack {} vs nash {}",
            stack.leader_utility,
            nash_u
        );
        assert!((stack.leader_rate - nash.rates[0]).abs() < 1e-3);
    }

    #[test]
    fn heterogeneous_fair_share_no_advantage_either() {
        let users = vec![
            LogUtility::new(0.5, 1.0).boxed(),
            LogUtility::new(1.0, 1.5).boxed(),
            LogUtility::new(0.3, 0.8).boxed(),
        ];
        let game = Game::new(FairShare::new(), users).unwrap();
        for leader in 0..3 {
            let (stack, nash) =
                leader_advantage(&game, leader, &StackelbergOptions::default()).unwrap();
            assert!(
                stack.leader_utility <= nash.utilities[leader] + 1e-5,
                "user {leader} profits from leading under FS"
            );
        }
    }

    #[test]
    fn followers_converge() {
        let users = vec![
            LinearUtility::new(1.0, 0.3).boxed(),
            LinearUtility::new(1.0, 0.3).boxed(),
            LinearUtility::new(1.0, 0.3).boxed(),
        ];
        let game = Game::new(Proportional::new(), users).unwrap();
        let stack = solve(&game, 1, &StackelbergOptions::default()).unwrap();
        assert!(stack.followers_converged);
        assert_eq!(stack.leader, 1);
        assert!(stack.evaluations >= 48);
    }
}
