//! Out-of-equilibrium protection — Definition 7 and Theorem 8.
//!
//! A discipline is *protective* if no combination of other users' rates
//! can push user `i`'s congestion above what it would suffer among `N − 1`
//! clones of itself: `C_i(r) ≤ C_i(r_i·e) = r_i / (1 − N·r_i)`. Fair Share
//! meets this bound with equality in the worst case; FIFO offers no bound
//! at all (any user can be starved arbitrarily badly by an aggressive
//! peer).

use greednet_queueing::alloc::AllocationFunction;

/// The symmetric protection bound `r_i / (1 − N·r_i)` (`+inf` when even
/// the all-clones system would be overloaded).
pub fn protection_bound(n: usize, r_i: f64) -> f64 {
    let load = n as f64 * r_i;
    if load >= 1.0 {
        f64::INFINITY
    } else {
        r_i / (1.0 - load)
    }
}

/// The worst congestion user `i` with rate `r_i` suffers over an
/// adversarial sweep of the other `n − 1` users' rates.
///
/// For MAC disciplines `C_i` is monotone non-decreasing in every opponent
/// rate, so the supremum over a box is attained at its top corner; the
/// sweep therefore evaluates symmetric opponent levels (all opponents at
/// level `L`) for each supplied level, plus a "single flooder" pattern,
/// and returns the max.
pub fn adversarial_congestion(
    alloc: &dyn AllocationFunction,
    n: usize,
    r_i: f64,
    opponent_levels: &[f64],
) -> f64 {
    assert!(n >= 1, "need at least one user");
    let mut worst: f64 = 0.0;
    for &level in opponent_levels {
        // All opponents at `level`.
        let mut rates = vec![level; n];
        rates[0] = r_i;
        worst = worst.max(alloc.congestion_of(&rates, 0));
        // One flooder at `level`, the rest idle.
        if n >= 2 {
            let mut rates = vec![1e-9; n];
            rates[0] = r_i;
            rates[1] = level;
            worst = worst.max(alloc.congestion_of(&rates, 0));
        }
    }
    worst
}

/// A protection violation found during a sweep.
#[derive(Debug, Clone)]
pub struct ProtectionViolation {
    /// The victim's rate.
    pub r_i: f64,
    /// Worst observed congestion.
    pub observed: f64,
    /// The Theorem 8 bound.
    pub bound: f64,
}

/// Report of a protection sweep.
#[derive(Debug, Clone, Default)]
pub struct ProtectionReport {
    /// Violations (empty = protective over the sweep).
    pub violations: Vec<ProtectionViolation>,
    /// Worst observed ratio `observed / bound` over finite bounds.
    pub worst_ratio: f64,
}

impl ProtectionReport {
    /// True if no violation was found.
    pub fn protective(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Sweeps victim rates × adversarial opponent levels and compares observed
/// congestion with the protection bound.
pub fn protection_sweep(
    alloc: &dyn AllocationFunction,
    n: usize,
    victim_rates: &[f64],
    opponent_levels: &[f64],
) -> ProtectionReport {
    let mut report = ProtectionReport::default();
    for &r_i in victim_rates {
        let bound = protection_bound(n, r_i);
        let observed = adversarial_congestion(alloc, n, r_i, opponent_levels);
        if bound.is_finite() {
            if observed.is_finite() {
                report.worst_ratio = report.worst_ratio.max(observed / bound.max(1e-300));
            } else {
                report.worst_ratio = f64::INFINITY;
            }
            if observed > bound * (1.0 + 1e-9) {
                report.violations.push(ProtectionViolation {
                    r_i,
                    observed,
                    bound,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use greednet_queueing::{mm1, FairShare, Proportional, SerialPriority};

    fn levels() -> Vec<f64> {
        vec![0.01, 0.1, 0.2, 0.3, 0.5, 0.9, 0.99, 2.0, 10.0]
    }

    #[test]
    fn bound_formula() {
        assert!((protection_bound(4, 0.1) - 0.1 / 0.6).abs() < 1e-12);
        assert_eq!(protection_bound(4, 0.25), f64::INFINITY);
        assert_eq!(protection_bound(2, 0.6), f64::INFINITY);
    }

    #[test]
    fn fair_share_is_protective() {
        let report = protection_sweep(
            &FairShare::new(),
            4,
            &[0.01, 0.05, 0.1, 0.2, 0.24],
            &levels(),
        );
        assert!(report.protective(), "violations: {:?}", report.violations);
        assert!(report.worst_ratio <= 1.0 + 1e-9);
    }

    #[test]
    fn fair_share_bound_is_tight() {
        // All opponents at exactly the victim's rate achieve the bound.
        let fs = FairShare::new();
        let n = 5;
        let r = 0.15;
        let observed = fs.congestion_of(&vec![r; n], 0);
        assert!((observed - protection_bound(n, r)).abs() < 1e-10);
        // ... and pushing opponents beyond the victim's rate changes nothing.
        let mut rates = vec![10.0; n];
        rates[0] = r;
        assert!((fs.congestion_of(&rates, 0) - protection_bound(n, r)).abs() < 1e-10);
    }

    #[test]
    fn fifo_is_wildly_unprotective() {
        let report = protection_sweep(&Proportional::new(), 4, &[0.1], &levels());
        assert!(!report.protective() || report.worst_ratio.is_infinite());
        // A single flooder at 0.9 gives the 0.1-rate victim a queue of
        // 0.1/(1-1.0) -> infinite, vs a bound of 0.1/0.6.
        let observed = adversarial_congestion(&Proportional::new(), 4, 0.1, &[0.9]);
        assert!(observed > 10.0 * protection_bound(4, 0.1));
    }

    #[test]
    fn serial_priority_violates_the_bound_somewhere() {
        // Perhaps surprisingly, ascending-rate priority is NOT protective
        // in the paper's exact sense: a mid-weight victim served *behind*
        // slightly lighter opponents can exceed the symmetric bound. E.g.
        // victim r = 0.15 vs three opponents at 0.1 (N = 4):
        // c = g(0.45) - g(0.30) = 0.390 > 0.375 = 0.15/(1 - 4*0.15).
        // This sharpens Theorem 8's uniqueness: even the maximally
        // insulating boundary discipline fails it; only Fair Share works.
        let observed = adversarial_congestion(&SerialPriority::new(), 4, 0.15, &[0.1]);
        let bound = protection_bound(4, 0.15);
        assert!(
            observed > bound,
            "expected SP violation: observed {observed} <= bound {bound}"
        );
        let report = protection_sweep(&SerialPriority::new(), 4, &[0.15], &[0.1]);
        assert!(!report.protective());
    }

    #[test]
    fn adversarial_congestion_monotone_in_levels() {
        let p = Proportional::new();
        let low = adversarial_congestion(&p, 3, 0.1, &[0.1]);
        let high = adversarial_congestion(&p, 3, 0.1, &[0.4]);
        assert!(high > low);
        assert!((low - 0.1 / (1.0 - 0.3)).abs() < 1e-12);
        let _ = mm1::g(0.3);
    }

    #[test]
    fn single_user_trivially_protected() {
        let report = protection_sweep(&Proportional::new(), 1, &[0.3, 0.6], &[0.5]);
        assert!(report.protective());
    }
}
