//! Error type for the game-theoretic layer.

use greednet_numerics::NumericsError;
use greednet_queueing::QueueingError;
use std::fmt;

/// Errors produced by equilibrium computation and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying queueing layer rejected the input.
    Queueing(QueueingError),
    /// A numerical routine failed.
    Numerics(NumericsError),
    /// A game was constructed with no users.
    EmptyGame,
    /// The number of utilities does not match the expected user count.
    UserCountMismatch {
        /// Utilities supplied.
        utilities: usize,
        /// Users expected.
        expected: usize,
    },
    /// An equilibrium iteration failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual at exit.
        residual: f64,
    },
    /// An argument was outside its valid range.
    InvalidArgument {
        /// Explanation of the violated requirement.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Queueing(e) => write!(f, "queueing error: {e}"),
            CoreError::Numerics(e) => write!(f, "numerics error: {e}"),
            CoreError::EmptyGame => write!(f, "a game needs at least one user"),
            CoreError::UserCountMismatch {
                utilities,
                expected,
            } => {
                write!(f, "{utilities} utilities supplied for {expected} users")
            }
            CoreError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (residual {residual:.3e})"
                )
            }
            CoreError::InvalidArgument { detail } => write!(f, "invalid argument: {detail}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Queueing(e) => Some(e),
            CoreError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueueingError> for CoreError {
    fn from(e: QueueingError) -> Self {
        CoreError::Queueing(e)
    }
}

impl From<NumericsError> for CoreError {
    fn from(e: NumericsError) -> Self {
        CoreError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let q: CoreError = QueueingError::EmptySystem.into();
        assert!(q.to_string().contains("queueing"));
        let n: CoreError = NumericsError::Singular { pivot: 0.0 }.into();
        assert!(n.to_string().contains("numerics"));
        assert!(std::error::Error::source(&q).is_some());
        assert!(std::error::Error::source(&CoreError::EmptyGame).is_none());
    }
}
