//! Pareto efficiency of allocations (§4.1.1, Theorems 1 & 2).
//!
//! An interior allocation is Pareto optimal only if every user's marginal
//! ratio matches the feasibility tradeoff: `M_i(r_i, c_i) = Z_i =
//! −(1 − Σ r_j)^{-2}` (the Pareto first-derivative condition). This module
//! provides:
//!
//! * [`fdc_residuals`] / [`is_pareto_fdc`] — the FDC test at a point;
//! * [`symmetric_pareto`] — the symmetric Pareto optimum for `n` identical
//!   users (the point Theorem 2 says Fair Share attains as a Nash
//!   equilibrium);
//! * [`scaling_improvement`] — the classic tragedy-of-the-commons witness:
//!   scale everybody's rate uniformly (keeping congestion shares) and see
//!   whether *everyone* gains. At a FIFO Nash equilibrium a slight uniform
//!   backoff always helps everyone; at a Pareto point nothing does;
//! * [`pattern_search_dominance`] — a derivative-free search for *any*
//!   feasible allocation that Pareto-dominates a given one.

use crate::game::Game;
use crate::Result;
use greednet_numerics::roots::brent;
use greednet_queueing::feasible::Allocation;
use greednet_queueing::mm1;

/// Residuals `M_i − Z` of the Pareto first-derivative condition
/// (all-zero at an interior Pareto optimum).
pub fn fdc_residuals(game: &Game, rates: &[f64]) -> Vec<f64> {
    let z = mm1::pareto_z(rates);
    let c = game.allocation().congestion(rates);
    game.users()
        .iter()
        .enumerate()
        .map(|(i, u)| u.marginal_ratio(rates[i], c[i]) - z)
        .collect()
}

/// True if the Pareto FDC holds at `rates` to within `tol` for every user.
pub fn is_pareto_fdc(game: &Game, rates: &[f64], tol: f64) -> bool {
    fdc_residuals(game, rates).iter().all(|r| r.abs() <= tol)
}

/// The symmetric Pareto-optimal rate for `n` identical users with utility
/// `u`: solves `M(r, g(n r)/n) + g'(n r) = 0` on `(0, 1/n)`.
///
/// Returns `(r, c)` per user. If the marginal ratio never catches the
/// feasibility tradeoff (extremely congestion-averse users), the optimum
/// is at `r → 0` and `(0, 0)` is returned.
///
/// # Errors
/// Propagates root-finder failures.
pub fn symmetric_pareto(u: &dyn crate::utility::Utility, n: usize) -> Result<(f64, f64)> {
    let nf = n as f64;
    let h = |r: f64| {
        let c = mm1::g(nf * r) / nf;
        u.marginal_ratio(r, c) + mm1::g_prime(nf * r)
    };
    // Along the symmetric ray the common utility has slope
    // φ'(r) = U_c · h(r) with U_c < 0: φ increases while h < 0 and the
    // interior optimum is at the upward zero-crossing of h.
    let lo = 1e-9;
    let hi = (1.0 / nf) - 1e-9;
    let h_lo = h(lo);
    let h_hi = h(hi);
    if h_lo >= 0.0 {
        // Marginal congestion cost dominates immediately: corner at zero.
        return Ok((0.0, 0.0));
    }
    if h_hi <= 0.0 {
        // Still improving at the saturation edge (cannot happen for AU
        // utilities since g' -> inf, but guard anyway).
        return Ok((hi, mm1::g(nf * hi) / nf));
    }
    let root = brent(h, lo, hi, 1e-13)?;
    Ok((root.x, mm1::g(nf * root.x) / nf))
}

/// Outcome of the uniform-scaling dominance probe.
#[derive(Debug, Clone)]
pub struct ScalingImprovement {
    /// The scale factor applied to every rate.
    pub scale: f64,
    /// Per-user utility gains at the scaled allocation (all positive).
    pub gains: Vec<f64>,
}

/// Searches scale factors `s ∈ (0, 1.2]` for a uniform rescaling of the
/// rate vector — keeping each user's *share* of the total congestion — that
/// strictly improves every user. Returns the best such improvement (by
/// minimum gain) or `None` if no scaling Pareto-dominates.
///
/// The scaled allocation `(s·r, shares·g(s·Σr))` is validated for subset
/// feasibility before being considered.
pub fn scaling_improvement(game: &Game, rates: &[f64]) -> Option<ScalingImprovement> {
    let base_u = game.utilities_at(rates);
    let c = game.allocation().congestion(rates);
    let total_c: f64 = c.iter().sum();
    if !total_c.is_finite() || total_c <= 0.0 {
        return None;
    }
    let shares: Vec<f64> = c.iter().map(|ci| ci / total_c).collect();
    let total_r: f64 = rates.iter().sum();
    let mut best: Option<ScalingImprovement> = None;
    for step in 1..240 {
        let s = step as f64 * 0.005; // 0.005 .. 1.2
        let sr: Vec<f64> = rates.iter().map(|r| r * s).collect();
        if s * total_r >= 0.999 {
            break;
        }
        let new_total_c = mm1::g(s * total_r);
        let sc: Vec<f64> = shares.iter().map(|sh| sh * new_total_c).collect();
        let alloc = match Allocation::new(sr.clone(), sc.clone()) {
            Ok(a) => a,
            Err(_) => continue,
        };
        if alloc.validate().is_err() {
            continue;
        }
        let gains: Vec<f64> = game
            .users()
            .iter()
            .enumerate()
            .map(|(i, u)| u.value(sr[i], sc[i]) - base_u[i])
            .collect();
        let min_gain = gains.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        if min_gain > 1e-10 {
            let better = match &best {
                None => true,
                Some(b) => min_gain > b.gains.iter().fold(f64::INFINITY, |a, &g| a.min(g)),
            };
            if better {
                best = Some(ScalingImprovement { scale: s, gains });
            }
        }
    }
    best
}

/// A feasible allocation found to Pareto-dominate a reference point.
#[derive(Debug, Clone)]
pub struct DominatingAllocation {
    /// Rates of the dominating allocation.
    pub rates: Vec<f64>,
    /// Congestions of the dominating allocation.
    pub congestions: Vec<f64>,
    /// Per-user utility gains over the reference (all ≥ 0, max > 0).
    pub gains: Vec<f64>,
}

/// Derivative-free pattern search over the *full* allocation space
/// (rates × congestion shares) for an allocation that Pareto-dominates
/// `rates` under the game's utilities. Deterministic; used to exhibit the
/// inefficiency of FIFO equilibria and the (local) undominatedness of
/// Pareto points.
///
/// Returns `None` if no dominating allocation is found within the budget —
/// which is evidence of (not proof of) Pareto optimality.
pub fn pattern_search_dominance(
    game: &Game,
    rates: &[f64],
    iterations: usize,
) -> Option<DominatingAllocation> {
    let n = rates.len();
    let base_u = game.utilities_at(rates);
    let c0 = game.allocation().congestion(rates);
    let total_c0: f64 = c0.iter().sum();
    if !total_c0.is_finite() || total_c0 <= 0.0 {
        return None;
    }
    // State: rates + congestion shares (simplex).
    let mut r: Vec<f64> = rates.to_vec();
    let mut shares: Vec<f64> = c0.iter().map(|x| x / total_c0).collect();
    let mut step = 0.05;
    let objective = |r: &[f64], shares: &[f64]| -> f64 {
        let total_r: f64 = r.iter().sum();
        if total_r >= 0.999 || r.iter().any(|&x| x <= 0.0) {
            return f64::NEG_INFINITY;
        }
        let tc = mm1::g(total_r);
        let c: Vec<f64> = shares.iter().map(|s| s * tc).collect();
        match Allocation::new(r.to_vec(), c.clone()) {
            Ok(a) if a.validate().is_ok() => {}
            _ => return f64::NEG_INFINITY,
        }
        game.users()
            .iter()
            .enumerate()
            .map(|(i, u)| u.value(r[i], c[i]) - base_u[i])
            .fold(f64::INFINITY, f64::min)
    };
    let mut best = objective(&r, &shares);
    for _ in 0..iterations {
        let mut improved = false;
        // Uniform scaling moves: at a Nash equilibrium no single-coordinate
        // move helps its owner (first-order optimality), but a collective
        // backoff can help everyone — this is the escape direction.
        for s in [1.0 - step, 1.0 + step] {
            let cand: Vec<f64> = r.iter().map(|x| (x * s).max(1e-9)).collect();
            let v = objective(&cand, &shares);
            if v > best {
                best = v;
                r = cand;
                improved = true;
            }
        }
        // Rate moves.
        for i in 0..n {
            for dir in [-1.0, 1.0] {
                let mut cand = r.clone();
                cand[i] = (cand[i] + dir * step).max(1e-9);
                let v = objective(&cand, &shares);
                if v > best {
                    best = v;
                    r = cand;
                    improved = true;
                }
            }
        }
        // Share transfers.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let delta = step * 0.5;
                if shares[j] <= delta {
                    continue;
                }
                let mut cand = shares.clone();
                cand[i] += delta;
                cand[j] -= delta;
                let v = objective(&r, &cand);
                if v > best {
                    best = v;
                    shares = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-5 {
                break;
            }
        }
    }
    if best > 1e-9 {
        let total_r: f64 = r.iter().sum();
        let tc = mm1::g(total_r);
        let c: Vec<f64> = shares.iter().map(|s| s * tc).collect();
        let gains: Vec<f64> = game
            .users()
            .iter()
            .enumerate()
            .map(|(i, u)| u.value(r[i], c[i]) - base_u[i])
            .collect();
        Some(DominatingAllocation {
            rates: r,
            congestions: c,
            gains,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::NashOptions;
    use crate::utility::{LinearUtility, LogUtility, UtilityExt};
    use greednet_queueing::{FairShare, Proportional};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    fn identical_linear_game(
        alloc: impl greednet_queueing::AllocationFunction + 'static,
        n: usize,
        gamma: f64,
    ) -> Game {
        let users = (0..n)
            .map(|_| LinearUtility::new(1.0, gamma).boxed())
            .collect();
        Game::new(alloc, users).unwrap()
    }

    #[test]
    fn symmetric_pareto_linear_closed_form() {
        // M = -1/gamma; Z = -g'(nr) = -1/(1-nr)^2. FDC: 1/gamma = 1/(1-nr)^2
        // -> total load nr = 1 - sqrt(gamma).
        let u = LinearUtility::new(1.0, 0.25);
        let (r, c) = symmetric_pareto(&u, 4).unwrap();
        assert_close(4.0 * r, 1.0 - 0.5, 1e-10);
        assert_close(c, mm1::g(0.5) / 4.0, 1e-10);
    }

    #[test]
    fn symmetric_pareto_interior_and_corner() {
        // gamma = 0.81 < 1: interior optimum at total load 1 - sqrt(gamma).
        let u = LinearUtility::new(1.0, 0.81);
        let (r, _) = symmetric_pareto(&u, 2).unwrap();
        assert_close(2.0 * r, 1.0 - 0.9, 1e-9);
        // gamma > 1: h(0+) = -1/gamma + 1 > 0 — congestion cost dominates
        // from the first packet, so the optimum is the corner at zero.
        let averse = LinearUtility::new(1.0, 2.0);
        let (r0, c0) = symmetric_pareto(&averse, 3).unwrap();
        assert_eq!((r0, c0), (0.0, 0.0));
    }

    #[test]
    fn fifo_nash_fails_pareto_fdc_fair_share_symmetric_passes() {
        let gamma = 0.25;
        let n = 3;
        // FIFO Nash.
        let fifo = identical_linear_game(Proportional::new(), n, gamma);
        let nash_fifo = fifo.solve_nash(&NashOptions::default()).unwrap();
        assert!(nash_fifo.converged);
        assert!(!is_pareto_fdc(&fifo, &nash_fifo.rates, 1e-3));
        // Fair Share Nash with identical users = symmetric Pareto point.
        let fs = identical_linear_game(FairShare::new(), n, gamma);
        let nash_fs = fs.solve_nash(&NashOptions::default()).unwrap();
        assert!(nash_fs.converged);
        assert!(
            is_pareto_fdc(&fs, &nash_fs.rates, 1e-4),
            "residuals: {:?}",
            fdc_residuals(&fs, &nash_fs.rates)
        );
        // And it coincides with the symmetric Pareto computation.
        let u = LinearUtility::new(1.0, gamma);
        let (rp, _) = symmetric_pareto(&u, n).unwrap();
        assert_close(nash_fs.rates[0], rp, 1e-6);
    }

    #[test]
    fn fifo_nash_is_dominated_by_uniform_backoff() {
        // The tragedy of the commons: at the FIFO Nash equilibrium a
        // uniform rate reduction benefits every user.
        let game = identical_linear_game(Proportional::new(), 4, 0.25);
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        let imp = scaling_improvement(&game, &nash.rates)
            .expect("FIFO Nash must be dominated by scaling back");
        assert!(imp.scale < 1.0);
        assert!(imp.gains.iter().all(|&g| g > 0.0));
    }

    #[test]
    fn fair_share_symmetric_nash_not_dominated_by_scaling() {
        let game = identical_linear_game(FairShare::new(), 4, 0.25);
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(scaling_improvement(&game, &nash.rates).is_none());
    }

    #[test]
    fn pattern_search_dominates_fifo_nash() {
        let game = identical_linear_game(Proportional::new(), 3, 0.25);
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        let dom =
            pattern_search_dominance(&game, &nash.rates, 200).expect("FIFO Nash must be dominated");
        assert!(dom.gains.iter().all(|&g| g > 0.0));
        // The dominating allocation is feasible.
        let a = Allocation::new(dom.rates.clone(), dom.congestions.clone()).unwrap();
        a.validate().unwrap();
    }

    #[test]
    fn pattern_search_cannot_dominate_symmetric_pareto() {
        let game = identical_linear_game(FairShare::new(), 3, 0.25);
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(is_pareto_fdc(&game, &nash.rates, 1e-4));
        assert!(pattern_search_dominance(&game, &nash.rates, 200).is_none());
    }

    #[test]
    fn heterogeneous_fs_nash_is_not_pareto() {
        // Theorem 2(1): Pareto + Nash forces equal rates; heterogeneous
        // users give unequal Nash rates, which therefore fail the Pareto FDC.
        let users = vec![
            LogUtility::new(0.2, 1.0).boxed(),
            LogUtility::new(0.9, 1.0).boxed(),
        ];
        let game = Game::new(FairShare::new(), users).unwrap();
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(nash.converged);
        assert!((nash.rates[0] - nash.rates[1]).abs() > 1e-3);
        assert!(!is_pareto_fdc(&game, &nash.rates, 1e-3));
    }

    #[test]
    fn fdc_residuals_shape() {
        let game = identical_linear_game(Proportional::new(), 2, 0.5);
        let res = fdc_residuals(&game, &[0.1, 0.2]);
        assert_eq!(res.len(), 2);
        // Linear users: residual = -1/gamma + g'(R), identical across users.
        assert_close(res[0], res[1], 1e-12);
        assert_close(res[0], -2.0 + 1.0 / (0.7f64 * 0.7), 1e-10);
    }
}
