//! The switch-sharing game: `N` selfish users, one allocation function.
//!
//! Users pick rates `r_i` to maximize `U_i(r_i, C_i(r))`; the stable
//! operating points are Nash equilibria (Definition 1 of the paper). This
//! module provides best-response computation, Nash solving by damped
//! best-response iteration (Gauss–Seidel or Jacobi), equilibrium
//! *verification* by global deviation search, multi-start uniqueness
//! probes (Theorem 4), and the envy diagnostics of Theorem 3.

use crate::error::CoreError;
use crate::utility::BoxedUtility;
use crate::Result;
use greednet_numerics::optimize::{brent_max, grid_refine_max};
use greednet_numerics::roots::brent;
use greednet_queueing::alloc::AllocationFunction;
use greednet_queueing::feasible::validate_rates;
use greednet_telemetry::{NoopProbe, Probe, SolverEvent};

/// Smallest rate considered by solvers (the paper requires `r_i > 0`).
pub const MIN_RATE: f64 = 1e-9;
/// Largest rate considered by solvers: the server has unit capacity, so no
/// best response ever exceeds 1 (congestion is infinite beyond saturation).
pub const MAX_RATE: f64 = 1.0 - 1e-9;

/// How users are updated during best-response iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateOrder {
    /// Sequential sweeps: user `i` sees the already-updated rates of users
    /// `< i` (usually converges fastest).
    #[default]
    GaussSeidel,
    /// Simultaneous updates: all users respond to the previous iterate
    /// (the paper's synchronous-update model).
    Jacobi,
}

/// Options for [`Game::solve_nash`].
#[derive(Debug, Clone)]
pub struct NashOptions {
    /// Maximum best-response sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the largest single-user rate change.
    pub tol: f64,
    /// Damping factor in `(0, 1]`: `r ← (1-d)·r_old + d·r_br`.
    pub damping: f64,
    /// Update schedule.
    pub update: UpdateOrder,
    /// Starting point (defaults to the symmetric light-load point
    /// `r_i = 0.5/N`).
    pub start: Option<Vec<f64>>,
    /// Grid size for the global fallback inside best responses.
    pub br_grid: usize,
}

impl Default for NashOptions {
    fn default() -> Self {
        NashOptions {
            max_iter: 500,
            tol: 1e-9,
            damping: 1.0,
            update: UpdateOrder::GaussSeidel,
            start: None,
            br_grid: 96,
        }
    }
}

/// A computed equilibrium candidate.
#[derive(Debug, Clone)]
pub struct NashSolution {
    /// Equilibrium rates.
    pub rates: Vec<f64>,
    /// Congestion at the equilibrium.
    pub congestions: Vec<f64>,
    /// Utility of each user at the equilibrium.
    pub utilities: Vec<f64>,
    /// Sweeps performed.
    pub iterations: usize,
    /// Whether the iteration met the tolerance.
    pub converged: bool,
    /// Final largest single-user rate change.
    pub residual: f64,
}

/// Result of a global no-profitable-deviation audit.
#[derive(Debug, Clone)]
pub struct NashCheck {
    /// Largest utility gain any user can get by a unilateral deviation.
    pub max_gain: f64,
    /// The user achieving `max_gain`.
    pub worst_user: usize,
    /// Per-user best deviation gains.
    pub gains: Vec<f64>,
}

impl NashCheck {
    /// True if no user can improve by more than `tol`.
    pub fn is_nash(&self, tol: f64) -> bool {
        self.max_gain <= tol
    }
}

/// The switch-sharing game.
///
/// ```
/// use greednet_core::game::{Game, NashOptions};
/// use greednet_core::utility::{LinearUtility, UtilityExt};
/// use greednet_queueing::FairShare;
///
/// // Two identical linear users under Fair Share: at the symmetric Nash
/// // equilibrium the total load is 1 - sqrt(gamma) (see the paper's FDC).
/// let gamma = 0.25;
/// let users = (0..2).map(|_| LinearUtility::new(1.0, gamma).boxed()).collect();
/// let game = Game::new(FairShare::new(), users).unwrap();
/// let nash = game.solve_nash(&NashOptions::default()).unwrap();
/// let total: f64 = nash.rates.iter().sum();
/// assert!((total - (1.0 - gamma.sqrt())).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct Game {
    alloc: Box<dyn AllocationFunction>,
    users: Vec<BoxedUtility>,
}

impl Clone for Game {
    fn clone(&self) -> Self {
        Game {
            alloc: self.alloc.clone_box(),
            users: self.users.clone(),
        }
    }
}

impl Game {
    /// Creates a game from an allocation function and one utility per user.
    ///
    /// # Errors
    /// [`CoreError::EmptyGame`] if no users are supplied.
    pub fn new(alloc: impl AllocationFunction + 'static, users: Vec<BoxedUtility>) -> Result<Self> {
        Self::from_boxed(Box::new(alloc), users)
    }

    /// Creates a game from a boxed allocation function.
    ///
    /// # Errors
    /// [`CoreError::EmptyGame`] if no users are supplied.
    pub fn from_boxed(
        alloc: Box<dyn AllocationFunction>,
        users: Vec<BoxedUtility>,
    ) -> Result<Self> {
        if users.is_empty() {
            return Err(CoreError::EmptyGame);
        }
        Ok(Game { alloc, users })
    }

    /// Number of users.
    pub fn n(&self) -> usize {
        self.users.len()
    }

    /// The allocation function.
    pub fn allocation(&self) -> &dyn AllocationFunction {
        self.alloc.as_ref()
    }

    /// The users' utilities.
    pub fn users(&self) -> &[BoxedUtility] {
        &self.users
    }

    /// Utility of user `i` when the rate vector is `rates` (with user `i`'s
    /// entry replaced by `x`).
    pub fn utility_replacing(&self, rates: &[f64], i: usize, x: f64) -> f64 {
        let mut r = rates.to_vec();
        r[i] = x;
        let c = self.alloc.congestion_of(&r, i);
        self.users[i].value(x, c)
    }

    /// All users' utilities at `rates`.
    pub fn utilities_at(&self, rates: &[f64]) -> Vec<f64> {
        let c = self.alloc.congestion(rates);
        self.users
            .iter()
            .enumerate()
            .map(|(i, u)| u.value(rates[i], c[i]))
            .collect()
    }

    /// The Nash first-derivative residual of user `i`:
    /// `E_i = M_i(r_i, C_i(r)) + ∂C_i/∂r_i` (zero at an interior optimum).
    pub fn nash_residual(&self, rates: &[f64], i: usize) -> f64 {
        let c = self.alloc.congestion_of(rates, i);
        self.users[i].marginal_ratio(rates[i], c) + self.alloc.d_own(rates, i)
    }

    /// All users' Nash residuals.
    pub fn nash_residuals(&self, rates: &[f64]) -> Vec<f64> {
        (0..self.n())
            .map(|i| self.nash_residual(rates, i))
            .collect()
    }

    /// The derivative of user `i`'s payoff with respect to its own rate at
    /// `x` (others fixed at `rates`): `φ'(x) = U_r + U_c · ∂C_i/∂r_i`.
    fn payoff_slope(&self, rates: &[f64], i: usize, x: f64) -> f64 {
        let mut r = rates.to_vec();
        r[i] = x;
        let c = self.alloc.congestion_of(&r, i);
        if !c.is_finite() {
            // Beyond the user's saturation point: pushing harder only hurts.
            return -1e30;
        }
        self.users[i].du_dr(x, c) + self.users[i].du_dc(x, c) * self.alloc.d_own(&r, i)
    }

    /// Largest own rate at which user `i`'s congestion stays finite
    /// (binary search; `MAX_RATE` if finite everywhere).
    fn saturation_rate(&self, rates: &[f64], i: usize) -> f64 {
        let mut r = rates.to_vec();
        r[i] = MAX_RATE;
        if self.alloc.congestion_of(&r, i).is_finite() {
            return MAX_RATE;
        }
        let (mut lo, mut hi) = (MIN_RATE, MAX_RATE);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            r[i] = mid;
            if self.alloc.congestion_of(&r, i).is_finite() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Best response of user `i` to `rates`: the rate maximizing
    /// `U_i(x, C_i(r |^i x))` over `(0, 1)`.
    ///
    /// Strategy: solve the first-derivative condition by bracketed root
    /// finding on the (concave, for AC disciplines) payoff slope; fall back
    /// to a global grid-and-refine search when the slope does not bracket
    /// (multi-modal or boundary cases).
    ///
    /// # Errors
    /// Propagates numerical failures from the optimizer.
    pub fn best_response(&self, rates: &[f64], i: usize, grid: usize) -> Result<f64> {
        let hi = (self.saturation_rate(rates, i) - 1e-9).max(MIN_RATE * 2.0);
        let slope_lo = self.payoff_slope(rates, i, MIN_RATE);
        if slope_lo <= 0.0 {
            // Even the first packet hurts: corner solution at ~zero.
            return Ok(MIN_RATE);
        }
        let slope_hi = self.payoff_slope(rates, i, hi);
        if slope_hi >= 0.0 {
            // Still improving at the saturation edge.
            return Ok(hi);
        }
        let fdc = brent(|x| self.payoff_slope(rates, i, x), MIN_RATE, hi, 1e-12);
        if let Ok(root) = fdc {
            // Guard against multi-modality: accept only if no grid point
            // beats the FDC point.
            let u_root = self.utility_replacing(rates, i, root.x);
            let coarse = grid_refine_max(
                |x| self.utility_replacing(rates, i, x),
                MIN_RATE,
                hi,
                grid.max(8),
                1e-12,
            )?;
            if coarse.fx > u_root + 1e-12 * (1.0 + u_root.abs()) {
                return Ok(coarse.x);
            }
            return Ok(root.x);
        }
        let global = grid_refine_max(
            |x| self.utility_replacing(rates, i, x),
            MIN_RATE,
            hi,
            grid.max(8),
            1e-12,
        )?;
        Ok(global.x)
    }

    /// Solves for a Nash equilibrium by damped best-response iteration.
    ///
    /// # Errors
    /// Propagates optimizer failures and invalid starting points.
    pub fn solve_nash(&self, opts: &NashOptions) -> Result<NashSolution> {
        let fixed = vec![None; self.n()];
        self.solve_nash_fixed(&fixed, opts)
    }

    /// Solves the *subsystem* game in which users with `fixed[i] =
    /// Some(rate)` never move (§4 of the paper uses these induced
    /// subsystems throughout; the Stackelberg solver fixes the leader).
    ///
    /// # Errors
    /// Propagates optimizer failures and invalid starting points.
    pub fn solve_nash_fixed(
        &self,
        fixed: &[Option<f64>],
        opts: &NashOptions,
    ) -> Result<NashSolution> {
        self.solve_nash_probed(fixed, opts, &mut NoopProbe)
    }

    /// [`solve_nash_fixed`](Game::solve_nash_fixed) with per-user
    /// best-response iterates reported to `probe` as
    /// [`SolverEvent::BestResponse`]. Observation is passive: the
    /// returned solution is identical for every probe.
    ///
    /// # Errors
    /// Propagates optimizer failures and invalid starting points.
    pub fn solve_nash_probed<P: Probe>(
        &self,
        fixed: &[Option<f64>],
        opts: &NashOptions,
        probe: &mut P,
    ) -> Result<NashSolution> {
        let n = self.n();
        if fixed.len() != n {
            return Err(CoreError::UserCountMismatch {
                utilities: fixed.len(),
                expected: n,
            });
        }
        let mut rates: Vec<f64> = match &opts.start {
            Some(s) => {
                if s.len() != n {
                    return Err(CoreError::UserCountMismatch {
                        utilities: s.len(),
                        expected: n,
                    });
                }
                validate_rates(s).map_err(CoreError::from)?;
                s.clone()
            }
            None => vec![0.5 / n as f64; n],
        };
        for (i, f) in fixed.iter().enumerate() {
            if let Some(v) = f {
                rates[i] = *v;
            }
        }
        if !(0.0 < opts.damping && opts.damping <= 1.0) {
            return Err(CoreError::InvalidArgument {
                detail: format!("damping must lie in (0, 1], got {}", opts.damping),
            });
        }
        let mut residual = f64::INFINITY;
        for iter in 1..=opts.max_iter {
            residual = 0.0;
            match opts.update {
                UpdateOrder::GaussSeidel => {
                    for i in 0..n {
                        if fixed[i].is_some() {
                            continue;
                        }
                        let br = self.best_response(&rates, i, opts.br_grid)?;
                        let next = (1.0 - opts.damping) * rates[i] + opts.damping * br;
                        let delta = (next - rates[i]).abs();
                        residual = residual.max(delta);
                        rates[i] = next;
                        if P::ENABLED {
                            probe.on_solver(&SolverEvent::BestResponse {
                                iteration: greednet_numerics::conv::index_to_u64(iter),
                                user: i,
                                rate: next,
                                residual: delta,
                            });
                        }
                    }
                }
                UpdateOrder::Jacobi => {
                    let snapshot = rates.clone();
                    for i in 0..n {
                        if fixed[i].is_some() {
                            continue;
                        }
                        let br = self.best_response(&snapshot, i, opts.br_grid)?;
                        let next = (1.0 - opts.damping) * snapshot[i] + opts.damping * br;
                        let delta = (next - snapshot[i]).abs();
                        residual = residual.max(delta);
                        rates[i] = next;
                        if P::ENABLED {
                            probe.on_solver(&SolverEvent::BestResponse {
                                iteration: greednet_numerics::conv::index_to_u64(iter),
                                user: i,
                                rate: next,
                                residual: delta,
                            });
                        }
                    }
                }
            }
            if residual < opts.tol {
                let congestions = self.alloc.congestion(&rates);
                let utilities = self.utilities_at(&rates);
                return Ok(NashSolution {
                    rates,
                    congestions,
                    utilities,
                    iterations: iter,
                    converged: true,
                    residual,
                });
            }
        }
        let congestions = self.alloc.congestion(&rates);
        let utilities = self.utilities_at(&rates);
        Ok(NashSolution {
            rates,
            congestions,
            utilities,
            iterations: opts.max_iter,
            converged: false,
            residual,
        })
    }

    /// Audits a candidate equilibrium by global unilateral-deviation search
    /// (dense grid + local refinement per user).
    ///
    /// # Errors
    /// Propagates optimizer failures.
    pub fn verify_nash(&self, rates: &[f64], grid: usize) -> Result<NashCheck> {
        let base = self.utilities_at(rates);
        let mut gains = Vec::with_capacity(self.n());
        for i in 0..self.n() {
            let hi = (self.saturation_rate(rates, i) - 1e-9).max(MIN_RATE * 2.0);
            let best = grid_refine_max(
                |x| self.utility_replacing(rates, i, x),
                MIN_RATE,
                hi,
                grid.max(16),
                1e-12,
            )?;
            // Polish around the current point too (the grid may straddle it).
            let local_lo = (rates[i] - 0.02).max(MIN_RATE);
            let local_hi = (rates[i] + 0.02).min(hi);
            let local = if local_lo < local_hi {
                brent_max(
                    |x| self.utility_replacing(rates, i, x),
                    local_lo,
                    local_hi,
                    1e-12,
                )?
                .fx
            } else {
                base[i]
            };
            let best_utility = best.fx.max(local).max(base[i]);
            gains.push(best_utility - base[i]);
        }
        // `gains` has one entry per user and the game is non-empty by
        // construction, so a fold (which cannot panic) replaces max_by.
        let (worst_user, max_gain) =
            gains
                .iter()
                .enumerate()
                .fold((0, f64::NEG_INFINITY), |acc, (i, &g)| {
                    // `>=` keeps the last maximum on exact ties, matching the
                    // max_by this fold replaced.
                    if g >= acc.1 {
                        (i, g)
                    } else {
                        acc
                    }
                });
        Ok(NashCheck {
            max_gain,
            worst_user,
            gains,
        })
    }

    /// The envy matrix at `rates`: entry `(i, j)` is how much user `i`
    /// prefers user `j`'s allocation to its own,
    /// `U_i(r_j, c_j) − U_i(r_i, c_i)` (positive = envy; §4.1.2).
    pub fn envy_matrix(&self, rates: &[f64]) -> greednet_numerics::Matrix {
        let c = self.alloc.congestion(rates);
        let n = self.n();
        greednet_numerics::Matrix::from_fn(n, n, |i, j| {
            let own = self.users[i].value(rates[i], c[i]);
            let other = self.users[i].value(rates[j], c[j]);
            if own.is_infinite() && other.is_infinite() {
                0.0
            } else {
                other - own
            }
        })
    }

    /// The largest envy any user holds toward any other at `rates`
    /// (`<= 0` means envy-free).
    ///
    /// # Errors
    /// Propagates rate-validation failures.
    pub fn max_envy(&self, rates: &[f64]) -> Result<f64> {
        validate_rates(rates).map_err(CoreError::from)?;
        let m = self.envy_matrix(rates);
        let mut worst = f64::NEG_INFINITY;
        for i in 0..self.n() {
            for j in 0..self.n() {
                if i != j {
                    worst = worst.max(m[(i, j)]);
                }
            }
        }
        Ok(if self.n() == 1 { 0.0 } else { worst })
    }
}

/// Runs [`Game::solve_nash`] from `starts.len()` different starting points
/// and clusters the converged equilibria by `cluster_tol` (L∞ distance).
/// Used to probe uniqueness (Theorem 4).
///
/// # Errors
/// Propagates solver failures.
pub fn distinct_equilibria(
    game: &Game,
    starts: &[Vec<f64>],
    opts: &NashOptions,
    cluster_tol: f64,
) -> Result<Vec<NashSolution>> {
    distinct_equilibria_par(game, starts, opts, cluster_tol, 1)
}

/// Parallel multi-start search for distinct Nash equilibria.
///
/// The per-start best-response solves run on up to `threads` workers;
/// clustering then happens serially in start order, so the result is
/// identical to [`distinct_equilibria`] for every thread count.
///
/// # Errors
/// Propagates the first solver error, in start order.
pub fn distinct_equilibria_par(
    game: &Game,
    starts: &[Vec<f64>],
    opts: &NashOptions,
    cluster_tol: f64,
    threads: usize,
) -> Result<Vec<NashSolution>> {
    let solutions = greednet_runtime::ParallelSweep::new(threads).map(starts, |_, s| {
        let mut o = opts.clone();
        o.start = Some(s.clone());
        game.solve_nash(&o)
    });
    let mut found: Vec<NashSolution> = Vec::new();
    for sol in solutions {
        let sol = sol?;
        if !sol.converged {
            continue;
        }
        let is_new = found.iter().all(|f| {
            f.rates
                .iter()
                .zip(&sol.rates)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
                > cluster_tol
        });
        if is_new {
            found.push(sol);
        }
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::{ExpExpUtility, LinearUtility, LogUtility, PowerUtility, UtilityExt};
    use greednet_queueing::{mm1, FairShare, Proportional};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn empty_game_rejected() {
        assert!(matches!(
            Game::new(Proportional::new(), vec![]),
            Err(CoreError::EmptyGame)
        ));
    }

    #[test]
    fn single_user_fifo_linear_nash_closed_form() {
        // One user, FIFO, U = r - gamma c: FDC gives dC/dr = 1/gamma with
        // dC/dr = 1/(1-r)^2, so r* = 1 - sqrt(gamma).
        let gamma = 0.25;
        let game = Game::new(
            Proportional::new(),
            vec![LinearUtility::new(1.0, gamma).boxed()],
        )
        .unwrap();
        let sol = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(sol.converged);
        assert_close(sol.rates[0], 1.0 - gamma.sqrt(), 1e-6);
        let check = game.verify_nash(&sol.rates, 512).unwrap();
        assert!(check.is_nash(1e-7), "gain {}", check.max_gain);
    }

    #[test]
    fn symmetric_fifo_linear_nash_matches_fdc() {
        // N identical linear users under FIFO: at the symmetric Nash,
        // (u + r)/u^2 = 1/gamma with u = 1 - N r.
        let n = 3;
        let gamma = 0.2;
        let users = (0..n)
            .map(|_| LinearUtility::new(1.0, gamma).boxed())
            .collect();
        let game = Game::new(Proportional::new(), users).unwrap();
        let sol = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(sol.converged, "residual {}", sol.residual);
        let r = sol.rates[0];
        for &ri in &sol.rates {
            assert_close(ri, r, 1e-6);
        }
        let u = 1.0 - n as f64 * r;
        assert_close((u + r) / (u * u), 1.0 / gamma, 1e-4);
    }

    #[test]
    fn symmetric_fair_share_nash_identical_users() {
        // N identical users under Fair Share: symmetric Nash with
        // dC_i/dr_i = g'(N r): M + g'(Nr) = 0 -> 1/gamma = g'(Nr)
        // -> 1 - Nr = sqrt(gamma).
        let n = 4;
        let gamma = 0.36;
        let users = (0..n)
            .map(|_| LinearUtility::new(1.0, gamma).boxed())
            .collect();
        let game = Game::new(FairShare::new(), users).unwrap();
        let sol = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(sol.converged);
        let total: f64 = sol.rates.iter().sum();
        assert_close(total, 1.0 - gamma.sqrt(), 1e-6);
        let check = game.verify_nash(&sol.rates, 512).unwrap();
        assert!(check.is_nash(1e-7), "gain {}", check.max_gain);
    }

    #[test]
    fn heterogeneous_fair_share_nash_verifies() {
        let users = vec![
            LogUtility::new(0.5, 2.0).boxed(),
            PowerUtility::new(0.5, 1.0).boxed(),
            LinearUtility::new(1.0, 0.3).boxed(),
        ];
        let game = Game::new(FairShare::new(), users).unwrap();
        let sol = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(sol.converged);
        let check = game.verify_nash(&sol.rates, 512).unwrap();
        assert!(check.is_nash(1e-6), "gain {}", check.max_gain);
        // Residuals vanish at an interior equilibrium.
        for e in game.nash_residuals(&sol.rates) {
            assert!(e.abs() < 1e-4, "residual {e}");
        }
    }

    #[test]
    fn jacobi_and_gauss_seidel_agree_on_fair_share() {
        let users: Vec<_> = (0..3)
            .map(|i| LogUtility::new(0.3 + 0.2 * i as f64, 1.5).boxed())
            .collect();
        let game = Game::new(FairShare::new(), users).unwrap();
        let gs = game.solve_nash(&NashOptions::default()).unwrap();
        let mut jopts = NashOptions {
            update: UpdateOrder::Jacobi,
            damping: 0.7,
            ..Default::default()
        };
        jopts.max_iter = 2000;
        let jc = game.solve_nash(&jopts).unwrap();
        assert!(gs.converged && jc.converged);
        for (a, b) in gs.rates.iter().zip(&jc.rates) {
            assert_close(*a, *b, 1e-5);
        }
    }

    #[test]
    fn congestion_averse_user_sends_almost_nothing() {
        // gamma >= 1 under FIFO with a single user: corner at ~0.
        let game = Game::new(
            Proportional::new(),
            vec![LinearUtility::new(1.0, 2.0).boxed()],
        )
        .unwrap();
        let sol = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(sol.rates[0] <= 2.0 * MIN_RATE);
    }

    #[test]
    fn best_response_never_saturates_the_queue() {
        let users = vec![
            LinearUtility::new(1.0, 0.01).boxed(),
            LinearUtility::new(1.0, 0.01).boxed(),
        ];
        let game = Game::new(Proportional::new(), users).unwrap();
        let br = game.best_response(&[0.4, 0.4], 0, 64).unwrap();
        assert!(br < 0.6, "br = {br} would saturate");
        let c = Proportional::new().congestion_of(&[br, 0.4], 0);
        assert!(c.is_finite());
    }

    #[test]
    fn verify_rejects_non_equilibrium() {
        let users = vec![
            LinearUtility::new(1.0, 0.2).boxed(),
            LinearUtility::new(1.0, 0.2).boxed(),
        ];
        let game = Game::new(Proportional::new(), users).unwrap();
        let check = game.verify_nash(&[0.01, 0.01], 256).unwrap();
        assert!(!check.is_nash(1e-6));
        assert!(check.max_gain > 0.01);
    }

    #[test]
    fn fixed_user_subsystem() {
        // Fix user 0 at a large rate; the free user re-equilibrates.
        let users = vec![
            LinearUtility::new(1.0, 0.2).boxed(),
            LinearUtility::new(1.0, 0.2).boxed(),
        ];
        let game = Game::new(FairShare::new(), users).unwrap();
        let sol = game
            .solve_nash_fixed(&[Some(0.3), None], &NashOptions::default())
            .unwrap();
        assert!(sol.converged);
        assert_eq!(sol.rates[0], 0.3);
        // The free user's FDC must hold.
        assert!(game.nash_residual(&sol.rates, 1).abs() < 1e-4);
    }

    #[test]
    fn envy_matrix_diagonal_zero_and_fs_nash_envy_free() {
        let users = vec![
            LinearUtility::new(1.0, 0.1).boxed(),
            LinearUtility::new(1.0, 0.6).boxed(),
        ];
        let game = Game::new(FairShare::new(), users).unwrap();
        let sol = game.solve_nash(&NashOptions::default()).unwrap();
        let m = game.envy_matrix(&sol.rates);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 1)], 0.0);
        assert!(game.max_envy(&sol.rates).unwrap() <= 1e-7);
    }

    #[test]
    fn multistart_finds_single_fs_equilibrium() {
        let users = vec![
            LogUtility::new(0.4, 1.0).boxed(),
            LogUtility::new(0.8, 1.0).boxed(),
        ];
        let game = Game::new(FairShare::new(), users).unwrap();
        let starts = vec![
            vec![0.01, 0.01],
            vec![0.4, 0.01],
            vec![0.01, 0.4],
            vec![0.3, 0.3],
        ];
        let eq = distinct_equilibria(&game, &starts, &NashOptions::default(), 1e-5).unwrap();
        assert_eq!(eq.len(), 1, "Fair Share must have a unique equilibrium");
    }

    #[test]
    fn expexp_pinning_creates_prescribed_equilibrium() {
        // Lemma 5 in action: pick a target point, build utilities whose
        // Nash equilibrium (under Fair Share) is exactly that point.
        let fs = FairShare::new();
        let target = vec![0.15, 0.25];
        let c = fs.congestion(&target);
        let users: Vec<_> = (0..2)
            .map(|i| ExpExpUtility::pinning(target[i], c[i], fs.d_own(&target, i), 60.0).boxed())
            .collect();
        let game = Game::new(FairShare::new(), users).unwrap();
        let check = game.verify_nash(&target, 1024).unwrap();
        assert!(check.is_nash(1e-5), "gain {}", check.max_gain);
        // And the solver should find it.
        let sol = game.solve_nash(&NashOptions::default()).unwrap();
        assert!(sol.converged);
        assert_close(sol.rates[0], target[0], 1e-3);
        assert_close(sol.rates[1], target[1], 1e-3);
    }

    #[test]
    fn utilities_at_matches_manual() {
        let users = vec![LinearUtility::new(1.0, 0.5).boxed()];
        let game = Game::new(Proportional::new(), users).unwrap();
        let r = [0.4];
        let u = game.utilities_at(&r);
        assert_close(u[0], 0.4 - 0.5 * mm1::g(0.4), 1e-12);
    }

    #[test]
    fn invalid_damping_rejected() {
        let users = vec![LinearUtility::new(1.0, 0.5).boxed()];
        let game = Game::new(Proportional::new(), users).unwrap();
        let opts = NashOptions {
            damping: 0.0,
            ..Default::default()
        };
        assert!(game.solve_nash(&opts).is_err());
    }

    #[test]
    fn mismatched_start_rejected() {
        let users = vec![LinearUtility::new(1.0, 0.5).boxed()];
        let game = Game::new(Proportional::new(), users).unwrap();
        let opts = NashOptions {
            start: Some(vec![0.1, 0.2]),
            ..Default::default()
        };
        assert!(matches!(
            game.solve_nash(&opts),
            Err(CoreError::UserCountMismatch { .. })
        ));
    }
}
