//! The Newton self-optimization relaxation matrix (§4.2.3, Theorem 7).
//!
//! Each user measures its distance from the Nash first-derivative
//! condition, `E_i = M_i(r_i, C_i(r)) + ∂C_i/∂r_i`, and performs the
//! Newton update `r_i ← r_i − E_i / (∂E_i/∂r_i)` (synchronously). The
//! linearized error dynamics are `E(t+1) = A·E(t)` with
//!
//! ```text
//! A_ij = δ_ij − (∂E_i/∂r_j) / (∂E_j/∂r_j)
//! ```
//!
//! Theorem 7: under Fair Share `A` is *nilpotent* (all-zero spectrum —
//! convergence in at most `N` steps), and Fair Share is the only MAC
//! discipline with that property. Under FIFO with identical linear
//! utilities the leading eigenvalue is `−(N−1)·(u+2r)/(2u+2r)`, which
//! approaches the paper's `1 − N` as the slack capacity `u → 0` and
//! exceeds 1 in magnitude for every `N ≥ 3`: the dynamics are unstable.

use crate::game::Game;
use crate::Result;
use greednet_numerics::eig::{eigenvalues, Complex};
use greednet_numerics::Matrix;
use greednet_telemetry::{NoopProbe, Probe, SolverEvent};

/// `∂E_i/∂r_j` where `E_i = M_i(r_i, C_i(r)) + ∂C_i/∂r_i`:
///
/// ```text
/// ∂E_i/∂r_j = δ_ij·∂M_i/∂r + (∂M_i/∂c)·(∂C_i/∂r_j) + ∂²C_i/∂r_i∂r_j
/// ```
pub fn de_dr(game: &Game, rates: &[f64], i: usize, j: usize) -> f64 {
    let alloc = game.allocation();
    let c = alloc.congestion_of(rates, i);
    let u = &game.users()[i];
    let mut v = u.dm_dc(rates[i], c) * alloc.d_cross(rates, i, j) + alloc.d2_own_cross(rates, i, j);
    if i == j {
        v += u.dm_dr(rates[i], c);
    }
    v
}

/// The relaxation matrix `A` at `rates`.
pub fn relaxation_matrix(game: &Game, rates: &[f64]) -> Matrix {
    let n = game.n();
    let diag: Vec<f64> = (0..n).map(|j| de_dr(game, rates, j, j)).collect();
    Matrix::from_fn(n, n, |i, j| {
        let delta = if i == j { 1.0 } else { 0.0 };
        delta - de_dr(game, rates, i, j) / diag[j]
    })
}

/// Eigenvalues of the relaxation matrix, sorted by decreasing magnitude.
///
/// # Errors
/// Propagates eigenvalue-solver failures.
pub fn spectrum(game: &Game, rates: &[f64]) -> Result<Vec<Complex>> {
    Ok(eigenvalues(&relaxation_matrix(game, rates))?)
}

/// Spectral radius of the relaxation matrix; `> 1` means the synchronous
/// Newton dynamics are linearly unstable at `rates`.
///
/// # Errors
/// Propagates eigenvalue-solver failures.
pub fn spectral_radius(game: &Game, rates: &[f64]) -> Result<f64> {
    Ok(spectrum(game, rates)?.first().map_or(0.0, Complex::abs))
}

/// True if the relaxation matrix is nilpotent at `rates` (Theorem 7's
/// Fair Share signature), tested by direct matrix powering.
///
/// # Errors
/// Propagates matrix-shape failures (cannot occur for a valid game).
pub fn is_nilpotent_at(game: &Game, rates: &[f64], tol: f64) -> Result<bool> {
    Ok(relaxation_matrix(game, rates).is_nilpotent(tol)?)
}

/// One synchronous Newton step: `r_i ← r_i − E_i/(∂E_i/∂r_i)`, clamped to
/// stay strictly positive and inside the stable region.
pub fn newton_step(game: &Game, rates: &[f64]) -> Vec<f64> {
    newton_step_probed(game, rates, 0, &mut NoopProbe)
}

/// [`newton_step`] with each user's update reported to `probe` as
/// [`SolverEvent::RelaxationStep`] (carrying the caller-supplied `step`
/// index and the consumed residual `E_i`). Users skipped over a
/// non-finite or zero denominator emit nothing. Observation is passive:
/// the returned rates are identical for every probe.
pub fn newton_step_probed<P: Probe>(
    game: &Game,
    rates: &[f64],
    step: u64,
    probe: &mut P,
) -> Vec<f64> {
    let n = game.n();
    let mut next = rates.to_vec();
    for i in 0..n {
        let e = game.nash_residual(rates, i);
        let d = de_dr(game, rates, i, i);
        if !e.is_finite() || !d.is_finite() || d == 0.0 {
            continue;
        }
        let candidate = rates[i] - e / d;
        next[i] = candidate.clamp(1e-9, 0.999);
        if P::ENABLED {
            probe.on_solver(&SolverEvent::RelaxationStep {
                step,
                user: i,
                rate: next[i],
                residual: e,
            });
        }
    }
    next
}

/// The closed-form leading eigenvalue of the FIFO relaxation matrix for
/// `n` identical *linear* users at the symmetric point with per-user rate
/// `r`: `λ = −(n−1)·(u + 2r)/(2u + 2r)` where `u = 1 − n·r`.
///
/// As `u → 0` this approaches the paper's quoted `1 − n`; its magnitude
/// exceeds 1 for all `n ≥ 3`, so FIFO Newton dynamics are unstable
/// (§4.2.3).
pub fn fifo_linear_leading_eigenvalue(n: usize, r: f64) -> f64 {
    let u = 1.0 - n as f64 * r;
    -((n - 1) as f64) * (u + 2.0 * r) / (2.0 * u + 2.0 * r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::NashOptions;
    use crate::utility::{LinearUtility, LogUtility, UtilityExt};
    use greednet_queueing::fair_share::ascending_order;
    use greednet_queueing::{FairShare, Proportional};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    fn identical_linear(
        alloc: impl greednet_queueing::AllocationFunction + 'static,
        n: usize,
        gamma: f64,
    ) -> Game {
        let users = (0..n)
            .map(|_| LinearUtility::new(1.0, gamma).boxed())
            .collect();
        Game::new(alloc, users).unwrap()
    }

    #[test]
    fn de_dr_matches_finite_difference() {
        let users = vec![
            LogUtility::new(0.5, 1.0).boxed(),
            LinearUtility::new(1.0, 0.4).boxed(),
        ];
        let game = Game::new(Proportional::new(), users).unwrap();
        let rates = [0.15, 0.2];
        for i in 0..2 {
            for j in 0..2 {
                let numeric = greednet_numerics::diff::derivative(
                    |x| {
                        let mut r = rates;
                        r[j] = x;
                        game.nash_residual(&r, i)
                    },
                    rates[j],
                )
                .unwrap();
                let analytic = de_dr(&game, &rates, i, j);
                assert_close(analytic, numeric, 2e-3 * (1.0 + numeric.abs()));
            }
        }
    }

    #[test]
    fn relaxation_matrix_zero_diagonal() {
        let game = identical_linear(Proportional::new(), 3, 0.2);
        let a = relaxation_matrix(&game, &[0.1, 0.15, 0.2]);
        for i in 0..3 {
            assert_close(a[(i, i)], 0.0, 1e-12);
        }
    }

    #[test]
    fn fair_share_matrix_is_triangular_and_nilpotent() {
        let users = vec![
            LogUtility::new(0.3, 1.0).boxed(),
            LogUtility::new(0.6, 1.0).boxed(),
            LogUtility::new(0.9, 1.0).boxed(),
        ];
        let game = Game::new(FairShare::new(), users).unwrap();
        let rates = vec![0.08, 0.14, 0.22];
        let a = relaxation_matrix(&game, &rates);
        let order = ascending_order(&rates);
        assert!(
            a.is_strictly_lower_triangular_under(&order, 1e-9),
            "A not triangular:\n{a}"
        );
        assert!(is_nilpotent_at(&game, &rates, 1e-9).unwrap());
        assert!(spectral_radius(&game, &rates).unwrap() < 1e-4);
    }

    #[test]
    fn fifo_linear_eigenvalue_matches_closed_form() {
        let n = 5;
        let game = identical_linear(Proportional::new(), n, 0.2);
        let r = 0.12;
        let rates = vec![r; n];
        let rho = spectral_radius(&game, &rates).unwrap();
        let expect = fifo_linear_leading_eigenvalue(n, r).abs();
        assert_close(rho, expect, 1e-6 * (1.0 + expect));
    }

    #[test]
    fn fifo_unstable_for_three_or_more_users() {
        // The instability claim of §4.2.3 at the actual Nash equilibrium.
        for n in [3usize, 4, 6] {
            let game = identical_linear(Proportional::new(), n, 0.2);
            let nash = game.solve_nash(&NashOptions::default()).unwrap();
            assert!(nash.converged);
            let rho = spectral_radius(&game, &nash.rates).unwrap();
            assert!(rho > 1.0, "N={n}: spectral radius {rho} <= 1");
        }
        // ... and stable for N = 2.
        let game2 = identical_linear(Proportional::new(), 2, 0.2);
        let nash2 = game2.solve_nash(&NashOptions::default()).unwrap();
        let rho2 = spectral_radius(&game2, &nash2.rates).unwrap();
        assert!(rho2 < 1.0, "N=2: spectral radius {rho2} >= 1");
    }

    #[test]
    fn eigenvalue_approaches_one_minus_n_under_load() {
        // u -> 0: λ -> 1 - N.
        let n = 4;
        let r = 0.2499; // u = 1 - 4r ~ 0.0004
        let lam = fifo_linear_leading_eigenvalue(n, r);
        assert_close(lam, -(n as f64 - 1.0), 5e-3);
    }

    #[test]
    fn newton_dynamics_converge_in_n_steps_under_fair_share() {
        // Nilpotency in action: from a warm start, N synchronous Newton
        // steps land on the Nash equilibrium.
        let users = vec![
            LogUtility::new(0.3, 1.0).boxed(),
            LogUtility::new(0.7, 1.0).boxed(),
            LogUtility::new(1.1, 1.0).boxed(),
        ];
        let game = Game::new(FairShare::new(), users).unwrap();
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        // Perturb slightly (linear regime) and iterate N+2 steps.
        let mut r: Vec<f64> = nash
            .rates
            .iter()
            .enumerate()
            .map(|(i, &x)| x * (1.0 + 0.01 * (i as f64 + 1.0)))
            .collect();
        for _ in 0..game.n() + 2 {
            r = newton_step(&game, &r);
        }
        for (a, b) in r.iter().zip(&nash.rates) {
            assert_close(*a, *b, 1e-5);
        }
    }

    #[test]
    fn newton_dynamics_diverge_under_fifo_n4() {
        let n = 4;
        let game = identical_linear(Proportional::new(), n, 0.2);
        let nash = game.solve_nash(&NashOptions::default()).unwrap();
        // Perturb along the unstable (uniform) eigenvector: the leading
        // eigenvalue of A = a(J - I) belongs to the all-ones direction.
        let mut r: Vec<f64> = nash.rates.iter().map(|&x| x + 1e-4).collect();
        let initial: f64 = game
            .nash_residuals(&r)
            .iter()
            .map(|e| e.abs())
            .fold(0.0, f64::max);
        for _ in 0..6 {
            r = newton_step(&game, &r);
        }
        let after: f64 = game
            .nash_residuals(&r)
            .iter()
            .map(|e| e.abs())
            .fold(0.0, f64::max);
        assert!(
            after > 3.0 * initial,
            "expected divergence: initial {initial:.3e}, after {after:.3e}"
        );
    }
}
