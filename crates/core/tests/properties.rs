//! Property-based tests of the paper's theorems over randomized utility
//! profiles: unilateral envy-freeness (Theorem 3), uniqueness (Theorem 4),
//! ordinal invariance of equilibria, protection (Theorem 8).

use greednet_core::game::{distinct_equilibria, Game, NashOptions};
use greednet_core::utility::{
    LinearUtility, LogUtility, MonotoneTransform, PowerUtility, TransformKind, UtilityExt,
};
use greednet_core::{pareto, relaxation};
use greednet_queueing::{FairShare, Proportional};
use proptest::prelude::*;

/// A random profile of 2..=4 heterogeneous log/power/linear users.
fn profiles() -> impl Strategy<Value = Vec<(u8, f64, f64)>> {
    proptest::collection::vec((0u8..3, 0.2..1.2f64, 0.3..2.5f64), 2..=4)
}

fn build_users(spec: &[(u8, f64, f64)]) -> Vec<greednet_core::BoxedUtility> {
    spec.iter()
        .map(|&(kind, a, g)| match kind {
            0 => LogUtility::new(a, g).boxed(),
            1 => PowerUtility::new(0.3 + 0.4 * (a - 0.2), g).boxed(),
            _ => LinearUtility::new(a, 0.1 + 0.5 * g / 2.5).boxed(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fair_share_nash_is_envy_free(spec in profiles()) {
        let game = Game::new(FairShare::new(), build_users(&spec)).unwrap();
        let sol = game.solve_nash(&NashOptions::default()).unwrap();
        prop_assume!(sol.converged);
        let envy = game.max_envy(&sol.rates).unwrap();
        prop_assert!(envy <= 1e-6, "envy {envy} at {:?}", sol.rates);
    }

    #[test]
    fn fair_share_unilateral_envy_freeness(spec in profiles(), others in proptest::collection::vec(0.01..0.3f64, 4)) {
        // Theorem 3 is stronger than Nash envy-freeness: a user at its own
        // unilateral optimum envies no one REGARDLESS of what others play.
        let game = Game::new(FairShare::new(), build_users(&spec)).unwrap();
        let n = game.n();
        let mut rates: Vec<f64> = others[..n].to_vec();
        // Pick user 0 as the self-optimizer.
        let br = game.best_response(&rates, 0, 128).unwrap();
        rates[0] = br;
        let c = game.allocation().congestion(&rates);
        let own = game.users()[0].value(rates[0], c[0]);
        for j in 1..n {
            let other = game.users()[0].value(rates[j], c[j]);
            prop_assert!(other <= own + 1e-7,
                "user 0 envies user {j}: {other} > {own} at {rates:?}");
        }
    }

    #[test]
    fn fifo_optimizer_can_envy(_x in 0..1i32) {
        // Complement of the above: under FIFO a self-optimizing linear user
        // with an interior optimum always envies a heavier user — at its
        // FDC, gamma/u < 1, so utility still rises along the shared
        // congestion ray c = r/u (fixed witness, kept here for contrast).
        let users = vec![
            LinearUtility::new(1.0, 0.05).boxed(), // optimizer
            LinearUtility::new(1.0, 0.05).boxed(), // blaster, held at 0.6
        ];
        let game = Game::new(Proportional::new(), users).unwrap();
        let mut rates = vec![0.0, 0.6];
        rates[0] = game.best_response(&rates, 0, 256).unwrap();
        let c = game.allocation().congestion(&rates);
        let own = game.users()[0].value(rates[0], c[0]);
        let other = game.users()[0].value(rates[1], c[1]);
        prop_assert!(other > own, "expected envy under FIFO: {other} <= {own}");
    }

    #[test]
    fn fair_share_equilibrium_unique_from_random_starts(spec in profiles(), seeds in proptest::collection::vec(0.005..0.4f64, 8)) {
        let game = Game::new(FairShare::new(), build_users(&spec)).unwrap();
        let n = game.n();
        let starts: Vec<Vec<f64>> = seeds.chunks(2)
            .map(|ch| (0..n).map(|i| ch[i % ch.len()] / n as f64 * 2.0).collect())
            .collect();
        let eqs = distinct_equilibria(&game, &starts, &NashOptions::default(), 1e-4).unwrap();
        prop_assert!(eqs.len() <= 1, "found {} distinct FS equilibria", eqs.len());
    }

    #[test]
    fn nash_invariant_under_monotone_transform(spec in profiles()) {
        let base = build_users(&spec);
        let game = Game::new(FairShare::new(), base.clone()).unwrap();
        let sol = game.solve_nash(&NashOptions::default()).unwrap();
        prop_assume!(sol.converged);
        // Transform user 0's utility; the equilibrium must not move.
        let mut transformed = base;
        transformed[0] = MonotoneTransform::new(
            transformed[0].clone(),
            TransformKind::CubicPlus,
        ).boxed();
        let game2 = Game::new(FairShare::new(), transformed).unwrap();
        let sol2 = game2.solve_nash(&NashOptions::default()).unwrap();
        prop_assume!(sol2.converged);
        for (a, b) in sol.rates.iter().zip(&sol2.rates) {
            prop_assert!((a - b).abs() < 1e-5, "{:?} vs {:?}", sol.rates, sol2.rates);
        }
    }

    #[test]
    fn fs_relaxation_matrix_nilpotent_everywhere(spec in profiles(), point in proptest::collection::vec(0.02..0.2f64, 4)) {
        let game = Game::new(FairShare::new(), build_users(&spec)).unwrap();
        let n = game.n();
        let mut rates: Vec<f64> = point[..n].to_vec();
        // Break ties to stay in the C^2 region.
        for (i, r) in rates.iter_mut().enumerate() {
            *r += 1e-4 * i as f64;
        }
        prop_assume!(rates.iter().sum::<f64>() < 0.9);
        prop_assert!(relaxation::is_nilpotent_at(&game, &rates, 1e-8).unwrap());
    }

    #[test]
    fn fifo_nash_never_pareto(spec in profiles()) {
        // Theorem 2 for the proportional allocation: dC_i/dr_j > 0 always,
        // so no Nash equilibrium is Pareto optimal.
        let game = Game::new(Proportional::new(), build_users(&spec)).unwrap();
        let sol = game.solve_nash(&NashOptions::default()).unwrap();
        prop_assume!(sol.converged);
        // Only meaningful for interior equilibria.
        prop_assume!(sol.rates.iter().all(|&r| r > 1e-4));
        prop_assert!(!pareto::is_pareto_fdc(&game, &sol.rates, 1e-4),
            "FIFO Nash unexpectedly Pareto at {:?}", sol.rates);
    }
}
