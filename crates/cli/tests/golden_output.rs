//! Golden tests: CLI output is byte-identical across the refactor that
//! moved result computation into `greednet_serve::ops`.
//!
//! The files under `tests/golden/` were captured from the `greednet`
//! binary *before* the commands were split into compute-then-render;
//! every future change to the shared data path must keep these bytes.

use std::process::Command;

fn run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_greednet"))
        .args(args)
        .output()
        .expect("spawn greednet");
    assert!(
        out.status.success(),
        "greednet {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn nash_fs_is_golden() {
    assert_eq!(
        run(&[
            "nash",
            "--discipline",
            "fs",
            "--users",
            "log:0.5,1.0;linear:1.0,0.4"
        ]),
        golden("nash_fs.txt")
    );
}

#[test]
fn nash_fifo_with_default_user_profile_is_golden() {
    assert_eq!(
        run(&[
            "nash",
            "--discipline",
            "fifo",
            "--users",
            "log:0.5,1.0;log:1.0,1.0;linear:1.0,0.3"
        ]),
        golden("nash_fifo_default_users.txt")
    );
    // The explicit profile above IS the default: omitting --users must
    // print the same bytes.
    assert_eq!(
        run(&["nash", "--discipline", "fifo"]),
        golden("nash_fifo_default_users.txt")
    );
}

#[test]
fn simulate_fs_is_golden() {
    assert_eq!(
        run(&[
            "simulate",
            "--rates",
            "0.2,0.1",
            "--discipline",
            "fs",
            "--horizon",
            "3000",
            "--seed",
            "5"
        ]),
        golden("simulate_fs.txt")
    );
}

#[test]
fn simulate_sfq_erlang_with_explicit_windows_is_golden() {
    assert_eq!(
        run(&[
            "simulate",
            "--rates",
            "0.3,0.3",
            "--discipline",
            "sfq",
            "--horizon",
            "2000",
            "--seed",
            "9",
            "--service",
            "E4",
            "--warmup",
            "200",
            "--windows",
            "8"
        ]),
        golden("simulate_sfq_e4.txt")
    );
}

#[test]
fn table_is_golden() {
    assert_eq!(
        run(&["table", "--rates", "0.05,0.1,0.2"]),
        golden("table.txt")
    );
}

#[test]
fn protect_is_golden_under_both_disciplines() {
    assert_eq!(
        run(&[
            "protect",
            "--n",
            "4",
            "--victim",
            "0.1",
            "--discipline",
            "fs"
        ]),
        golden("protect_fs.txt")
    );
    assert_eq!(
        run(&[
            "protect",
            "--n",
            "4",
            "--victim",
            "0.1",
            "--discipline",
            "fifo"
        ]),
        golden("protect_fifo.txt")
    );
}
