//! End-to-end test of `greednet serve` over stdin/stdout: all five
//! request kinds, a repeated request served from the cache with
//! bitwise-identical payload bytes, per-request errors that leave the
//! stream alive, and the exit-code contract (EOF and `shutdown` both
//! exit 0).

use std::io::Write;
use std::process::{Command, Stdio};

fn run_serve(input: &str) -> (Vec<String>, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_greednet"))
        .args(["serve", "--threads", "2", "--cache", "64"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn greednet serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("wait");
    let lines = String::from_utf8(out.stdout)
        .expect("utf8")
        .lines()
        .map(String::from)
        .collect();
    (lines, out.status.code().unwrap_or(-1))
}

fn data_of<'a>(lines: &'a [String], id: &str) -> &'a str {
    lines
        .iter()
        .find(|l| l.contains(r#""type":"result""#) && l.contains(&format!(r#""id":"{id}""#)))
        .unwrap_or_else(|| panic!("no result for {id}"))
        .split(r#""data":"#)
        .nth(1)
        .expect("data field")
}

#[test]
fn all_five_kinds_roundtrip_and_repeats_hit_the_cache() {
    let input = concat!(
        r#"{"kind":"nash","id":"r-nash","users":"log:0.5,1.0;linear:1.0,0.4"}"#,
        "\n",
        r#"{"kind":"simulate","id":"r-sim","rates":[0.2,0.1],"horizon":500,"seed":5}"#,
        "\n",
        r#"{"kind":"table","id":"r-table","rates":[0.05,0.1,0.2]}"#,
        "\n",
        r#"{"kind":"protect","id":"r-protect","n":4,"victim":0.1}"#,
        "\n",
        r#"{"kind":"exp","id":"r-exp","exp":"t1","smoke":true}"#,
        "\n",
        r#"{"kind":"table","id":"r-again","rates":[0.05,0.1,0.2]}"#,
        "\n",
        r#"{"kind":"stats","id":"r-stats"}"#,
        "\n",
    );
    let (lines, code) = run_serve(input);
    assert_eq!(code, 0, "EOF is a clean shutdown");
    for id in ["r-nash", "r-sim", "r-table", "r-protect", "r-exp"] {
        let record = lines
            .iter()
            .find(|l| l.contains(&format!(r#""id":"{id}""#)) && l.contains(r#""type":"result""#))
            .unwrap_or_else(|| panic!("no result for {id}"));
        assert!(record.contains(r#""cached":false"#), "{record}");
    }
    // The repeat is a cache hit with bitwise-identical payload bytes.
    let repeat = lines
        .iter()
        .find(|l| l.contains(r#""id":"r-again""#) && l.contains(r#""type":"result""#))
        .expect("repeat result");
    assert!(repeat.contains(r#""cached":true"#), "{repeat}");
    assert_eq!(data_of(&lines, "r-table"), data_of(&lines, "r-again"));
    // The stats record shows exactly one hit.
    let stats = lines
        .iter()
        .find(|l| l.contains(r#""type":"stats""#))
        .expect("stats");
    assert!(stats.contains(r#""hits":1"#), "{stats}");
    assert!(stats.contains(r#""misses":5"#), "{stats}");
}

#[test]
fn errors_are_records_and_shutdown_exits_zero() {
    let input = concat!(
        "this is not json\n",
        r#"{"kind":"protect","id":"bad","n":0}"#,
        "\n",
        r#"{"kind":"nash","id":"worse","discipline":"zap"}"#,
        "\n",
        r#"{"kind":"shutdown","id":"bye"}"#,
        "\n",
        r#"{"kind":"table","id":"never","rates":[0.1]}"#,
        "\n",
    );
    let (lines, code) = run_serve(input);
    assert_eq!(code, 0, "shutdown request is a clean exit");
    assert!(lines[0].contains(r#""error":"parse""#), "{}", lines[0]);
    assert!(
        lines
            .iter()
            .any(|l| l.contains(r#""id":"bad""#) && l.contains("--n must be >= 1")),
        "bad_request error carries the CLI's message"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains(r#""id":"worse""#) && l.contains("unknown discipline 'zap'")),
        "unknown discipline reported"
    );
    // Nothing after shutdown is served.
    assert!(!lines.iter().any(|l| l.contains(r#""id":"never""#)));
    assert!(lines.last().expect("records").contains("stopping"));
}

#[test]
fn bad_usage_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_greednet"))
        .args(["serve", "--threads", "0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}
