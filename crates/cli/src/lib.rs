//! Library backing the `greednet` command-line tool: argument parsing and
//! the command implementations, kept in a lib target so they are unit
//! testable.
//!
//! Commands:
//!
//! * `nash` — compute the Nash equilibrium of a utility profile under a
//!   chosen discipline;
//! * `simulate` — run the packet simulator and report per-user queues,
//!   delays and throughputs;
//! * `table` — print the Table 1 priority decomposition for a rate
//!   vector;
//! * `protect` — sweep adversarial opponents against a victim and compare
//!   with the Theorem 8 bound;
//! * `largen` — solve the large-N (or continuum) mean-field equilibrium
//!   for a K-class population (see `greednet_largen`);
//! * `exp` — run (or list) the paper-reproduction experiments from the
//!   central registry, with `--seed/--threads/--json/--csv/--smoke`;
//! * `serve` — the long-running scenario service: JSONL requests over
//!   stdin/stdout or TCP, answered through a canonical-hash result cache
//!   (see `greednet_serve`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};

/// Runs a parsed command, writing human-readable output to stdout.
///
/// # Errors
/// Returns a human-readable error string on invalid input or solver
/// failure.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Nash(a) => commands::nash(a),
        Command::Simulate(a) => commands::simulate(a),
        Command::Table(a) => commands::table(a),
        Command::Protect(a) => commands::protect(a),
        Command::Network(a) => commands::network(a),
        Command::Largen(a) => commands::largen(a),
        Command::Exp(a) => commands::exp(a),
        Command::Serve(a) => commands::serve(a),
        Command::Help => {
            print!("{}", args::USAGE);
            Ok(())
        }
    }
}
