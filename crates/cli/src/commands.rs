//! Implementations of the CLI commands.

use crate::args::{
    ExpCmdArgs, NashArgs, NetworkArgs, ProtectArgs, SimulateArgs, TableArgs, UtilitySpec,
};
use greednet_core::game::{Game, NashOptions};
use greednet_core::protection::{adversarial_congestion, protection_bound};
use greednet_core::utility::{
    BoxedUtility, LinearUtility, LogUtility, PowerUtility, QuadraticCongestionUtility, UtilityExt,
};
use greednet_des::scenarios::DisciplineKind;
use greednet_des::{MetricsProbe, ServiceDist, SimConfig, Simulator, TraceBuffer};
use greednet_queueing::alloc::AllocationFunction;
use greednet_queueing::fair_share::priority_table;
use greednet_queueing::{FairShare, Proportional, SerialPriority};

/// Ring-buffer capacity for `--trace`: keeps the most recent events of
/// long runs while bounding memory.
const TRACE_CAP: usize = 65_536;

/// Writes a trace buffer as JSONL and prints a one-line summary.
fn write_trace(path: &str, trace: &TraceBuffer) -> Result<(), String> {
    std::fs::write(path, trace.to_jsonl())
        .map_err(|e| format!("cannot write trace file '{path}': {e}"))?;
    println!(
        "  trace: {} events -> {path} ({} observed, {} evicted)",
        trace.len(),
        trace.observed(),
        trace.evicted()
    );
    Ok(())
}

/// Builds an allocation function from a CLI discipline name.
pub fn build_alloc(name: &str) -> Result<Box<dyn AllocationFunction>, String> {
    match name {
        "fifo" => Ok(Box::new(Proportional::new())),
        "fs" | "fairshare" | "fair-share" => Ok(Box::new(FairShare::new())),
        "sp" | "serial" => Ok(Box::new(SerialPriority::new())),
        other => Err(format!("unknown discipline '{other}' (use fifo/fs/sp)")),
    }
}

/// Builds a simulator discipline kind from a CLI name.
pub fn build_kind(name: &str) -> Result<DisciplineKind, String> {
    Ok(match name {
        "fifo" => DisciplineKind::Fifo,
        "lifo" => DisciplineKind::LifoPreemptive,
        "ps" => DisciplineKind::ProcessorSharing,
        "sp" | "serial" => DisciplineKind::SerialPriority,
        "fs" | "fairshare" | "fair-share" => DisciplineKind::FsTable,
        "sfq" | "fq" => DisciplineKind::Sfq,
        other => {
            return Err(format!(
                "unknown discipline '{other}' (use fifo/lifo/ps/sp/fs/sfq)"
            ))
        }
    })
}

/// Builds utilities from parsed specs.
pub fn build_users(specs: &[UtilitySpec]) -> Result<Vec<BoxedUtility>, String> {
    specs
        .iter()
        .map(|s| -> Result<BoxedUtility, String> {
            let bad = |msg: &str| format!("{}:{},{}: {msg}", s.family, s.a, s.b);
            match s.family.as_str() {
                "linear" => {
                    if s.a <= 0.0 || s.b <= 0.0 {
                        return Err(bad("needs a, gamma > 0"));
                    }
                    Ok(LinearUtility::new(s.a, s.b).boxed())
                }
                "log" => {
                    if s.a <= 0.0 || s.b <= 0.0 {
                        return Err(bad("needs w, gamma > 0"));
                    }
                    Ok(LogUtility::new(s.a, s.b).boxed())
                }
                "power" => {
                    if !(0.0 < s.a && s.a < 1.0) || s.b <= 0.0 {
                        return Err(bad("needs 0 < a < 1, gamma > 0"));
                    }
                    Ok(PowerUtility::new(s.a, s.b).boxed())
                }
                "quad" => {
                    if s.a <= 0.0 || s.b <= 0.0 {
                        return Err(bad("needs a, gamma > 0"));
                    }
                    Ok(QuadraticCongestionUtility::new(s.a, s.b).boxed())
                }
                other => Err(format!("unknown family '{other}'")),
            }
        })
        .collect()
}

/// Parses a service spec (`M`, `D`, `E<k>`, `H2:<cs2>`).
pub fn build_service(spec: &str) -> Result<ServiceDist, String> {
    match spec {
        "M" | "m" => Ok(ServiceDist::Exponential),
        "D" | "d" => Ok(ServiceDist::Deterministic),
        s if s.starts_with('E') || s.starts_with('e') => s[1..]
            .parse::<u32>()
            .ok()
            .filter(|&k| k >= 1)
            .map(ServiceDist::Erlang)
            .ok_or_else(|| format!("bad Erlang spec '{s}' (use e.g. E4)")),
        s if s.to_uppercase().starts_with("H2:") => s[3..]
            .parse::<f64>()
            .ok()
            .filter(|&c| c > 1.0)
            .map(|cs2| ServiceDist::Hyperexponential { cs2 })
            .ok_or_else(|| format!("bad H2 spec '{s}' (use e.g. H2:4.0)")),
        other => Err(format!(
            "unknown service '{other}' (use M, D, E<k> or H2:<cs2>)"
        )),
    }
}

/// `greednet nash`.
pub fn nash(a: NashArgs) -> Result<(), String> {
    let alloc = build_alloc(&a.discipline)?;
    let name = alloc.name();
    let users = build_users(&a.users)?;
    let game = Game::from_boxed(alloc, users).map_err(|e| e.to_string())?;
    let mut trace = a.trace.as_ref().map(|_| TraceBuffer::new(TRACE_CAP));
    let sol = match trace.as_mut() {
        Some(t) => game
            .solve_nash_probed(&vec![None; game.n()], &NashOptions::default(), t)
            .map_err(|e| e.to_string())?,
        None => game
            .solve_nash(&NashOptions::default())
            .map_err(|e| e.to_string())?,
    };
    println!("Nash equilibrium under {name}:");
    println!(
        "  converged: {} in {} sweeps (residual {:.1e})",
        sol.converged, sol.iterations, sol.residual
    );
    println!(
        "  {:<6}{:>12}{:>12}{:>12}",
        "user", "rate", "congestion", "utility"
    );
    for i in 0..game.n() {
        println!(
            "  {i:<6}{:>12.5}{:>12.5}{:>12.5}",
            sol.rates[i], sol.congestions[i], sol.utilities[i]
        );
    }
    let envy = game.max_envy(&sol.rates).map_err(|e| e.to_string())?;
    println!("  max envy: {envy:+.6} (<= 0 means envy-free)");
    if let (Some(path), Some(t)) = (&a.trace, &trace) {
        write_trace(path, t)?;
    }
    Ok(())
}

/// `greednet simulate`.
pub fn simulate(a: SimulateArgs) -> Result<(), String> {
    let kind = build_kind(&a.discipline)?;
    let service = build_service(&a.service)?;
    let mut builder = SimConfig::builder(a.rates.clone())
        .horizon(a.horizon)
        .seed(a.seed)
        .service(service)
        .allow_overload(true);
    if let Some(w) = a.warmup {
        builder = builder.warmup(w);
    }
    if let Some(k) = a.windows {
        builder = builder.windows(k);
    }
    let cfg = builder.build().map_err(|e| e.to_string())?;
    let sim = Simulator::new(cfg).map_err(|e| e.to_string())?;
    let mut d = kind
        .build(&a.rates, a.seed ^ 0xC11)
        .map_err(|e| e.to_string())?;
    // With --trace/--metrics the run is probed; the probe only observes,
    // so every reported number matches the unprobed run bitwise.
    let mut telemetry = None;
    let r = if a.trace.is_some() || a.metrics {
        let mut probe = (
            TraceBuffer::new(TRACE_CAP),
            MetricsProbe::new(a.rates.len()),
        );
        let r = sim.run_probed(d.as_mut(), &mut probe);
        telemetry = Some(probe);
        r
    } else {
        sim.run(d.as_mut())
    }
    .map_err(|e| e.to_string())?;
    println!(
        "Simulated {} under {} service for {} time units ({} events):",
        kind.label(),
        a.service,
        a.horizon,
        r.events
    );
    println!(
        "  {:<6}{:>10}{:>12}{:>12}{:>12}{:>14}",
        "user", "rate", "queue", "ci(95%)", "delay", "throughput"
    );
    for (i, &rate) in a.rates.iter().enumerate() {
        println!(
            "  {i:<6}{rate:>10.4}{:>12.4}{:>12.4}{:>12.4}{:>14.4}",
            r.mean_queue[i], r.queue_ci[i].half_width, r.mean_delay[i], r.throughput[i]
        );
    }
    println!("  total mean queue: {:.4}", r.total_mean_queue);
    if let Some((trace, probe)) = telemetry {
        if let Some(path) = &a.trace {
            write_trace(path, &trace)?;
        }
        if a.metrics {
            print!("{}", probe.metrics().to_text());
        }
    }
    Ok(())
}

/// `greednet table`.
pub fn table(a: TableArgs) -> Result<(), String> {
    let n = a.rates.len();
    let t = priority_table(&a.rates);
    println!(
        "Fair Share priority table (paper Table 1) for rates {:?}:",
        a.rates
    );
    print!("  {:<6}", "user");
    for k in 0..n {
        print!("{:>9}", format!("L{k}"));
    }
    println!("{:>10}", "total");
    for (u, row) in t.iter().enumerate() {
        print!("  {u:<6}");
        for &v in row {
            if v > 0.0 {
                print!("{v:>9.4}");
            } else {
                print!("{:>9}", "-");
            }
        }
        println!("{:>10.4}", row.iter().sum::<f64>());
    }
    Ok(())
}

/// `greednet protect`.
pub fn protect(a: ProtectArgs) -> Result<(), String> {
    if a.n < 1 {
        return Err("--n must be >= 1".into());
    }
    if !(a.victim > 0.0 && a.victim < 1.0) {
        return Err("--victim must lie in (0, 1)".into());
    }
    let alloc = build_alloc(&a.discipline)?;
    let bound = protection_bound(a.n, a.victim);
    println!(
        "Protection of a victim at rate {} among {} users under {}:",
        a.victim,
        a.n,
        alloc.name()
    );
    println!("  Theorem 8 bound r/(1-Nr): {bound:.5}");
    println!("  {:<18}{:>14}", "adversary level", "victim queue");
    for level in [0.05, 0.1, 0.2, 0.4, 0.8, 0.95, 2.0, 10.0] {
        let c = adversarial_congestion(alloc.as_ref(), a.n, a.victim, &[level]);
        println!("  {level:<18}{c:>14.5}");
    }
    let worst = adversarial_congestion(
        alloc.as_ref(),
        a.n,
        a.victim,
        &[0.05, 0.1, 0.2, 0.4, 0.8, 0.95, 2.0, 10.0],
    );
    let ok = worst <= bound * (1.0 + 1e-9);
    println!(
        "  worst observed: {worst:.5} -> {}",
        if ok { "PROTECTED" } else { "BOUND VIOLATED" }
    );
    Ok(())
}

/// `greednet network`.
pub fn network(a: NetworkArgs) -> Result<(), String> {
    use greednet_network::{NetworkGame, Topology};
    if a.switches == 0 || a.switches > 16 {
        return Err("--switches must lie in 1..=16".into());
    }
    let alloc = build_alloc(&a.discipline)?;
    let name = alloc.name();
    let k = a.switches;
    let users: Vec<BoxedUtility> = (0..=k).map(|_| LogUtility::new(0.5, 1.0).boxed()).collect();
    let net = NetworkGame::new(
        Topology::parking_lot(k).map_err(|e| e.to_string())?,
        alloc,
        users,
    )
    .map_err(|e| e.to_string())?;
    let nash = net
        .solve_nash(&NashOptions::default())
        .map_err(|e| e.to_string())?;
    println!("Parking-lot network with {k} switches under {name}:");
    println!(
        "  converged: {} in {} sweeps (residual {:.1e})",
        nash.converged, nash.iterations, nash.residual
    );
    println!(
        "  {:<10}{:>8}{:>12}{:>12}{:>12}",
        "user", "hops", "rate", "congestion", "utility"
    );
    for i in 0..net.n() {
        let role = if i == 0 { "through" } else { "local" };
        println!(
            "  {role:<10}{:>8}{:>12.5}{:>12.5}{:>12.5}",
            net.topology().hops(i),
            nash.rates[i],
            nash.congestions[i],
            nash.utilities[i]
        );
    }
    let gain = net
        .max_deviation_gain(&nash.rates, 128)
        .map_err(|e| e.to_string())?;
    println!("  max unilateral deviation gain: {gain:.2e}");
    Ok(())
}

/// `greednet exp` — run one registry experiment (or list them all).
pub fn exp(a: ExpCmdArgs) -> Result<(), String> {
    use greednet_bench::exp_cli::{run_experiment, ExpArgs};
    use greednet_bench::experiments::registry;
    let Some(id) = a.id else {
        println!("available experiments (greednet exp <ID> [--seed N] [--threads N] [--json|--csv] [--smoke] [--metrics]):");
        for e in registry().iter() {
            println!("  {:<5} {}", e.id(), e.title());
        }
        return Ok(());
    };
    let opts = ExpArgs::parse(&a.rest)?;
    let report = run_experiment(&id, &opts.ctx())?;
    print!("{}", report.render(opts.format));
    // Wall-clock telemetry is non-deterministic, so it goes to stderr;
    // stdout stays bitwise reproducible for a fixed seed.
    if opts.metrics && !report.telemetry().is_empty() {
        eprint!("{}", report.render_telemetry());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_kind_builders() {
        assert!(build_alloc("fifo").is_ok());
        assert!(build_alloc("fs").is_ok());
        assert!(build_alloc("nope").is_err());
        assert!(build_kind("sfq").is_ok());
        assert!(build_kind("nope").is_err());
    }

    #[test]
    fn service_specs() {
        assert_eq!(build_service("M").unwrap(), ServiceDist::Exponential);
        assert_eq!(build_service("D").unwrap(), ServiceDist::Deterministic);
        assert_eq!(build_service("E4").unwrap(), ServiceDist::Erlang(4));
        assert!(matches!(
            build_service("H2:3.5").unwrap(),
            ServiceDist::Hyperexponential { .. }
        ));
        assert!(build_service("E0").is_err());
        assert!(build_service("H2:0.5").is_err());
        assert!(build_service("X").is_err());
    }

    #[test]
    fn user_builders_validate() {
        let ok = build_users(&[UtilitySpec {
            family: "log".into(),
            a: 0.5,
            b: 1.0,
        }]);
        assert_eq!(ok.unwrap().len(), 1);
        assert!(build_users(&[UtilitySpec {
            family: "power".into(),
            a: 1.5,
            b: 1.0
        }])
        .is_err());
        assert!(build_users(&[UtilitySpec {
            family: "linear".into(),
            a: -1.0,
            b: 1.0
        }])
        .is_err());
    }

    #[test]
    fn nash_command_end_to_end() {
        let args = NashArgs {
            discipline: "fs".into(),
            users: vec![
                UtilitySpec {
                    family: "log".into(),
                    a: 0.5,
                    b: 1.0,
                },
                UtilitySpec {
                    family: "linear".into(),
                    a: 1.0,
                    b: 0.4,
                },
            ],
            trace: None,
        };
        nash(args).unwrap();
    }

    fn sim_args() -> SimulateArgs {
        SimulateArgs {
            rates: vec![0.2, 0.1],
            discipline: "fs".into(),
            horizon: 3000.0,
            warmup: None,
            windows: None,
            seed: 5,
            service: "M".into(),
            trace: None,
            metrics: false,
        }
    }

    #[test]
    fn simulate_command_end_to_end() {
        simulate(sim_args()).unwrap();
    }

    #[test]
    fn simulate_with_telemetry_and_explicit_stats_windows() {
        let path = std::env::temp_dir().join("greednet_cli_cmd_trace.jsonl");
        let mut args = sim_args();
        args.warmup = Some(200.0);
        args.windows = Some(8);
        args.trace = Some(path.to_string_lossy().into_owned());
        args.metrics = true;
        simulate(args).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() > 10);
        assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(&path).ok();

        // Invalid window counts surface the simulator's validation error.
        let mut bad = sim_args();
        bad.windows = Some(2);
        let err = simulate(bad).unwrap_err();
        assert!(err.contains("at least 4 windows"), "{err}");
    }

    #[test]
    fn nash_command_writes_solver_trace() {
        let path = std::env::temp_dir().join("greednet_cli_nash_trace.jsonl");
        let args = NashArgs {
            discipline: "fs".into(),
            users: vec![UtilitySpec {
                family: "log".into(),
                a: 0.5,
                b: 1.0,
            }],
            trace: Some(path.to_string_lossy().into_owned()),
        };
        nash(args).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("best_response"), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn network_command_end_to_end() {
        network(NetworkArgs {
            switches: 2,
            discipline: "fs".into(),
        })
        .unwrap();
        assert!(network(NetworkArgs {
            switches: 0,
            discipline: "fs".into()
        })
        .is_err());
        assert!(network(NetworkArgs {
            switches: 2,
            discipline: "bogus".into()
        })
        .is_err());
    }

    #[test]
    fn table_and_protect_end_to_end() {
        table(TableArgs {
            rates: vec![0.05, 0.1, 0.2],
        })
        .unwrap();
        protect(ProtectArgs {
            n: 4,
            victim: 0.1,
            discipline: "fs".into(),
        })
        .unwrap();
        assert!(protect(ProtectArgs {
            n: 0,
            victim: 0.1,
            discipline: "fs".into()
        })
        .is_err());
        assert!(protect(ProtectArgs {
            n: 4,
            victim: 2.0,
            discipline: "fs".into()
        })
        .is_err());
    }
}
