//! Implementations of the CLI commands.
//!
//! The scenario commands (`nash`/`simulate`/`table`/`protect`) are thin
//! wrappers over the shared data path in `greednet_serve::ops`: the spec
//! computes an outcome as data, and the command prints the outcome's
//! `render_text()` — byte-identical to the output these commands printed
//! when they formatted results inline (pinned by the golden tests in
//! `tests/golden_output.rs`). The `greednet serve` service renders the
//! same outcomes as JSON, so CLI and service can never drift apart.

use crate::args::{
    ExpCmdArgs, LargenArgs, NashArgs, NetworkArgs, ProtectArgs, ServeArgs, SimulateArgs, TableArgs,
    UtilitySpec,
};
use greednet_core::game::NashOptions;
use greednet_core::utility::{BoxedUtility, LogUtility, UtilityExt};
use greednet_des::{MetricsProbe, TraceBuffer};
use greednet_serve::ops::{
    LargenSpec, NashSpec, ProtectSpec, SimulateSpec, TableSpec, UtilityParam,
};
use greednet_serve::{ServeOptions, Service};

/// Ring-buffer capacity for `--trace`: keeps the most recent events of
/// long runs while bounding memory.
const TRACE_CAP: usize = 65_536;

/// Writes a trace buffer as JSONL and prints a one-line summary.
fn write_trace(path: &str, trace: &TraceBuffer) -> Result<(), String> {
    std::fs::write(path, trace.to_jsonl())
        .map_err(|e| format!("cannot write trace file '{path}': {e}"))?;
    println!(
        "  trace: {} events -> {path} ({} observed, {} evicted)",
        trace.len(),
        trace.observed(),
        trace.evicted()
    );
    Ok(())
}

/// Converts parsed CLI utility specs to the shared data-path form.
fn to_params(specs: &[UtilitySpec]) -> Vec<UtilityParam> {
    specs
        .iter()
        .map(|s| UtilityParam {
            family: s.family.clone(),
            a: s.a,
            b: s.b,
        })
        .collect()
}

/// `greednet nash`.
pub fn nash(a: NashArgs) -> Result<(), String> {
    let spec = NashSpec {
        discipline: a.discipline.clone(),
        users: to_params(&a.users),
    };
    let mut trace = a.trace.as_ref().map(|_| TraceBuffer::new(TRACE_CAP));
    let out = match trace.as_mut() {
        Some(t) => spec.solve_probed(t),
        None => spec.solve(),
    }
    .map_err(|e| e.to_string())?;
    print!("{}", out.render_text());
    if let (Some(path), Some(t)) = (&a.trace, &trace) {
        write_trace(path, t)?;
    }
    Ok(())
}

/// `greednet simulate`.
pub fn simulate(a: SimulateArgs) -> Result<(), String> {
    let spec = SimulateSpec {
        rates: a.rates.clone(),
        discipline: a.discipline.clone(),
        horizon: a.horizon,
        warmup: a.warmup,
        windows: a.windows,
        seed: a.seed,
        service: a.service.clone(),
    };
    // With --trace/--metrics the run is probed; the probe only observes,
    // so every reported number matches the unprobed run bitwise.
    let mut telemetry = None;
    let out = if a.trace.is_some() || a.metrics {
        let mut probe = (
            TraceBuffer::new(TRACE_CAP),
            MetricsProbe::new(a.rates.len()),
        );
        let out = spec.outcome_probed(&mut probe);
        telemetry = Some(probe);
        out
    } else {
        spec.outcome()
    }
    .map_err(|e| e.to_string())?;
    print!("{}", out.render_text());
    if let Some((trace, probe)) = telemetry {
        if let Some(path) = &a.trace {
            write_trace(path, &trace)?;
        }
        if a.metrics {
            print!("{}", probe.metrics().to_text());
        }
    }
    Ok(())
}

/// `greednet table`.
pub fn table(a: TableArgs) -> Result<(), String> {
    print!("{}", TableSpec { rates: a.rates }.outcome().render_text());
    Ok(())
}

/// `greednet protect`.
pub fn protect(a: ProtectArgs) -> Result<(), String> {
    let out = ProtectSpec {
        n: a.n,
        victim: a.victim,
        discipline: a.discipline,
    }
    .outcome()
    .map_err(|e| e.to_string())?;
    print!("{}", out.render_text());
    Ok(())
}

/// `greednet largen`.
pub fn largen(a: LargenArgs) -> Result<(), String> {
    let out = LargenSpec {
        discipline: a.discipline,
        n: a.n,
        classes: to_params(&a.classes),
        weights: a.weights,
        seed: a.seed,
        threads: a.threads,
    }
    .solve()
    .map_err(|e| e.to_string())?;
    print!("{}", out.render_text());
    Ok(())
}

/// `greednet serve` — run the long-running scenario service.
pub fn serve(a: ServeArgs) -> Result<(), String> {
    let service = Service::new(ServeOptions {
        threads: a.threads,
        cache_capacity: a.cache,
    });
    match a.tcp {
        Some(addr) => service
            .serve_tcp(&addr, |local| {
                // Announce the bound address (stderr: stdout carries no
                // protocol in TCP mode, but scripts parse stderr for the
                // ephemeral port when binding :0).
                eprintln!("greednet serve: listening on {local}");
            })
            .map_err(|e| e.to_string()),
        None => service.serve_stdio().map_err(|e| e.to_string()),
    }
}

/// `greednet network`.
pub fn network(a: NetworkArgs) -> Result<(), String> {
    use greednet_network::{NetworkGame, Topology};
    if a.switches == 0 || a.switches > 16 {
        return Err("--switches must lie in 1..=16".into());
    }
    let alloc = greednet_serve::ops::build_alloc(&a.discipline).map_err(|e| e.to_string())?;
    let name = alloc.name();
    let k = a.switches;
    let users: Vec<BoxedUtility> = (0..=k).map(|_| LogUtility::new(0.5, 1.0).boxed()).collect();
    let net = NetworkGame::new(
        Topology::parking_lot(k).map_err(|e| e.to_string())?,
        alloc,
        users,
    )
    .map_err(|e| e.to_string())?;
    let nash = net
        .solve_nash(&NashOptions::default())
        .map_err(|e| e.to_string())?;
    println!("Parking-lot network with {k} switches under {name}:");
    println!(
        "  converged: {} in {} sweeps (residual {:.1e})",
        nash.converged, nash.iterations, nash.residual
    );
    println!(
        "  {:<10}{:>8}{:>12}{:>12}{:>12}",
        "user", "hops", "rate", "congestion", "utility"
    );
    for i in 0..net.n() {
        let role = if i == 0 { "through" } else { "local" };
        println!(
            "  {role:<10}{:>8}{:>12.5}{:>12.5}{:>12.5}",
            net.topology().hops(i),
            nash.rates[i],
            nash.congestions[i],
            nash.utilities[i]
        );
    }
    let gain = net
        .max_deviation_gain(&nash.rates, 128)
        .map_err(|e| e.to_string())?;
    println!("  max unilateral deviation gain: {gain:.2e}");
    Ok(())
}

/// `greednet exp` — run one registry experiment (or list them all).
pub fn exp(a: ExpCmdArgs) -> Result<(), String> {
    use greednet_bench::exp_cli::{run_experiment, ExpArgs};
    use greednet_bench::experiments::registry;
    let Some(id) = a.id else {
        println!("available experiments (greednet exp <ID> [--seed N] [--threads N] [--json|--csv] [--smoke] [--metrics]):");
        for e in registry().iter() {
            println!("  {:<5} {}", e.id(), e.title());
        }
        return Ok(());
    };
    let opts = ExpArgs::parse(&a.rest)?;
    let report = run_experiment(&id, &opts.ctx())?;
    print!("{}", report.render(opts.format));
    // Wall-clock telemetry is non-deterministic, so it goes to stderr;
    // stdout stays bitwise reproducible for a fixed seed.
    if opts.metrics && !report.telemetry().is_empty() {
        eprint!("{}", report.render_telemetry());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_command_stdio_contract_is_exercised_via_service() {
        // The serve command itself blocks on stdin; its data path is the
        // Service type, which the serve crate tests end-to-end. Here we
        // only pin the wrapper's option plumbing.
        let service = Service::new(ServeOptions {
            threads: 2,
            cache_capacity: 8,
        });
        let mut out = Vec::new();
        service
            .serve_stream(
                "{\"kind\":\"table\",\"id\":\"t\",\"rates\":[0.05,0.1,0.2]}\n".as_bytes(),
                &mut out,
            )
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"type\":\"result\""), "{text}");
    }

    #[test]
    fn nash_command_end_to_end() {
        let args = NashArgs {
            discipline: "fs".into(),
            users: vec![
                UtilitySpec {
                    family: "log".into(),
                    a: 0.5,
                    b: 1.0,
                },
                UtilitySpec {
                    family: "linear".into(),
                    a: 1.0,
                    b: 0.4,
                },
            ],
            trace: None,
        };
        nash(args).unwrap();
    }

    fn sim_args() -> SimulateArgs {
        SimulateArgs {
            rates: vec![0.2, 0.1],
            discipline: "fs".into(),
            horizon: 3000.0,
            warmup: None,
            windows: None,
            seed: 5,
            service: "M".into(),
            trace: None,
            metrics: false,
        }
    }

    #[test]
    fn simulate_command_end_to_end() {
        simulate(sim_args()).unwrap();
    }

    #[test]
    fn simulate_with_telemetry_and_explicit_stats_windows() {
        let path = std::env::temp_dir().join("greednet_cli_cmd_trace.jsonl");
        let mut args = sim_args();
        args.warmup = Some(200.0);
        args.windows = Some(8);
        args.trace = Some(path.to_string_lossy().into_owned());
        args.metrics = true;
        simulate(args).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() > 10);
        assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(&path).ok();

        // Invalid window counts surface the simulator's validation error.
        let mut bad = sim_args();
        bad.windows = Some(2);
        let err = simulate(bad).unwrap_err();
        assert!(err.contains("at least 4 windows"), "{err}");
    }

    #[test]
    fn nash_command_writes_solver_trace() {
        let path = std::env::temp_dir().join("greednet_cli_nash_trace.jsonl");
        let args = NashArgs {
            discipline: "fs".into(),
            users: vec![UtilitySpec {
                family: "log".into(),
                a: 0.5,
                b: 1.0,
            }],
            trace: Some(path.to_string_lossy().into_owned()),
        };
        nash(args).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("best_response"), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn network_command_end_to_end() {
        network(NetworkArgs {
            switches: 2,
            discipline: "fs".into(),
        })
        .unwrap();
        assert!(network(NetworkArgs {
            switches: 0,
            discipline: "fs".into()
        })
        .is_err());
        assert!(network(NetworkArgs {
            switches: 2,
            discipline: "bogus".into()
        })
        .is_err());
    }

    #[test]
    fn largen_command_end_to_end() {
        let args = LargenArgs {
            discipline: "fs".into(),
            n: 1_000,
            classes: vec![
                UtilitySpec {
                    family: "log".into(),
                    a: 0.6,
                    b: 1.0,
                },
                UtilitySpec {
                    family: "log".into(),
                    a: 0.4,
                    b: 1.0,
                },
            ],
            weights: vec![3.0, 1.0],
            seed: 1,
            threads: 2,
        };
        largen(args).unwrap();
        // Continuum mode (n = 0) and validation errors surface cleanly.
        largen(LargenArgs {
            discipline: "fifo".into(),
            n: 0,
            classes: vec![UtilitySpec {
                family: "log".into(),
                a: 0.5,
                b: 1.0,
            }],
            weights: Vec::new(),
            seed: 1,
            threads: 1,
        })
        .unwrap();
        assert!(largen(LargenArgs {
            discipline: "fs".into(),
            n: 100,
            classes: vec![UtilitySpec {
                family: "log".into(),
                a: 0.5,
                b: 1.0,
            }],
            weights: vec![1.0, 2.0],
            seed: 1,
            threads: 1,
        })
        .is_err());
    }

    #[test]
    fn table_and_protect_end_to_end() {
        table(TableArgs {
            rates: vec![0.05, 0.1, 0.2],
        })
        .unwrap();
        protect(ProtectArgs {
            n: 4,
            victim: 0.1,
            discipline: "fs".into(),
        })
        .unwrap();
        assert!(protect(ProtectArgs {
            n: 0,
            victim: 0.1,
            discipline: "fs".into()
        })
        .is_err());
        assert!(protect(ProtectArgs {
            n: 4,
            victim: 2.0,
            discipline: "fs".into()
        })
        .is_err());
    }
}
