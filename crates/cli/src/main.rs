//! The `greednet` command-line tool.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match greednet_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try 'greednet help'");
            std::process::exit(2);
        }
    };
    if let Err(e) = greednet_cli::run(cmd) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
