//! Hand-rolled argument parsing for the `greednet` CLI (no external
//! dependencies; the grammar is tiny).

use std::fmt;

/// Usage text.
pub const USAGE: &str = "\
greednet — selfish flow control over a shared switch (Shenker, SIGCOMM 1994)

USAGE:
    greednet <COMMAND> [OPTIONS]

COMMANDS:
    nash       Compute a Nash equilibrium
               --discipline fifo|fs|sp   (default fs)
               --users SPEC              semicolon-separated utilities:
                                         linear:A,GAMMA | log:W,GAMMA |
                                         power:A,GAMMA  | quad:A,GAMMA
               --trace FILE              write solver iterates as JSONL
    simulate   Run the packet-level simulator
               --rates R1,R2,...         Poisson rates (required)
               --discipline fifo|lifo|ps|sp|fs|sfq   (default fs)
               --horizon T               (default 100000)
               --warmup T                (default horizon/10)
               --windows K               batch-means windows (default 20)
               --seed S                  (default 1)
               --service M|D|E<k>|H2:<cs2>   (default M)
               --trace FILE              write packet events as JSONL
               --metrics                 print delay/occupancy/busy-period
                                         histograms and event counters
    table      Print the Table 1 priority decomposition
               --rates R1,R2,...         (required)
    protect    Adversarial congestion vs the Theorem 8 bound
               --n N                     total users (default 4)
               --victim R                victim rate (default 0.1)
               --discipline fifo|fs|sp   (default fs)
    network    Nash equilibrium on a parking-lot network (one through
               user crossing k switches + one local user per switch)
               --switches K              (default 3)
               --discipline fifo|fs|sp   (default fs)
    largen     Large-N equilibrium via the mean-field engine
               --discipline fifo|fs|sfq  (default fs)
               --n N                     users; 0 solves the continuum
                                         limit (default 10000)
               --classes SPEC            semicolon-separated class
                                         utilities, family:a,b (default
                                         three log classes w=0.6/0.5/0.4)
               --weights W1,W2,...       class mass fractions (default
                                         equal; normalized to sum 1)
               --seed S                  (default 1)
               --threads N               sweep shards; results are
                                         bitwise identical at any count
                                         (default 1)
    exp        Run a paper-reproduction experiment from the registry
               (no id: list all experiments)
               greednet exp <ID> [--seed N] [--threads N]
                                 [--json|--csv|--format F] [--smoke]
                                 [--metrics]
    serve      Long-running scenario service: newline-delimited JSON
               requests on stdin (or a TCP socket), streaming
               accepted/progress/result records back, with a canonical-
               hash LRU cache answering repeated scenarios bitwise-
               identically (see README § greednet serve)
               --tcp ADDR                listen on ADDR instead of stdio
                                         (use 127.0.0.1:0 for any port)
               --threads N               batch fan-out threads (default 1)
               --cache N                 result-cache entries (default 1024)
    help       Show this message

EXAMPLES:
    greednet nash --discipline fs --users 'log:0.5,1.0;linear:1.0,0.3'
    greednet simulate --rates 0.1,0.3 --discipline sfq --horizon 50000
    greednet simulate --rates 0.3,0.3 --trace /tmp/t.jsonl --metrics
    greednet table --rates 0.05,0.1,0.2,0.3
    greednet protect --n 4 --victim 0.1 --discipline fifo
    greednet largen --discipline fs --n 100000 --threads 4
    greednet exp e9 --threads 4 --json
    echo '{\"kind\":\"nash\"}' | greednet serve
";

/// A parsed CLI command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Compute a Nash equilibrium.
    Nash(NashArgs),
    /// Run the packet simulator.
    Simulate(SimulateArgs),
    /// Print the Table 1 decomposition.
    Table(TableArgs),
    /// Protection sweep.
    Protect(ProtectArgs),
    /// Parking-lot network equilibrium.
    Network(NetworkArgs),
    /// Large-N mean-field equilibrium.
    Largen(LargenArgs),
    /// Registry experiment runner.
    Exp(ExpCmdArgs),
    /// Long-running scenario service.
    Serve(ServeArgs),
    /// Show usage.
    Help,
}

/// Arguments for `nash`.
#[derive(Debug, Clone, PartialEq)]
pub struct NashArgs {
    /// Discipline name (fifo/fs/sp).
    pub discipline: String,
    /// Utility specs.
    pub users: Vec<UtilitySpec>,
    /// Write best-response solver iterates to this file as JSONL.
    pub trace: Option<String>,
}

/// Arguments for `simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateArgs {
    /// Poisson rates.
    pub rates: Vec<f64>,
    /// Discipline name (fifo/lifo/ps/sp/fs/sfq).
    pub discipline: String,
    /// Simulated horizon.
    pub horizon: f64,
    /// Warm-up interval (`None` keeps the builder default, horizon/10).
    pub warmup: Option<f64>,
    /// Batch-means window count (`None` keeps the builder default).
    pub windows: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Service-time spec (`M`/`D`/`E<k>`/`H2:<cs2>`).
    pub service: String,
    /// Write packet lifecycle events to this file as JSONL.
    pub trace: Option<String>,
    /// Print telemetry histograms and event counters after the run.
    pub metrics: bool,
}

/// Arguments for `table`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableArgs {
    /// Rates to decompose.
    pub rates: Vec<f64>,
}

/// Arguments for `protect`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectArgs {
    /// Total number of users.
    pub n: usize,
    /// Victim rate.
    pub victim: f64,
    /// Discipline name.
    pub discipline: String,
}

/// Arguments for `largen`.
#[derive(Debug, Clone, PartialEq)]
pub struct LargenArgs {
    /// Discipline name (fifo/fs/sfq).
    pub discipline: String,
    /// User count; `0` solves the continuum limit.
    pub n: u64,
    /// Class utility specs.
    pub classes: Vec<UtilitySpec>,
    /// Class mass fractions (empty = equal split).
    pub weights: Vec<f64>,
    /// RNG seed for the jittered start.
    pub seed: u64,
    /// Sweep shards (bitwise identical at any count).
    pub threads: usize,
}

/// Arguments for `serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// TCP listen address (e.g. `127.0.0.1:4650`); `None` serves
    /// stdin/stdout.
    pub tcp: Option<String>,
    /// Worker threads for `batch` fan-out (response bytes are identical
    /// at any width).
    pub threads: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache: usize,
}

/// Arguments for `exp`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpCmdArgs {
    /// Experiment id (`t1`, `e1`..`e15`); `None` lists the registry.
    pub id: Option<String>,
    /// Remaining flags, handed verbatim to the shared experiment-runner
    /// parser (`--seed`, `--threads`, `--json`, ...).
    pub rest: Vec<String>,
}

/// Arguments for `network`.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkArgs {
    /// Number of switches in the parking lot.
    pub switches: usize,
    /// Discipline name.
    pub discipline: String,
}

/// A user utility specification.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilitySpec {
    /// Family: linear/log/power/quad.
    pub family: String,
    /// First parameter.
    pub a: f64,
    /// Second parameter.
    pub b: f64,
}

/// Parse error with a message suitable for the terminal.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Removes every occurrence of the boolean flag (which takes no value),
/// returning the remaining arguments and whether it was present — run
/// this *before* [`options`], which pairs every `--key` with a value.
fn strip_flag(args: &[String], flag: &str) -> (Vec<String>, bool) {
    let mut found = false;
    let kept = args
        .iter()
        .filter(|a| {
            let hit = a.as_str() == flag;
            found |= hit;
            !hit
        })
        .cloned()
        .collect();
    (kept, found)
}

/// Extracts `--key value` options from the tail of an argument list.
fn options(args: &[String]) -> Result<Vec<(String, String)>, ParseError> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let Some(key) = k.strip_prefix("--") else {
            return err(format!("expected --option, got '{k}'"));
        };
        let Some(v) = it.next() else {
            return err(format!("--{key} needs a value"));
        };
        out.push((key.to_string(), v.clone()));
    }
    Ok(out)
}

fn get<'a>(opts: &'a [(String, String)], key: &str) -> Option<&'a str> {
    opts.iter()
        .rev()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Parses a comma-separated list of rates.
pub fn parse_rates(s: &str) -> Result<Vec<f64>, ParseError> {
    let rates: Result<Vec<f64>, _> = s.split(',').map(|x| x.trim().parse::<f64>()).collect();
    match rates {
        Ok(r) if !r.is_empty() && r.iter().all(|x| x.is_finite() && *x >= 0.0) => Ok(r),
        _ => err(format!("invalid rate list '{s}' (expected e.g. 0.1,0.2)")),
    }
}

/// Parses the semicolon-separated utility list.
pub fn parse_users(s: &str) -> Result<Vec<UtilitySpec>, ParseError> {
    let mut out = Vec::new();
    for part in s.split(';') {
        let part = part.trim();
        let Some((family, params)) = part.split_once(':') else {
            return err(format!("bad utility '{part}' (expected family:a,b)"));
        };
        let family = family.trim().to_lowercase();
        if !["linear", "log", "power", "quad"].contains(&family.as_str()) {
            return err(format!("unknown utility family '{family}'"));
        }
        let Some((a, b)) = params.split_once(',') else {
            return err(format!("bad parameters in '{part}' (expected a,b)"));
        };
        let (Ok(a), Ok(b)) = (a.trim().parse::<f64>(), b.trim().parse::<f64>()) else {
            return err(format!("bad numbers in '{part}'"));
        };
        out.push(UtilitySpec { family, a, b });
    }
    if out.is_empty() {
        return err("at least one utility is required");
    }
    Ok(out)
}

/// Parses a full command line (excluding the program name).
///
/// # Errors
/// [`ParseError`] with a user-facing message.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "nash" => {
            let opts = options(rest)?;
            let users = parse_users(
                get(&opts, "users").unwrap_or("log:0.5,1.0;log:1.0,1.0;linear:1.0,0.3"),
            )?;
            Ok(Command::Nash(NashArgs {
                discipline: get(&opts, "discipline").unwrap_or("fs").to_string(),
                users,
                trace: get(&opts, "trace").map(String::from),
            }))
        }
        "simulate" => {
            let (rest, metrics) = strip_flag(rest, "--metrics");
            let opts = options(&rest)?;
            let Some(rates) = get(&opts, "rates") else {
                return err("simulate requires --rates");
            };
            let horizon: f64 = get(&opts, "horizon")
                .unwrap_or("100000")
                .parse()
                .map_err(|_| ParseError("bad --horizon".into()))?;
            let warmup: Option<f64> = match get(&opts, "warmup") {
                Some(v) => Some(v.parse().map_err(|_| ParseError("bad --warmup".into()))?),
                None => None,
            };
            let windows: Option<usize> = match get(&opts, "windows") {
                Some(v) => Some(v.parse().map_err(|_| ParseError("bad --windows".into()))?),
                None => None,
            };
            let seed: u64 = get(&opts, "seed")
                .unwrap_or("1")
                .parse()
                .map_err(|_| ParseError("bad --seed".into()))?;
            Ok(Command::Simulate(SimulateArgs {
                rates: parse_rates(rates)?,
                discipline: get(&opts, "discipline").unwrap_or("fs").to_string(),
                horizon,
                warmup,
                windows,
                seed,
                service: get(&opts, "service").unwrap_or("M").to_string(),
                trace: get(&opts, "trace").map(String::from),
                metrics,
            }))
        }
        "table" => {
            let opts = options(rest)?;
            let Some(rates) = get(&opts, "rates") else {
                return err("table requires --rates");
            };
            Ok(Command::Table(TableArgs {
                rates: parse_rates(rates)?,
            }))
        }
        "network" => {
            let opts = options(rest)?;
            let switches: usize = get(&opts, "switches")
                .unwrap_or("3")
                .parse()
                .map_err(|_| ParseError("bad --switches".into()))?;
            Ok(Command::Network(NetworkArgs {
                switches,
                discipline: get(&opts, "discipline").unwrap_or("fs").to_string(),
            }))
        }
        "exp" => {
            let (id, rest) = match rest.first() {
                Some(first) if !first.starts_with("--") => {
                    (Some(first.clone()), rest[1..].to_vec())
                }
                _ => (None, rest.to_vec()),
            };
            Ok(Command::Exp(ExpCmdArgs { id, rest }))
        }
        "serve" => {
            let opts = options(rest)?;
            let threads: usize = get(&opts, "threads")
                .unwrap_or("1")
                .parse()
                .map_err(|_| ParseError("bad --threads".into()))?;
            if threads == 0 {
                return err("--threads must be >= 1");
            }
            let cache: usize = get(&opts, "cache")
                .unwrap_or("1024")
                .parse()
                .map_err(|_| ParseError("bad --cache".into()))?;
            Ok(Command::Serve(ServeArgs {
                tcp: get(&opts, "tcp").map(String::from),
                threads,
                cache,
            }))
        }
        "largen" => {
            let opts = options(rest)?;
            let n: u64 = get(&opts, "n")
                .unwrap_or("10000")
                .parse()
                .map_err(|_| ParseError("bad --n".into()))?;
            let classes = parse_users(
                get(&opts, "classes").unwrap_or("log:0.6,1.0;log:0.5,1.0;log:0.4,1.0"),
            )?;
            let weights: Vec<f64> = match get(&opts, "weights") {
                Some(s) => {
                    parse_rates(s).map_err(|_| ParseError(format!("invalid weight list '{s}'")))?
                }
                None => Vec::new(),
            };
            let seed: u64 = get(&opts, "seed")
                .unwrap_or("1")
                .parse()
                .map_err(|_| ParseError("bad --seed".into()))?;
            let threads: usize = get(&opts, "threads")
                .unwrap_or("1")
                .parse()
                .map_err(|_| ParseError("bad --threads".into()))?;
            if threads == 0 {
                return err("--threads must be >= 1");
            }
            Ok(Command::Largen(LargenArgs {
                discipline: get(&opts, "discipline").unwrap_or("fs").to_string(),
                n,
                classes,
                weights,
                seed,
                threads,
            }))
        }
        "protect" => {
            let opts = options(rest)?;
            let n: usize = get(&opts, "n")
                .unwrap_or("4")
                .parse()
                .map_err(|_| ParseError("bad --n".into()))?;
            let victim: f64 = get(&opts, "victim")
                .unwrap_or("0.1")
                .parse()
                .map_err(|_| ParseError("bad --victim".into()))?;
            Ok(Command::Protect(ProtectArgs {
                n,
                victim,
                discipline: get(&opts, "discipline").unwrap_or("fs").to_string(),
            }))
        }
        other => err(format!("unknown command '{other}' (try 'greednet help')")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn nash_defaults_and_overrides() {
        let Command::Nash(a) = parse(&argv("nash")).unwrap() else {
            panic!()
        };
        assert_eq!(a.discipline, "fs");
        assert_eq!(a.users.len(), 3);
        let Command::Nash(a) =
            parse(&argv("nash --discipline fifo --users linear:1.0,0.5")).unwrap()
        else {
            panic!()
        };
        assert_eq!(a.discipline, "fifo");
        assert_eq!(
            a.users,
            vec![UtilitySpec {
                family: "linear".into(),
                a: 1.0,
                b: 0.5
            }]
        );
    }

    #[test]
    fn simulate_parsing() {
        let Command::Simulate(a) = parse(&argv(
            "simulate --rates 0.1,0.2 --discipline sfq --horizon 5000 --seed 9 --service D",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.rates, vec![0.1, 0.2]);
        assert_eq!(a.discipline, "sfq");
        assert_eq!(a.horizon, 5000.0);
        assert_eq!(a.seed, 9);
        assert_eq!(a.service, "D");
        assert_eq!(a.warmup, None);
        assert_eq!(a.windows, None);
        assert_eq!(a.trace, None);
        assert!(!a.metrics);
        assert!(parse(&argv("simulate")).is_err());
        assert!(parse(&argv("simulate --rates abc")).is_err());
    }

    #[test]
    fn simulate_telemetry_flags() {
        let Command::Simulate(a) = parse(&argv(
            "simulate --rates 0.3,0.3 --warmup 500 --windows 8 --trace /tmp/t.jsonl --metrics",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.warmup, Some(500.0));
        assert_eq!(a.windows, Some(8));
        assert_eq!(a.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert!(a.metrics);
        // --metrics is a bare flag: it must not swallow the next option.
        let Command::Simulate(a) =
            parse(&argv("simulate --metrics --rates 0.1,0.1 --seed 3")).unwrap()
        else {
            panic!()
        };
        assert!(a.metrics);
        assert_eq!(a.seed, 3);
        assert!(parse(&argv("simulate --rates 0.1 --warmup x")).is_err());
        assert!(parse(&argv("simulate --rates 0.1 --windows x")).is_err());
    }

    #[test]
    fn nash_trace_flag() {
        let Command::Nash(a) = parse(&argv("nash --trace /tmp/solver.jsonl")).unwrap() else {
            panic!()
        };
        assert_eq!(a.trace.as_deref(), Some("/tmp/solver.jsonl"));
    }

    #[test]
    fn table_and_protect() {
        let Command::Table(t) = parse(&argv("table --rates 0.05,0.1")).unwrap() else {
            panic!()
        };
        assert_eq!(t.rates.len(), 2);
        let Command::Protect(p) =
            parse(&argv("protect --n 5 --victim 0.12 --discipline fifo")).unwrap()
        else {
            panic!()
        };
        assert_eq!(p.n, 5);
        assert_eq!(p.victim, 0.12);
        assert_eq!(p.discipline, "fifo");
    }

    #[test]
    fn network_parsing() {
        let Command::Network(n) = parse(&argv("network --switches 5 --discipline fifo")).unwrap()
        else {
            panic!()
        };
        assert_eq!(n.switches, 5);
        assert_eq!(n.discipline, "fifo");
        let Command::Network(n) = parse(&argv("network")).unwrap() else {
            panic!()
        };
        assert_eq!(n.switches, 3);
    }

    #[test]
    fn exp_parsing() {
        let Command::Exp(e) = parse(&argv("exp e9 --threads 4 --json")).unwrap() else {
            panic!()
        };
        assert_eq!(e.id.as_deref(), Some("e9"));
        assert_eq!(e.rest, argv("--threads 4 --json"));
        let Command::Exp(e) = parse(&argv("exp")).unwrap() else {
            panic!()
        };
        assert_eq!(e.id, None);
        assert!(e.rest.is_empty());
        let Command::Exp(e) = parse(&argv("exp --smoke")).unwrap() else {
            panic!()
        };
        assert_eq!(e.id, None);
        assert_eq!(e.rest, argv("--smoke"));
    }

    #[test]
    fn largen_parsing() {
        let Command::Largen(a) = parse(&argv("largen")).unwrap() else {
            panic!()
        };
        assert_eq!(a.discipline, "fs");
        assert_eq!(a.n, 10_000);
        assert_eq!(a.classes.len(), 3);
        assert!(a.weights.is_empty());
        assert_eq!(a.seed, 1);
        assert_eq!(a.threads, 1);
        let Command::Largen(a) = parse(&argv(
            "largen --discipline sfq --n 0 --classes log:0.6,1.0;log:0.4,1.0 --weights 3,1 --seed 7 --threads 4",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.discipline, "sfq");
        assert_eq!(a.n, 0);
        assert_eq!(a.classes.len(), 2);
        assert_eq!(a.weights, vec![3.0, 1.0]);
        assert_eq!(a.seed, 7);
        assert_eq!(a.threads, 4);
        assert!(parse(&argv("largen --n x")).is_err());
        assert!(parse(&argv("largen --threads 0")).is_err());
        assert!(parse(&argv("largen --weights 1,abc")).is_err());
    }

    #[test]
    fn option_errors() {
        assert!(parse(&argv("nash --users")).is_err());
        assert!(parse(&argv("nash users")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn utility_spec_errors() {
        assert!(parse_users("bogus:1,2").is_err());
        assert!(parse_users("linear:1").is_err());
        assert!(parse_users("linear:x,y").is_err());
        assert!(parse_users("").is_err());
        assert!(parse_users("log:0.5,1.0;power:0.5,1.0").is_ok());
    }

    #[test]
    fn rate_errors() {
        assert!(parse_rates("0.1,-0.2").is_err());
        assert!(parse_rates("").is_err());
        assert!(parse_rates("0.1,0.2,0.3").is_ok());
    }

    #[test]
    fn last_option_wins() {
        let Command::Protect(p) = parse(&argv("protect --n 3 --n 7")).unwrap() else {
            panic!()
        };
        assert_eq!(p.n, 7);
    }
}
